//! Triangular solves with multiple right-hand sides (`DTRSM`) and single
//! vectors (`DTRSV`).
//!
//! Only the variants the Cholesky pipeline needs are provided:
//!
//! * [`trsm_rlt`] — `X Lᵀ = B` (right, lower, transposed): panel
//!   factorization of a supernode's rectangular part;
//! * [`trsm_lln`] — `L X = B` (left, lower, no transpose): forward solve;
//! * [`trsm_llt`] — `Lᵀ X = B` (left, lower, transposed): backward solve.

use crate::gemm::gemm_nt;
use crate::par::par_gemm_nt;
use crate::NB;

/// Solves `X Lᵀ = B` in place: on return `b` holds `X = B L^{-T}`.
///
/// `L` is `n x n` lower triangular (strict upper ignored), `B` is `m x n`.
/// Column blocks are processed left to right; each block first receives the
/// trailing GEMM update from already-solved columns, then a small
/// unblocked solve against the diagonal block.
pub fn trsm_rlt(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    trsm_rlt_with(1, m, n, l, ldl, b, ldb)
}

/// The blocked right-looking sweep shared by [`trsm_rlt`] and
/// [`crate::par::par_trsm_rlt`]: `threads > 1` runs each block's trailing
/// GEMM striped on the pool, everything else is identical.
pub(crate) fn trsm_rlt_with(
    threads: usize,
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(ldl >= n, "ldl {ldl} < n {n}");
    debug_assert!(ldb >= m, "ldb {ldb} < m {m}");
    let mut j0 = 0;
    while j0 < n {
        let jb = NB.min(n - j0);
        // Columns [0, j0) are solved; columns [j0, j0+jb) are being solved.
        // The final block's last column only needs m rows, so cap the
        // slice at (jb-1)·ldb + m — a view into a larger panel may not
        // own a full ldb stride after its last column.
        let (solved, rest) = b.split_at_mut(j0 * ldb);
        let bj = &mut rest[..(jb - 1) * ldb + m];
        if j0 > 0 {
            // B_J -= X_{<J} * L[J, <J]ᵀ. With threads > 1 the stripes
            // split the jb (≤ NB) columns of this block, so per-block
            // parallelism is capped at jb regardless of the height m.
            if threads <= 1 {
                gemm_nt(m, jb, j0, -1.0, solved, ldb, &l[j0..], ldl, 1.0, bj, ldb);
            } else {
                par_gemm_nt(
                    threads,
                    m,
                    jb,
                    j0,
                    -1.0,
                    solved,
                    ldb,
                    &l[j0..],
                    ldl,
                    1.0,
                    bj,
                    ldb,
                );
            }
        }
        trsm_rlt_unblocked(m, jb, &l[j0 * ldl + j0..], ldl, bj, ldb);
        j0 += jb;
    }
}

/// Unblocked `X Lᵀ = B`; `l` points at the diagonal block.
pub(crate) fn trsm_rlt_unblocked(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
) {
    for j in 0..n {
        // x_j = (b_j - sum_{i<j} x_i * L[j, i]) / L[j, j]
        let (done, cur) = b.split_at_mut(j * ldb);
        let xj = &mut cur[..m];
        for i in 0..j {
            let lji = l[i * ldl + j];
            if lji != 0.0 {
                let xi = &done[i * ldb..i * ldb + m];
                for (x, &y) in xj.iter_mut().zip(xi) {
                    *x -= lji * y;
                }
            }
        }
        let d = 1.0 / l[j * ldl + j];
        for x in xj.iter_mut() {
            *x *= d;
        }
    }
}

/// Solves `L X = B` in place (forward substitution on each column of `B`).
///
/// `L` is `m x m` lower triangular, `B` is `m x n`.
pub fn trsm_lln(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    for j in 0..n {
        trsv_ln(m, l, ldl, &mut b[j * ldb..j * ldb + m]);
    }
}

/// Solves `Lᵀ X = B` in place (backward substitution on each column).
pub fn trsm_llt(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    for j in 0..n {
        trsv_lt(m, l, ldl, &mut b[j * ldb..j * ldb + m]);
    }
}

/// Solves `L x = b` in place for a single vector.
pub fn trsv_ln(m: usize, l: &[f64], ldl: usize, x: &mut [f64]) {
    debug_assert!(x.len() >= m);
    for j in 0..m {
        let xj = x[j] / l[j * ldl + j];
        x[j] = xj;
        if xj != 0.0 {
            let col = &l[j * ldl + j + 1..j * ldl + m];
            for (xi, &lij) in x[j + 1..m].iter_mut().zip(col) {
                *xi -= lij * xj;
            }
        }
    }
}

/// Solves `Lᵀ x = b` in place for a single vector.
pub fn trsv_lt(m: usize, l: &[f64], ldl: usize, x: &mut [f64]) {
    debug_assert!(x.len() >= m);
    for j in (0..m).rev() {
        let col = &l[j * ldl + j + 1..j * ldl + m];
        let mut acc = 0.0;
        for (&xi, &lij) in x[j + 1..m].iter().zip(col) {
            acc += lij * xi;
        }
        x[j] = (x[j] - acc) / l[j * ldl + j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Well-conditioned random lower-triangular matrix.
    fn rand_lower(rng: &mut StdRng, n: usize, ld: usize) -> Vec<f64> {
        let mut l = vec![0.0; ld * n];
        for j in 0..n {
            for i in j..n {
                l[j * ld + i] = if i == j {
                    2.0 + rng.random_range(0.0..1.0)
                } else {
                    rng.random_range(-0.5..0.5)
                };
            }
        }
        l
    }

    #[test]
    fn trsm_rlt_inverts_multiplication() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, n) in &[(1, 1), (5, 3), (40, 70), (33, 129), (100, 64)] {
            let ldl = n + 1;
            let ldb = m + 2;
            let l = rand_lower(&mut rng, n, ldl);
            let x_true: Vec<f64> = (0..ldb * n).map(|_| rng.random_range(-1.0..1.0)).collect();
            // B = X * Lᵀ  (i.e. B = X * op(L) with op = transpose)
            let mut b = vec![0.0; ldb * n];
            // C = A * Bᵀ with A = X (m x n), B = L (n x n) gives X Lᵀ... but
            // gemm_nt computes A * Bᵀ where stored B is n x k. Here k = n.
            gemm_naive(m, n, n, 1.0, &x_true, ldb, &l, ldl, true, 0.0, &mut b, ldb);
            trsm_rlt(m, n, &l, ldl, &mut b, ldb);
            for j in 0..n {
                for i in 0..m {
                    let err = (b[j * ldb + i] - x_true[j * ldb + i]).abs();
                    assert!(err < 1e-10, "m={m} n={n} entry ({i},{j}) err {err}");
                }
            }
        }
    }

    #[test]
    fn forward_backward_solves_invert_each_other() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = 37;
        let ldl = m;
        let l = rand_lower(&mut rng, m, ldl);
        let x_true: Vec<f64> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
        // b = L * (Lᵀ x)
        let mut y = x_true.clone();
        // y = Lᵀ x via naive multiply
        let mut tmp = vec![0.0; m];
        for j in 0..m {
            for i in j..m {
                tmp[j] += l[j * ldl + i] * x_true[i];
            }
        }
        y.copy_from_slice(&tmp);
        let mut b = vec![0.0; m];
        for j in 0..m {
            for i in j..m {
                b[i] += l[j * ldl + i] * y[j];
            }
        }
        // Solve L z = b, then Lᵀ x = z.
        trsv_ln(m, &l, ldl, &mut b);
        trsv_lt(m, &l, ldl, &mut b);
        for i in 0..m {
            assert!((b[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn trsm_matches_trsv_per_column() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, n) = (20, 7);
        let l = rand_lower(&mut rng, m, m);
        let b0: Vec<f64> = (0..m * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        trsm_lln(m, n, &l, m, &mut b1, m);
        for j in 0..n {
            trsv_ln(m, &l, m, &mut b2[j * m..(j + 1) * m]);
        }
        assert_eq!(b1, b2);
        let mut b3 = b0.clone();
        let mut b4 = b0;
        trsm_llt(m, n, &l, m, &mut b3, m);
        for j in 0..n {
            trsv_lt(m, &l, m, &mut b4[j * m..(j + 1) * m]);
        }
        assert_eq!(b3, b4);
    }

    #[test]
    fn strict_upper_of_l_is_ignored() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, n) = (9, 5);
        let mut l = rand_lower(&mut rng, n, n);
        let b0: Vec<f64> = (0..m * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut b1 = b0.clone();
        trsm_rlt(m, n, &l, n, &mut b1, m);
        // Poison the strict upper triangle; result must not change.
        for j in 1..n {
            for i in 0..j {
                l[j * n + i] = f64::NAN;
            }
        }
        let mut b2 = b0;
        trsm_rlt(m, n, &l, n, &mut b2, m);
        assert_eq!(b1, b2);
    }
}
