//! General matrix-matrix multiply (`DGEMM`) with packing and a
//! register-blocked micro-kernel.
//!
//! Layout follows the classic GotoBLAS/BLIS decomposition: the `k` and `m`
//! dimensions are tiled into `KC x MC` panels packed into contiguous
//! buffers, and an `MR x NR` micro-kernel accumulates into registers. Edge
//! tiles are handled by zero-padding the packed panels and masking the
//! write-back, so the hot loop is branch-free.

/// Micro-tile rows (register blocking in the `m` dimension).
pub const MR: usize = 8;
/// Micro-tile columns (register blocking in the `n` dimension).
pub const NR: usize = 4;
/// Cache block in the `m` dimension.
pub const MC: usize = 256;
/// Cache block in the `k` dimension.
pub const KC: usize = 256;
/// Cache block in the `n` dimension.
pub const NC: usize = 1024;

/// Whether the second operand of [`gemm`] is transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransB {
    No,
    Yes,
}

/// `C := alpha * A * B + beta * C` where `A` is `m x k`, `B` is `k x n` and
/// `C` is `m x n`, all column-major with the given leading dimensions.
pub fn gemm_nn(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    gemm(m, n, k, alpha, a, lda, b, ldb, TransB::No, beta, c, ldc)
}

/// `C := alpha * A * Bᵀ + beta * C` where `A` is `m x k`, `B` is `n x k`
/// (so `Bᵀ` is `k x n`) and `C` is `m x n`.
///
/// This is the `DGEMM('N','T', ...)` form the RLB update loop issues.
pub fn gemm_nt(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    gemm(m, n, k, alpha, a, lda, b, ldb, TransB::Yes, beta, c, ldc)
}

/// Scales the `m x n` block of `c` by `beta` (treating `beta == 0` as an
/// overwrite so uninitialized storage never propagates NaNs).
fn scale_c(m: usize, n: usize, beta: f64, c: &mut [f64], ldc: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

fn gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    tb: TransB,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    debug_assert!(lda >= m.max(1));
    debug_assert!(ldc >= m.max(1));
    scale_c(m, n, beta, c, ldc);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }

    // Packed panels, zero-padded to multiples of MR / NR. The buffers are
    // thread-local and reused across calls, so the supernodal update loop
    // (thousands of GEMMs) allocates only on each thread's first call.
    PACK.with(|cell| {
        let (apack, bpack) = &mut *cell.borrow_mut();
        apack.resize(MC.div_ceil(MR) * MR * KC, 0.0);
        bpack.resize(NC.div_ceil(NR) * NR * KC, 0.0);
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b(bpack, b, ldb, tb, pc, jc, kc, nc);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    pack_a(apack, a, lda, ic, pc, mc, kc);
                    macro_kernel(mc, nc, kc, alpha, apack, bpack, c, ldc, ic, jc);
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
}

std::thread_local! {
    /// Per-thread `(apack, bpack)` panels: the packing sizes are
    /// compile-time constants, so one lazily grown pair serves every GEMM
    /// this thread ever runs. `gemm` never re-enters itself, so the
    /// `RefCell` borrow is never contended.
    static PACK: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Packs the `mc x kc` block of `A` starting at `(ic, pc)` into MR-row
/// strips: strip `s` holds rows `ic + s*MR ..`, stored column-by-column.
fn pack_a(apack: &mut [f64], a: &[f64], lda: usize, ic: usize, pc: usize, mc: usize, kc: usize) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let i0 = s * MR;
        let rows = MR.min(mc - i0);
        let dst_base = s * MR * kc;
        for p in 0..kc {
            let src = (pc + p) * lda + ic + i0;
            let dst = dst_base + p * MR;
            apack[dst..dst + rows].copy_from_slice(&a[src..src + rows]);
            // Zero-pad the strip's tail rows.
            apack[dst + rows..dst + MR].fill(0.0);
        }
    }
}

/// Packs the `kc x nc` block of `op(B)` starting at `(pc, jc)` into NR-col
/// strips: strip `s` holds columns `jc + s*NR ..`, stored row-by-row.
fn pack_b(
    bpack: &mut [f64],
    b: &[f64],
    ldb: usize,
    tb: TransB,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
) {
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let j0 = s * NR;
        let cols = NR.min(nc - j0);
        let dst_base = s * NR * kc;
        for p in 0..kc {
            let dst = dst_base + p * NR;
            match tb {
                TransB::No => {
                    // op(B)[p, j] = B[pc + p, jc + j]
                    for j in 0..cols {
                        bpack[dst + j] = b[(jc + j0 + j) * ldb + pc + p];
                    }
                }
                TransB::Yes => {
                    // op(B)[p, j] = B[jc + j, pc + p] — contiguous in rows.
                    let src = (pc + p) * ldb + jc + j0;
                    bpack[dst..dst + cols].copy_from_slice(&b[src..src + cols]);
                }
            }
            bpack[dst + cols..dst + NR].fill(0.0);
        }
    }
}

fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    c: &mut [f64],
    ldc: usize,
    ic: usize,
    jc: usize,
) {
    let mstrips = mc.div_ceil(MR);
    let nstrips = nc.div_ceil(NR);
    for js in 0..nstrips {
        let j0 = js * NR;
        let nr = NR.min(nc - j0);
        let bp = &bpack[js * NR * kc..(js * NR * kc) + NR * kc];
        for is in 0..mstrips {
            let i0 = is * MR;
            let mr = MR.min(mc - i0);
            let ap = &apack[is * MR * kc..(is * MR * kc) + MR * kc];
            let acc = micro_kernel(kc, ap, bp);
            // Masked write-back for edge tiles.
            for j in 0..nr {
                let cj = (jc + j0 + j) * ldc + ic + i0;
                let col = &mut c[cj..cj + mr];
                for i in 0..mr {
                    col[i] += alpha * acc[j][i];
                }
            }
        }
    }
}

/// The `MR x NR` register tile: a rank-1 update per `k` step.
#[inline(always)]
fn micro_kernel(kc: usize, ap: &[f64], bp: &[f64]) -> [[f64; MR]; NR] {
    let mut acc = [[0.0f64; MR]; NR];
    for p in 0..kc {
        let a: &[f64; MR] = ap[p * MR..p * MR + MR].try_into().unwrap();
        let b: &[f64; NR] = bp[p * NR..p * NR + NR].try_into().unwrap();
        for j in 0..NR {
            let bj = b[j];
            for i in 0..MR {
                acc[j][i] += a[i] * bj;
            }
        }
    }
    acc
}

/// Reference triple-loop GEMM used by tests and small problems.
pub fn gemm_naive(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    transb: bool,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    scale_c(m, n, beta, c, ldc);
    for j in 0..n {
        for p in 0..k {
            let bv = if transb {
                b[p * ldb + j]
            } else {
                b[j * ldb + p]
            };
            let s = alpha * bv;
            if s == 0.0 {
                continue;
            }
            for i in 0..m {
                c[j * ldc + i] += s * a[p * lda + i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    fn check_case(m: usize, n: usize, k: usize, transb: bool, alpha: f64, beta: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lda = m + 3;
        let ldb = if transb { n + 1 } else { k + 2 };
        let ldc = m + 1;
        let a = rand_vec(&mut rng, lda * k);
        let b = rand_vec(&mut rng, ldb * if transb { k } else { n });
        let c0 = rand_vec(&mut rng, ldc * n);

        let mut c_fast = c0.clone();
        let mut c_ref = c0.clone();
        if transb {
            gemm_nt(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_fast, ldc);
        } else {
            gemm_nn(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_fast, ldc);
        }
        gemm_naive(
            m, n, k, alpha, &a, lda, &b, ldb, transb, beta, &mut c_ref, ldc,
        );
        let max_err = c_fast
            .iter()
            .zip(&c_ref)
            .fold(0.0f64, |mx, (&x, &y)| mx.max((x - y).abs()));
        assert!(
            max_err < 1e-11 * (k as f64 + 1.0),
            "m={m} n={n} k={k} transb={transb} alpha={alpha} beta={beta}: err={max_err}"
        );
    }

    #[test]
    fn matches_reference_on_small_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 2, 4),
            (8, 4, 16),
            (9, 5, 17),
            (7, 11, 3),
            (16, 16, 16),
        ] {
            check_case(m, n, k, false, 1.0, 0.0, 42);
            check_case(m, n, k, true, 1.0, 0.0, 43);
        }
    }

    #[test]
    fn matches_reference_on_blocked_shapes() {
        // Sizes crossing the MC/KC/NC cache-block boundaries.
        for &(m, n, k) in &[(300, 37, 280), (270, 1030, 10), (50, 40, 300)] {
            check_case(m, n, k, false, -1.0, 1.0, 7);
            check_case(m, n, k, true, -1.0, 1.0, 8);
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        for &(alpha, beta) in &[(0.0, 0.5), (2.0, 0.0), (-1.5, 2.5), (1.0, 1.0)] {
            check_case(13, 9, 21, false, alpha, beta, 11);
            check_case(13, 9, 21, true, alpha, beta, 12);
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_storage() {
        let a = vec![1.0; 4]; // 2x2 ones
        let b = vec![1.0; 4];
        let mut c = vec![f64::NAN; 4];
        gemm_nn(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
        assert!(c.iter().all(|v| *v == 2.0));
    }

    #[test]
    fn degenerate_dimensions_are_noops() {
        let a: Vec<f64> = vec![];
        let b: Vec<f64> = vec![];
        let mut c = vec![5.0; 6];
        gemm_nn(0, 3, 0, 1.0, &a, 1, &b, 1, 1.0, &mut c, 2);
        assert_eq!(c, vec![5.0; 6]);
        // k = 0 with beta = 0 must still clear C.
        gemm_nn(2, 3, 0, 1.0, &a, 2, &b, 1, 0.0, &mut c, 2);
        assert_eq!(c, vec![0.0; 6]);
    }
}
