//! Dense Cholesky factorization (`DPOTRF`), lower variant.
//!
//! Right-looking blocked algorithm: factor the diagonal block, solve the
//! panel below it against the block's transpose, then apply a symmetric
//! rank-k update to the trailing matrix — the same structure the sparse
//! supernodal algorithms replay at the supernode level.

use crate::gemm::gemm_nt;
use crate::pool;
use crate::syrk::syrk_ln;
use crate::trsm::trsm_rlt;
use crate::NB;

/// Failure of a Cholesky factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PotrfError {
    /// Index of the first pivot that was not strictly positive.
    pub pivot: usize,
}

impl std::fmt::Display for PotrfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite: nonpositive pivot at column {}",
            self.pivot
        )
    }
}

impl std::error::Error for PotrfError {}

/// Factors the lower triangle of the `n x n` matrix in `a` (leading
/// dimension `lda`) in place as `A = L Lᵀ`, leaving `L` in the lower
/// triangle. The strict upper triangle is neither read nor written.
pub fn potrf(n: usize, a: &mut [f64], lda: usize) -> Result<(), PotrfError> {
    with_l11_scratch(|l11| potrf_with(n, a, lda, l11, 1))
}

/// Pool-parallel [`potrf`]: the same fixed-`NB` right-looking loop, with
/// the trailing SYRK update — the O(n³) term — distributed over the
/// persistent pool. The distribution stripes at the serial kernel's own
/// `NB` column-block boundaries, so each output entry is produced by
/// exactly the per-block calls the serial sweep would issue and the
/// factor is **bit-identical** to [`potrf`] at any `threads`; selection
/// only affects wall clock. The diagonal-block factor and the panel
/// TRSM (whose width is at most `NB`) stay serial — they are the
/// O(n·NB²) fringe. `threads <= 1` or `n <= NB` takes the serial path
/// unchanged.
pub fn par_potrf(threads: usize, n: usize, a: &mut [f64], lda: usize) -> Result<(), PotrfError> {
    if threads <= 1 || n <= NB {
        return potrf(n, a, lda);
    }
    with_l11_scratch(|l11| potrf_with(n, a, lda, l11, threads))
}

/// Trailing update `C -= A Aᵀ` (lower triangle) striped at the serial
/// [`syrk_ln`] kernel's fixed `NB` column-block boundaries. Each task
/// replays the identical two calls the serial sweep makes for its block
/// — the diagonal triangle, then the rectangle below via [`gemm_nt`] —
/// on slices holding the same elements, so the result is bit-for-bit
/// the serial one regardless of execution order (the blocks write
/// disjoint column ranges).
fn par_syrk_update(
    threads: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    c: &mut [f64],
    ldc: usize,
) {
    let nblocks = n.div_ceil(NB.max(1));
    if threads <= 1 || nblocks < 2 {
        syrk_ln(n, k, -1.0, a, lda, 1.0, c, ldc);
        return;
    }
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(nblocks);
    let mut rest = c;
    let mut consumed = 0usize;
    for b in 0..nblocks {
        let j0 = b * NB;
        let jb = NB.min(n - j0);
        let take = ((j0 - consumed + jb) * ldc).min(rest.len());
        let (mine, tail) = rest.split_at_mut(take);
        let my_c = &mut mine[(j0 - consumed) * ldc..];
        rest = tail;
        consumed = j0 + jb;
        tasks.push(Box::new(move || {
            // `my_c` starts at column j0 of C; rows keep global indices.
            // Diagonal jb x jb triangle at (j0, j0) — a single-block
            // syrk_ln call over the same shifted operands.
            syrk_ln(jb, k, -1.0, &a[j0..], lda, 1.0, &mut my_c[j0..], ldc);
            // Rectangle below: rows j0+jb..n of columns [j0, j0+jb).
            let below = n - j0 - jb;
            if below > 0 {
                gemm_nt(
                    below,
                    jb,
                    k,
                    -1.0,
                    &a[j0 + jb..],
                    lda,
                    &a[j0..],
                    lda,
                    1.0,
                    &mut my_c[j0 + jb..],
                    ldc,
                );
            }
        }));
    }
    pool::global().run(tasks);
}

/// Scratch copy of the diagonal block so the panel TRSM can borrow the
/// column span mutably (L11 and A21 share columns in column-major
/// storage and cannot be split into disjoint slices). The block size is
/// a compile-time constant, so one lazily grown thread-local buffer
/// serves every POTRF this thread ever runs — the supernodal engines
/// call this once per supernode and must not allocate each time. The
/// factorization never re-enters itself (the panel TRSM is a plain
/// kernel and pool stripes run in their own threads), so the `RefCell`
/// borrow is never contended.
fn with_l11_scratch<R>(f: impl FnOnce(&mut [f64]) -> R) -> R {
    std::thread_local! {
        static L11: std::cell::RefCell<Vec<f64>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    L11.with(|cell| {
        let mut l11 = cell.borrow_mut();
        l11.resize(NB * NB, 0.0);
        f(&mut l11)
    })
}

/// [`potrf`] against caller-provided diagonal-block scratch (grown to
/// `NB * NB` by the wrapper above), with the panel/trailing kernels
/// striped over `threads` pool lanes when `threads > 1`.
fn potrf_with(
    n: usize,
    a: &mut [f64],
    lda: usize,
    l11: &mut [f64],
    threads: usize,
) -> Result<(), PotrfError> {
    debug_assert!(lda >= n.max(1));
    let mut k = 0;
    while k < n {
        let kb = NB.min(n - k);
        let below = n - k - kb;
        {
            // Factor the diagonal block in place.
            let blk = &mut a[k * lda + k..];
            potf2(kb, blk, lda).map_err(|e| PotrfError { pivot: k + e.pivot })?;
        }
        if below > 0 {
            // Copy L11 out, then A21 := A21 * L11^{-T}.
            for j in 0..kb {
                for i in j..kb {
                    l11[j * kb + i] = a[(k + j) * lda + k + i];
                }
            }
            {
                // The panel is at most NB columns wide, so the TRSM is
                // the same serial kernel on every lane count.
                let a21 = &mut a[k * lda + k + kb..];
                trsm_rlt(below, kb, &l11[..kb * kb], kb, a21, lda);
            }
            // Trailing update A22 -= A21 * A21ᵀ. The two operands live in
            // disjoint column spans, so a split borrow works.
            let (panel_cols, trailing_cols) = a.split_at_mut((k + kb) * lda);
            let a21 = &panel_cols[k * lda + k + kb..];
            let a22 = &mut trailing_cols[k + kb..];
            par_syrk_update(threads, below, kb, a21, lda, a22, lda);
        }
        k += kb;
    }
    Ok(())
}

/// Unblocked Cholesky on a `n x n` block (`n <= NB` in practice).
fn potf2(n: usize, a: &mut [f64], lda: usize) -> Result<(), PotrfError> {
    for j in 0..n {
        // d = A[j,j] - sum_{p<j} L[j,p]^2
        let mut d = a[j * lda + j];
        for p in 0..j {
            let l = a[p * lda + j];
            d -= l * l;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(PotrfError { pivot: j });
        }
        let d = d.sqrt();
        a[j * lda + j] = d;
        if j + 1 < n {
            // Column update: A[j+1.., j] = (A[j+1.., j] - L[j+1.., <j] L[j, <j]ᵀ) / d
            let (head, tail) = a.split_at_mut(j * lda);
            let col = &mut tail[j + 1..n];
            for p in 0..j {
                let ljp = head[p * lda + j];
                if ljp != 0.0 {
                    let lp = &head[p * lda + j + 1..p * lda + n];
                    for (c, &v) in col.iter_mut().zip(lp) {
                        *c -= ljp * v;
                    }
                }
            }
            let inv = 1.0 / d;
            for c in col.iter_mut() {
                *c *= inv;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DMat;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Random SPD matrix: A = M Mᵀ + n·I.
    fn random_spd(n: usize, seed: u64) -> DMat {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = DMat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
        let mut a = m.matmul(&m.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn check_factor(n: usize, seed: u64) {
        let a = random_spd(n, seed);
        let mut l = a.clone();
        potrf(n, l.as_mut_slice(), n).unwrap();
        l.zero_upper();
        let rec = l.matmul(&l.transpose());
        let err = rec.max_abs_diff(&a);
        assert!(err < 1e-9 * n as f64, "n={n}: reconstruction error {err}");
    }

    #[test]
    fn factors_small_matrices() {
        for n in [1, 2, 3, 5, 8, 13, 31] {
            check_factor(n, n as u64);
        }
    }

    #[test]
    fn factors_blocked_sizes() {
        // Cross the NB boundary (64) to exercise the blocked path.
        for n in [64, 65, 100, 130, 200] {
            check_factor(n, n as u64 + 100);
        }
    }

    #[test]
    fn known_3x3_factor() {
        // A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2],[6,1],[-8,5,3]].
        let mut a = DMat::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ]);
        potrf(3, a.as_mut_slice(), 3).unwrap();
        assert!((a[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((a[(1, 0)] - 6.0).abs() < 1e-14);
        assert!((a[(2, 0)] + 8.0).abs() < 1e-14);
        assert!((a[(1, 1)] - 1.0).abs() < 1e-14);
        assert!((a[(2, 1)] - 5.0).abs() < 1e-14);
        assert!((a[(2, 2)] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn reports_first_bad_pivot() {
        // Indefinite matrix: fails at pivot 1.
        let mut a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let err = potrf(2, a.as_mut_slice(), 2).unwrap_err();
        assert_eq!(err.pivot, 1);
        // Zero matrix: fails at pivot 0.
        let mut z = DMat::zeros(3, 3);
        assert_eq!(potrf(3, z.as_mut_slice(), 3).unwrap_err().pivot, 0);
    }

    #[test]
    fn par_potrf_is_bit_identical_to_serial() {
        // Sizes straddling NB (64) and 2*NB (128): the serial fallback,
        // single-block, and multi-block parallel paths all land here.
        for n in [1usize, 31, 64, 65, 100, 129, 200, 300] {
            let a = random_spd(n, n as u64 + 900);
            let mut serial = a.clone();
            potrf(n, serial.as_mut_slice(), n).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let mut par = a.clone();
                par_potrf(threads, n, par.as_mut_slice(), n).unwrap();
                assert_eq!(
                    par.as_slice(),
                    serial.as_slice(),
                    "n={n} threads={threads}: parallel POTRF diverged bitwise"
                );
            }
        }
    }

    #[test]
    fn par_potrf_reports_same_bad_pivot() {
        // Indefinite trailing block: both paths must fail at the same pivot.
        let n = 130;
        let mut a = random_spd(n, 7);
        a[(n - 1, n - 1)] = -1e6;
        let mut serial = a.clone();
        let se = potrf(n, serial.as_mut_slice(), n).unwrap_err();
        let mut par = a.clone();
        let pe = par_potrf(4, n, par.as_mut_slice(), n).unwrap_err();
        assert_eq!(se, pe);
    }

    #[test]
    fn respects_leading_dimension() {
        let n = 20;
        let lda = 27;
        let a = random_spd(n, 5);
        let mut padded = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in 0..n {
                padded[j * lda + i] = a[(i, j)];
            }
        }
        potrf(n, &mut padded, lda).unwrap();
        let mut l = DMat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = padded[j * lda + i];
            }
        }
        let err = l.matmul(&l.transpose()).max_abs_diff(&a);
        assert!(err < 1e-10 * n as f64);
    }
}
