//! Dense Cholesky factorization (`DPOTRF`), lower variant.
//!
//! Right-looking blocked algorithm: factor the diagonal block, solve the
//! panel below it against the block's transpose, then apply a symmetric
//! rank-k update to the trailing matrix — the same structure the sparse
//! supernodal algorithms replay at the supernode level.

use crate::syrk::syrk_ln;
use crate::trsm::trsm_rlt;
use crate::NB;

/// Failure of a Cholesky factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PotrfError {
    /// Index of the first pivot that was not strictly positive.
    pub pivot: usize,
}

impl std::fmt::Display for PotrfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite: nonpositive pivot at column {}",
            self.pivot
        )
    }
}

impl std::error::Error for PotrfError {}

/// Factors the lower triangle of the `n x n` matrix in `a` (leading
/// dimension `lda`) in place as `A = L Lᵀ`, leaving `L` in the lower
/// triangle. The strict upper triangle is neither read nor written.
pub fn potrf(n: usize, a: &mut [f64], lda: usize) -> Result<(), PotrfError> {
    debug_assert!(lda >= n.max(1));
    // Scratch copy of the diagonal block so the panel TRSM can borrow the
    // column span mutably (L11 and A21 share columns in column-major
    // storage and cannot be split into disjoint slices). The block size
    // is a compile-time constant, so one lazily grown thread-local
    // buffer serves every POTRF this thread ever runs — the supernodal
    // engines call this once per supernode and must not allocate each
    // time. `potrf` never re-enters itself (the panel TRSM is a plain
    // kernel), so the `RefCell` borrow is never contended.
    std::thread_local! {
        static L11: std::cell::RefCell<Vec<f64>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    L11.with(|cell| {
        let mut l11 = cell.borrow_mut();
        l11.resize(NB * NB, 0.0);
        potrf_with(n, a, lda, &mut l11)
    })
}

/// [`potrf`] against caller-provided diagonal-block scratch (grown to
/// `NB * NB` by the wrapper above).
fn potrf_with(n: usize, a: &mut [f64], lda: usize, l11: &mut [f64]) -> Result<(), PotrfError> {
    let mut k = 0;
    while k < n {
        let kb = NB.min(n - k);
        let below = n - k - kb;
        {
            // Factor the diagonal block in place.
            let blk = &mut a[k * lda + k..];
            potf2(kb, blk, lda).map_err(|e| PotrfError { pivot: k + e.pivot })?;
        }
        if below > 0 {
            // Copy L11 out, then A21 := A21 * L11^{-T}.
            for j in 0..kb {
                for i in j..kb {
                    l11[j * kb + i] = a[(k + j) * lda + k + i];
                }
            }
            {
                let a21 = &mut a[k * lda + k + kb..];
                trsm_rlt(below, kb, &l11[..kb * kb], kb, a21, lda);
            }
            // Trailing update A22 -= A21 * A21ᵀ. The two operands live in
            // disjoint column spans, so a split borrow works.
            let (panel_cols, trailing_cols) = a.split_at_mut((k + kb) * lda);
            let a21 = &panel_cols[k * lda + k + kb..];
            let a22 = &mut trailing_cols[k + kb..];
            syrk_ln(below, kb, -1.0, a21, lda, 1.0, a22, lda);
        }
        k += kb;
    }
    Ok(())
}

/// Unblocked Cholesky on a `n x n` block (`n <= NB` in practice).
fn potf2(n: usize, a: &mut [f64], lda: usize) -> Result<(), PotrfError> {
    for j in 0..n {
        // d = A[j,j] - sum_{p<j} L[j,p]^2
        let mut d = a[j * lda + j];
        for p in 0..j {
            let l = a[p * lda + j];
            d -= l * l;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(PotrfError { pivot: j });
        }
        let d = d.sqrt();
        a[j * lda + j] = d;
        if j + 1 < n {
            // Column update: A[j+1.., j] = (A[j+1.., j] - L[j+1.., <j] L[j, <j]ᵀ) / d
            let (head, tail) = a.split_at_mut(j * lda);
            let col = &mut tail[j + 1..n];
            for p in 0..j {
                let ljp = head[p * lda + j];
                if ljp != 0.0 {
                    let lp = &head[p * lda + j + 1..p * lda + n];
                    for (c, &v) in col.iter_mut().zip(lp) {
                        *c -= ljp * v;
                    }
                }
            }
            let inv = 1.0 / d;
            for c in col.iter_mut() {
                *c *= inv;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::DMat;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Random SPD matrix: A = M Mᵀ + n·I.
    fn random_spd(n: usize, seed: u64) -> DMat {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = DMat::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
        let mut a = m.matmul(&m.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    fn check_factor(n: usize, seed: u64) {
        let a = random_spd(n, seed);
        let mut l = a.clone();
        potrf(n, l.as_mut_slice(), n).unwrap();
        l.zero_upper();
        let rec = l.matmul(&l.transpose());
        let err = rec.max_abs_diff(&a);
        assert!(err < 1e-9 * n as f64, "n={n}: reconstruction error {err}");
    }

    #[test]
    fn factors_small_matrices() {
        for n in [1, 2, 3, 5, 8, 13, 31] {
            check_factor(n, n as u64);
        }
    }

    #[test]
    fn factors_blocked_sizes() {
        // Cross the NB boundary (64) to exercise the blocked path.
        for n in [64, 65, 100, 130, 200] {
            check_factor(n, n as u64 + 100);
        }
    }

    #[test]
    fn known_3x3_factor() {
        // A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has L = [[2],[6,1],[-8,5,3]].
        let mut a = DMat::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ]);
        potrf(3, a.as_mut_slice(), 3).unwrap();
        assert!((a[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((a[(1, 0)] - 6.0).abs() < 1e-14);
        assert!((a[(2, 0)] + 8.0).abs() < 1e-14);
        assert!((a[(1, 1)] - 1.0).abs() < 1e-14);
        assert!((a[(2, 1)] - 5.0).abs() < 1e-14);
        assert!((a[(2, 2)] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn reports_first_bad_pivot() {
        // Indefinite matrix: fails at pivot 1.
        let mut a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let err = potrf(2, a.as_mut_slice(), 2).unwrap_err();
        assert_eq!(err.pivot, 1);
        // Zero matrix: fails at pivot 0.
        let mut z = DMat::zeros(3, 3);
        assert_eq!(potrf(3, z.as_mut_slice(), 3).unwrap_err().pivot, 0);
    }

    #[test]
    fn respects_leading_dimension() {
        let n = 20;
        let lda = 27;
        let a = random_spd(n, 5);
        let mut padded = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in 0..n {
                padded[j * lda + i] = a[(i, j)];
            }
        }
        potrf(n, &mut padded, lda).unwrap();
        let mut l = DMat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = padded[j * lda + i];
            }
        }
        let err = l.matmul(&l.transpose()).max_abs_diff(&a);
        assert!(err < 1e-10 * n as f64);
    }
}
