//! # rlchol-dense — dense BLAS/LAPACK kernels
//!
//! Pure-Rust, column-major dense kernels covering exactly the operations
//! the right-looking supernodal Cholesky algorithms of the paper invoke:
//!
//! * [`potrf`] — dense Cholesky factorization of a lower-triangular block
//!   (LAPACK `DPOTRF`), used to factor the diagonal block of a supernode;
//! * [`trsm_rlt`] — triangular solve `X Lᵀ = B` (BLAS `DTRSM`,
//!   right/lower/transpose), used to factor the rectangular part;
//! * [`syrk_ln`] — symmetric rank-k update `C += α A Aᵀ` on the lower
//!   triangle (BLAS `DSYRK`), used to compute update matrices;
//! * [`gemm_nt`] / [`gemm_nn`] — general matrix products (BLAS `DGEMM`),
//!   used for the off-diagonal blocks of RLB updates;
//! * [`trsm_lln`] / [`trsm_llt`] and [`trsv_ln`] / [`trsv_lt`] — forward
//!   and backward substitution for the solve phase.
//!
//! All kernels operate on column-major slices with an explicit leading
//! dimension (`lda`), mirroring the BLAS calling convention so the
//! simulated-GPU runtime can expose an identical interface. [`DMat`] is a
//! small owned column-major matrix used by tests, examples and supernode
//! storage.
//!
//! The GEMM path packs operands into contiguous panels (reused
//! thread-local buffers — the hot loop allocates nothing) and runs a
//! register-blocked micro-kernel; POTRF/TRSM/SYRK are blocked on top of it
//! (right-looking, as in LAPACK).
//!
//! ## Parallelism
//!
//! The [`par`] wrappers (`par_gemm_nn`, `par_gemm_nt`, `par_syrk_ln`,
//! `par_trsm_rlt`) stripe the output and run the stripes on the
//! persistent work-stealing [`pool`] shared by the whole process. The
//! pool is sized by the **`RLCHOL_THREADS`** environment variable when it
//! is set to a positive integer, and by
//! [`std::thread::available_parallelism`] otherwise; the submitting
//! thread participates in execution, so `RLCHOL_THREADS=8` means eight
//! runnable lanes in total. (Its device-side sibling is
//! `RLCHOL_STREAMS`, which sizes the pipelined GPU engines' simulated
//! stream pairs — see `rlchol-gpu`'s crate docs.)

pub mod flops;
pub mod gemm;
pub mod mat;
pub mod par;
pub mod pool;
pub mod potrf;
pub mod syrk;
pub mod trsm;

pub use flops::{flops_gemm, flops_potrf, flops_syrk, flops_trsm};
pub use gemm::{gemm_nn, gemm_nt};
pub use mat::DMat;
pub use par::{par_gemm_nn, par_gemm_nt, par_syrk_ln, par_trsm_rlt};
pub use potrf::{par_potrf, potrf, PotrfError};
pub use syrk::syrk_ln;
pub use trsm::{trsm_lln, trsm_llt, trsm_rlt, trsv_ln, trsv_lt};

/// Default cache-block size for the blocked POTRF/TRSM/SYRK algorithms.
pub const NB: usize = 64;
