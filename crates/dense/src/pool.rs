//! Persistent work-stealing thread pool for the parallel kernels.
//!
//! The `par_*` BLAS wrappers and the elimination-tree scheduler in
//! `rlchol-core` submit closures here instead of spawning OS threads per
//! call. Workers are started once (lazily, on first use of
//! [`global`]) and live for the process; each has a local deque and
//! steals from the shared injector or from its siblings when idle, so a
//! worker that finishes its stripe early picks up someone else's work.
//!
//! **Sizing.** The global pool runs `RLCHOL_THREADS` workers when that
//! environment variable is set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. A caller of [`ThreadPool::run`]
//! participates in execution itself, so a "pool of `t` threads" means `t`
//! runnable lanes including the submitter (`t - 1` parked workers).
//!
//! **Nesting.** Jobs may themselves call [`ThreadPool::run`] (the
//! tree-level scheduler factors a supernode whose inner BLAS stripes
//! re-enter the pool). Submission from a worker pushes to that worker's
//! local deque (LIFO pop keeps the cache-hot stripes on the spawning
//! worker; idle siblings steal FIFO from the other end), and the waiting
//! job keeps executing pending work instead of blocking a lane, so
//! nested parallelism cannot deadlock.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased unit of work. Safety: [`ThreadPool::run`] blocks
/// until every job it submitted has completed, so borrows captured by the
/// original `'env` closures outlive their execution.
struct Job(Box<dyn FnOnce() + Send + 'static>);

struct Shared {
    /// Queue for jobs submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// One local deque per worker: owner pushes/pops the back, thieves
    /// steal from the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake signal: bumped on every submission.
    signal: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pops one runnable job: own deque first (LIFO), then the injector,
    /// then stealing from siblings (FIFO). `me` is `None` off-pool.
    fn pop(&self, me: Option<usize>) -> Option<Job> {
        if let Some(w) = me {
            if let Some(job) = self.locals[w].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let start = me.map_or(0, |w| w + 1);
        let n = self.locals.len();
        for k in 0..n {
            let v = (start + k) % n;
            if Some(v) == me {
                continue;
            }
            if let Some(job) = self.locals[v].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Enqueues a whole batch under one queue lock and one broadcast —
    /// per-job wakeups would thundering-herd every parked worker once
    /// per stripe on the hot fan-out path.
    fn push_batch(&self, me: Option<usize>, jobs: Vec<Job>) {
        match me {
            Some(w) => self.locals[w].lock().unwrap().extend(jobs),
            None => self.injector.lock().unwrap().extend(jobs),
        }
        let mut epoch = self.signal.lock().unwrap();
        *epoch += 1;
        drop(epoch);
        self.wake.notify_all();
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the current thread, if it is a
    /// pool worker. The identity is the `Arc<Shared>` data address.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// Completion latch for one [`ThreadPool::run`] batch.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: n,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().unwrap().remaining == 0
    }
}

/// A persistent pool of worker threads (see the module docs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
}

impl ThreadPool {
    /// Starts a pool with `threads` runnable lanes (`threads - 1` workers
    /// plus the participating submitter). `threads == 1` spawns no
    /// workers; [`run`](Self::run) then executes everything inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rlchol-pool-{w}"))
                .spawn(move || worker_loop(shared, w))
                .expect("spawning pool worker");
        }
        ThreadPool { shared, threads }
    }

    /// Number of runnable lanes (workers + participating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion. The calling thread participates —
    /// it executes pending pool jobs while it waits — so this is safe to
    /// invoke from inside another pool job. Panics from tasks are
    /// collected and the first one is re-raised here after the whole
    /// batch has finished.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        match tasks.len() {
            0 => return,
            1 => {
                for t in tasks {
                    t();
                }
                return;
            }
            _ => {}
        }
        let me = self.worker_index();
        let latch = Arc::new(Latch::new(tasks.len()));
        let jobs: Vec<Job> = tasks
            .into_iter()
            .map(|task| {
                // Erase 'env: the latch wait below keeps every borrow
                // alive until the job has run (completion is counted in
                // all paths, including panics).
                let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
                let latch = Arc::clone(&latch);
                Job(Box::new(move || {
                    let r = catch_unwind(AssertUnwindSafe(task));
                    latch.complete(r.err());
                }))
            })
            .collect();
        self.shared.push_batch(me, jobs);
        // Participate until the batch drains, then sleep on the latch for
        // any stragglers still running on workers.
        while !latch.is_done() {
            match self.shared.pop(me) {
                Some(job) => (job.0)(),
                None => {
                    let st = latch.state.lock().unwrap();
                    if st.remaining > 0 {
                        // Bounded wait: a worker running our straggler may
                        // itself spawn pool work we should pick up.
                        let _ = latch
                            .done
                            .wait_timeout(st, std::time::Duration::from_micros(200))
                            .unwrap();
                    }
                }
            }
        }
        let panic = latch.state.lock().unwrap().panic.take();
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// Pops and runs one pending job, if any; returns whether a job ran.
    /// Lets a caller that is waiting on its own condition (e.g. the tree
    /// scheduler with an empty ready queue) lend its lane to pending BLAS
    /// stripes instead of sleeping.
    pub fn try_run_one(&self) -> bool {
        match self.shared.pop(self.worker_index()) {
            Some(job) => {
                (job.0)();
                true
            }
            None => false,
        }
    }

    fn worker_index(&self) -> Option<usize> {
        let id = Arc::as_ptr(&self.shared) as usize;
        WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == id => Some(idx),
            _ => None,
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut epoch = self.shared.signal.lock().unwrap();
        *epoch += 1;
        drop(epoch);
        self.shared.wake.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, index))));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match shared.pop(Some(index)) {
            Some(job) => (job.0)(),
            None => {
                let epoch = shared.signal.lock().unwrap();
                let seen = *epoch;
                // Re-check under the signal lock so a push between our
                // failed pop and this wait cannot be lost.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let _ = shared
                    .wake
                    .wait_timeout_while(epoch, std::time::Duration::from_millis(50), |e| *e == seen)
                    .unwrap();
            }
        }
    }
}

/// Thread count for the global pool: `RLCHOL_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    match std::env::var("RLCHOL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide pool, started on first use with
/// [`default_threads`] lanes.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn boxed<'env, F: FnOnce() + Send + 'env>(f: F) -> Box<dyn FnOnce() + Send + 'env> {
        Box::new(f)
    }

    #[test]
    fn runs_all_tasks_with_borrows() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        let tasks = data
            .chunks_mut(7)
            .enumerate()
            .map(|(i, chunk)| boxed(move || chunk.fill(i + 1)))
            .collect();
        pool.run(tasks);
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[63], 64usize.div_ceil(7));
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(
            (0..10)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect(),
        );
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_run_from_inside_a_job() {
        let pool = Arc::new(ThreadPool::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                boxed(move || {
                    pool.run(
                        (0..5)
                            .map(|_| {
                                let c = Arc::clone(&counter);
                                boxed(move || {
                                    c.fetch_add(1, Ordering::SeqCst);
                                })
                            })
                            .collect(),
                    );
                })
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panic_propagates_after_batch_completes() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        let d1 = Arc::clone(&done);
        let d2 = Arc::clone(&done);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                boxed(move || {
                    d1.fetch_add(1, Ordering::SeqCst);
                }),
                boxed(|| panic!("boom")),
                boxed(move || {
                    d2.fetch_add(1, Ordering::SeqCst);
                }),
            ]);
        }));
        assert!(r.is_err(), "panic must surface to the submitter");
        assert_eq!(done.load(Ordering::SeqCst), 2, "other tasks still ran");
        // The pool survives a panicking batch.
        let after = AtomicUsize::new(0);
        pool.run(
            (0..3)
                .map(|_| {
                    boxed(|| {
                        after.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect(),
        );
        assert_eq!(after.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = global() as *const ThreadPool;
        let p2 = global() as *const ThreadPool;
        assert_eq!(p1, p2);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
