//! Persistent work-stealing thread pool for the parallel kernels.
//!
//! The `par_*` BLAS wrappers and the elimination-tree scheduler in
//! `rlchol-core` submit closures here instead of spawning OS threads per
//! call. Workers are started once (lazily, on first use of
//! [`global`]) and live for the process; each has a local deque and
//! steals from the shared injector or from its siblings when idle, so a
//! worker that finishes its stripe early picks up someone else's work.
//!
//! **Sizing.** The global pool runs `RLCHOL_THREADS` workers when that
//! environment variable is set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. A caller of [`ThreadPool::run`]
//! participates in execution itself, so a "pool of `t` threads" means `t`
//! runnable lanes including the submitter (`t - 1` parked workers).
//!
//! **Nesting.** Jobs may themselves call [`ThreadPool::run`] (the
//! tree-level scheduler factors a supernode whose inner BLAS stripes
//! re-enter the pool). Submission from a worker pushes to that worker's
//! local deque (LIFO pop keeps the cache-hot stripes on the spawning
//! worker; idle siblings steal FIFO from the other end), and the waiting
//! job keeps executing pending work instead of blocking a lane, so
//! nested parallelism cannot deadlock.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased unit of work. Safety: [`ThreadPool::run`] blocks
/// until every job it submitted has completed, so borrows captured by the
/// original `'env` closures outlive their execution.
struct Job(Box<dyn FnOnce() + Send + 'static>);

struct Shared {
    /// Queue for jobs submitted from outside the pool.
    injector: Mutex<VecDeque<Job>>,
    /// One local deque per worker: owner pushes/pops the back, thieves
    /// steal from the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake signal: bumped on every submission.
    signal: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// The (at most one) active allocation-free parallel-for.
    par_for: ForSlot,
}

/// Coordination state of [`ThreadPool::run_for`]. Everything lives
/// behind one mutex: claims are cheap (an index bump), and the per-call
/// protocol never touches the heap — the publishing caller keeps the
/// closure on its stack, helpers copy the (lifetime-erased) reference
/// out under the lock, and completion is a counter plus a condvar.
struct ForSlot {
    state: Mutex<ForState>,
    /// Signalled when `done` reaches `n`.
    finished: Condvar,
}

struct ForState {
    /// Lifetime-erased closure of the active parallel-for. The publisher
    /// blocks until `done == n` before returning, so the reference never
    /// outlives the borrow it was transmuted from; helpers only read it
    /// after claiming an index (`next < n`) under the lock.
    f: Option<&'static (dyn Fn(usize) + Sync)>,
    active: bool,
    /// Next unclaimed index.
    next: usize,
    /// Total indices of the active call.
    n: usize,
    /// Indices whose closure call has returned (or unwound).
    done: usize,
    /// First panic payload out of the closure, re-raised by the publisher.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl ForSlot {
    fn new() -> Self {
        ForSlot {
            state: Mutex::new(ForState {
                f: None,
                active: false,
                next: 0,
                n: 0,
                done: 0,
                panic: None,
            }),
            finished: Condvar::new(),
        }
    }
}

/// Claims and runs indices of the active parallel-for until none remain;
/// returns whether any index was run. Called by idle workers and by the
/// publisher itself.
fn help_par_for(shared: &Shared) -> bool {
    let mut helped = false;
    loop {
        let (f, i) = {
            let mut st = shared.par_for.state.lock().unwrap();
            if !st.active || st.next >= st.n {
                return helped;
            }
            let i = st.next;
            st.next += 1;
            (st.f.expect("active parallel-for holds its closure"), i)
        };
        let r = catch_unwind(AssertUnwindSafe(|| f(i)));
        let mut st = shared.par_for.state.lock().unwrap();
        if let Err(p) = r {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.done += 1;
        if st.done == st.n {
            shared.par_for.finished.notify_all();
        }
        helped = true;
    }
}

impl Shared {
    /// Pops one runnable job: own deque first (LIFO), then the injector,
    /// then stealing from siblings (FIFO). `me` is `None` off-pool.
    fn pop(&self, me: Option<usize>) -> Option<Job> {
        if let Some(w) = me {
            if let Some(job) = self.locals[w].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let start = me.map_or(0, |w| w + 1);
        let n = self.locals.len();
        for k in 0..n {
            let v = (start + k) % n;
            if Some(v) == me {
                continue;
            }
            if let Some(job) = self.locals[v].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Enqueues a whole batch under one queue lock and one broadcast —
    /// per-job wakeups would thundering-herd every parked worker once
    /// per stripe on the hot fan-out path.
    fn push_batch(&self, me: Option<usize>, jobs: Vec<Job>) {
        match me {
            Some(w) => self.locals[w].lock().unwrap().extend(jobs),
            None => self.injector.lock().unwrap().extend(jobs),
        }
        let mut epoch = self.signal.lock().unwrap();
        *epoch += 1;
        drop(epoch);
        self.wake.notify_all();
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the current thread, if it is a
    /// pool worker. The identity is the `Arc<Shared>` data address.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// Completion latch for one [`ThreadPool::run`] batch.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: n,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().unwrap().remaining == 0
    }
}

/// A persistent pool of worker threads (see the module docs).
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
}

impl ThreadPool {
    /// Starts a pool with `threads` runnable lanes (`threads - 1` workers
    /// plus the participating submitter). `threads == 1` spawns no
    /// workers; [`run`](Self::run) then executes everything inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            par_for: ForSlot::new(),
        });
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rlchol-pool-{w}"))
                .spawn(move || worker_loop(shared, w))
                .expect("spawning pool worker");
        }
        ThreadPool { shared, threads }
    }

    /// Number of runnable lanes (workers + participating caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion. The calling thread participates —
    /// it executes pending pool jobs while it waits — so this is safe to
    /// invoke from inside another pool job. Panics from tasks are
    /// collected and the first one is re-raised here after the whole
    /// batch has finished.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        match tasks.len() {
            0 => return,
            1 => {
                for t in tasks {
                    t();
                }
                return;
            }
            _ => {}
        }
        let me = self.worker_index();
        let latch = Arc::new(Latch::new(tasks.len()));
        let jobs: Vec<Job> = tasks
            .into_iter()
            .map(|task| {
                // Erase 'env: the latch wait below keeps every borrow
                // alive until the job has run (completion is counted in
                // all paths, including panics).
                let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
                let latch = Arc::clone(&latch);
                Job(Box::new(move || {
                    let r = catch_unwind(AssertUnwindSafe(task));
                    latch.complete(r.err());
                }))
            })
            .collect();
        self.shared.push_batch(me, jobs);
        // Participate until the batch drains, then sleep on the latch for
        // any stragglers still running on workers.
        while !latch.is_done() {
            match self.shared.pop(me) {
                Some(job) => (job.0)(),
                None => {
                    let st = latch.state.lock().unwrap();
                    if st.remaining > 0 {
                        // Bounded wait: a worker running our straggler may
                        // itself spawn pool work we should pick up.
                        let _ = latch
                            .done
                            .wait_timeout(st, std::time::Duration::from_micros(200))
                            .unwrap();
                    }
                }
            }
        }
        let panic = latch.state.lock().unwrap().panic.take();
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// Runs `f(0), f(1), …, f(n - 1)` across the pool and blocks until
    /// every call has returned. Unlike [`run`](Self::run) this performs
    /// **no heap allocation**: the closure stays on the caller's stack,
    /// indices are claimed from a shared counter, and idle workers join
    /// in through the pool's wake signal — which makes it the right
    /// primitive for steady-state hot paths (the level-set triangular
    /// solves) that must stay allocation-free after warm-up.
    ///
    /// Calls are *claimed* in ascending index order but may run
    /// concurrently; `f` must make concurrent calls safe (e.g. by
    /// writing disjoint targets per index). At most one `run_for` is
    /// active per pool at a time — a second concurrent (or nested) call
    /// simply runs its indices inline on the caller, which is always
    /// correct because the contract already requires index independence.
    /// Panics from `f` are collected and the first is re-raised here
    /// after all indices finish.
    pub fn run_for<'env>(&self, n: usize, f: &(dyn Fn(usize) + Sync + 'env)) {
        let inline = |f: &(dyn Fn(usize) + Sync + 'env)| {
            for i in 0..n {
                f(i);
            }
        };
        if n == 0 {
            return;
        }
        if self.threads <= 1 || n == 1 {
            return inline(f);
        }
        // Erase 'env: the wait below keeps the borrow alive until every
        // claimed index has finished running.
        let f_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        {
            let mut st = self.shared.par_for.state.lock().unwrap();
            if st.active {
                // Another parallel-for is in flight (concurrent callers,
                // or a nested call from inside `f`): run inline.
                drop(st);
                return inline(f);
            }
            st.active = true;
            st.f = Some(f_static);
            st.next = 0;
            st.n = n;
            st.done = 0;
            st.panic = None;
        }
        // Wake parked workers so they find the published slot.
        let mut epoch = self.shared.signal.lock().unwrap();
        *epoch += 1;
        drop(epoch);
        self.shared.wake.notify_all();
        // Participate, then wait for helpers still running their claims.
        help_par_for(&self.shared);
        let mut st = self.shared.par_for.state.lock().unwrap();
        while st.done < st.n {
            st = self.shared.par_for.finished.wait(st).unwrap();
        }
        st.active = false;
        st.f = None;
        let panic = st.panic.take();
        drop(st);
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }

    /// Pops and runs one pending job, if any; returns whether a job ran.
    /// Lets a caller that is waiting on its own condition (e.g. the tree
    /// scheduler with an empty ready queue) lend its lane to pending BLAS
    /// stripes instead of sleeping.
    pub fn try_run_one(&self) -> bool {
        match self.shared.pop(self.worker_index()) {
            Some(job) => {
                (job.0)();
                true
            }
            None => false,
        }
    }

    fn worker_index(&self) -> Option<usize> {
        let id = Arc::as_ptr(&self.shared) as usize;
        WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == id => Some(idx),
            _ => None,
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let mut epoch = self.shared.signal.lock().unwrap();
        *epoch += 1;
        drop(epoch);
        self.shared.wake.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, index))));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match shared.pop(Some(index)) {
            Some(job) => (job.0)(),
            None => {
                if help_par_for(&shared) {
                    continue;
                }
                let epoch = shared.signal.lock().unwrap();
                let seen = *epoch;
                // Re-check under the signal lock so a push between our
                // failed pop and this wait cannot be lost.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A parallel-for published between our failed help
                // attempt and this lock already bumped the epoch, so
                // recording the bump as `seen` would sleep through its
                // whole run; re-check the slot before waiting.
                {
                    let st = shared.par_for.state.lock().unwrap();
                    if st.active && st.next < st.n {
                        continue;
                    }
                }
                let _ = shared
                    .wake
                    .wait_timeout_while(epoch, std::time::Duration::from_millis(50), |e| *e == seen)
                    .unwrap();
            }
        }
    }
}

/// Thread count for the global pool: `RLCHOL_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    match std::env::var("RLCHOL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide pool, started on first use with
/// [`default_threads`] lanes.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn boxed<'env, F: FnOnce() + Send + 'env>(f: F) -> Box<dyn FnOnce() + Send + 'env> {
        Box::new(f)
    }

    #[test]
    fn runs_all_tasks_with_borrows() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        let tasks = data
            .chunks_mut(7)
            .enumerate()
            .map(|(i, chunk)| boxed(move || chunk.fill(i + 1)))
            .collect();
        pool.run(tasks);
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[63], 64usize.div_ceil(7));
    }

    #[test]
    fn single_lane_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(
            (0..10)
                .map(|_| {
                    boxed(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect(),
        );
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_run_from_inside_a_job() {
        let pool = Arc::new(ThreadPool::new(3));
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                boxed(move || {
                    pool.run(
                        (0..5)
                            .map(|_| {
                                let c = Arc::clone(&counter);
                                boxed(move || {
                                    c.fetch_add(1, Ordering::SeqCst);
                                })
                            })
                            .collect(),
                    );
                })
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panic_propagates_after_batch_completes() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        let d1 = Arc::clone(&done);
        let d2 = Arc::clone(&done);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                boxed(move || {
                    d1.fetch_add(1, Ordering::SeqCst);
                }),
                boxed(|| panic!("boom")),
                boxed(move || {
                    d2.fetch_add(1, Ordering::SeqCst);
                }),
            ]);
        }));
        assert!(r.is_err(), "panic must surface to the submitter");
        assert_eq!(done.load(Ordering::SeqCst), 2, "other tasks still ran");
        // The pool survives a panicking batch.
        let after = AtomicUsize::new(0);
        pool.run(
            (0..3)
                .map(|_| {
                    boxed(|| {
                        after.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect(),
        );
        assert_eq!(after.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn run_for_covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run_for(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn run_for_writes_disjoint_borrowed_chunks() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0usize; 60];
        let chunks: Vec<std::sync::Mutex<&mut [usize]>> =
            data.chunks_mut(7).map(std::sync::Mutex::new).collect();
        pool.run_for(chunks.len(), &|i| {
            for v in chunks[i].lock().unwrap().iter_mut() {
                *v = i + 1;
            }
        });
        drop(chunks);
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[59], 60usize.div_ceil(7));
    }

    #[test]
    fn run_for_single_lane_and_empty_run_inline() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run_for(5, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        pool.run_for(0, &|_| panic!("must not be called"));
    }

    #[test]
    fn nested_run_for_falls_back_inline() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.run_for(4, &|_| {
            pool.run_for(5, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn run_for_panic_propagates_after_all_indices_finish() {
        let pool = ThreadPool::new(4);
        let done = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run_for(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(r.is_err(), "panic must surface to the publisher");
        assert_eq!(done.load(Ordering::SeqCst), 7, "other indices still ran");
        // The slot is released: the pool keeps working.
        let after = AtomicUsize::new(0);
        pool.run_for(3, &|_| {
            after.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(after.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = global() as *const ThreadPool;
        let p2 = global() as *const ThreadPool;
        assert_eq!(p1, p2);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
