//! Multithreaded wrappers over the serial kernels.
//!
//! The paper's CPU baseline links multithreaded MKL; these wrappers give
//! the same call-level parallelism: the `n` dimension of GEMM/SYRK is
//! split into column stripes and the stripes run on the persistent
//! [`pool`](crate::pool) (no per-call thread spawn). Column-major storage
//! makes the stripes disjoint `&mut` regions, so no synchronization is
//! needed beyond the batch join. The submitting thread executes stripes
//! too, so `threads = t` means `t` runnable lanes.

use crate::gemm::{gemm_nn, gemm_nt};
use crate::pool;
use crate::syrk::syrk_ln;
use crate::trsm::{trsm_rlt, trsm_rlt_with};
use crate::NB;

/// Splits `n` columns into at most `threads` balanced stripes of whole
/// columns; returns `(start, width)` pairs.
fn column_stripes(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.max(1).min(n.max(1));
    let base = n / t;
    let extra = n % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for s in 0..t {
        let w = base + usize::from(s < extra);
        if w > 0 {
            out.push((start, w));
        }
        start += w;
    }
    out
}

/// Parallel `C := alpha A B + beta C` (see [`gemm_nn`]).
pub fn par_gemm_nn(
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if threads <= 1 || n < 2 {
        gemm_nn(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }
    let stripes = column_stripes(n, threads);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(stripes.len());
    let mut rest = c;
    let mut consumed = 0usize;
    for &(j0, w) in &stripes {
        // The caller may pass a slice capped at (n-1)·ldc + m, so the
        // last stripe takes whatever remains instead of a full stride.
        let take = ((j0 - consumed + w) * ldc).min(rest.len());
        let (mine, tail) = rest.split_at_mut(take);
        let my_c = &mut mine[(j0 - consumed) * ldc..];
        rest = tail;
        consumed = j0 + w;
        tasks.push(Box::new(move || {
            gemm_nn(m, w, k, alpha, a, lda, &b[j0 * ldb..], ldb, beta, my_c, ldc);
        }));
    }
    pool::global().run(tasks);
}

/// Parallel `C := alpha A Bᵀ + beta C` (see [`gemm_nt`]).
pub fn par_gemm_nt(
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if threads <= 1 || n < 2 {
        gemm_nt(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }
    let stripes = column_stripes(n, threads);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(stripes.len());
    let mut rest = c;
    let mut consumed = 0usize;
    for &(j0, w) in &stripes {
        // See par_gemm_nn: the final stripe may not own a full stride.
        let take = ((j0 - consumed + w) * ldc).min(rest.len());
        let (mine, tail) = rest.split_at_mut(take);
        let my_c = &mut mine[(j0 - consumed) * ldc..];
        rest = tail;
        consumed = j0 + w;
        tasks.push(Box::new(move || {
            // Rows j0..j0+w of stored B give columns j0.. of Bᵀ.
            gemm_nt(m, w, k, alpha, a, lda, &b[j0..], ldb, beta, my_c, ldc);
        }));
    }
    pool::global().run(tasks);
}

/// Stripe boundaries for a triangular update: bounds `j_s` chosen so each
/// stripe's lower-triangle area is roughly equal, deduplicated (the
/// quadratic-root balancing can clamp several bounds to the same column
/// on small `n`, which would produce empty stripes that waste pool
/// slots).
fn syrk_bounds(n: usize, threads: usize) -> Vec<usize> {
    let t = threads.min(n);
    let total = (n * (n + 1)) as f64 / 2.0;
    let mut bounds = vec![0usize];
    for s in 1..t {
        let target = total * s as f64 / t as f64;
        // Area of columns [0, j) of the triangle: n*j - j(j-1)/2 ≈ target.
        // Solve j² - (2n+1) j + 2*target = 0 for the smaller root.
        let nn = n as f64;
        let disc = ((2.0 * nn + 1.0) * (2.0 * nn + 1.0) - 8.0 * target).max(0.0);
        let j = ((2.0 * nn + 1.0 - disc.sqrt()) / 2.0).round() as usize;
        let j = j.clamp(*bounds.last().unwrap(), n);
        if j > *bounds.last().unwrap() {
            bounds.push(j);
        }
    }
    if *bounds.last().unwrap() < n {
        bounds.push(n);
    }
    bounds
}

/// Parallel `SYRK` on the lower triangle.
///
/// Column stripes of a triangular update have unequal areas, so stripes
/// are sized to balance the trailing-triangle area rather than the
/// width. Falls back to the serial kernel when fewer than two non-empty
/// stripes remain after balancing.
pub fn par_syrk_ln(
    threads: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if threads <= 1 || n < 2 {
        syrk_ln(n, k, alpha, a, lda, beta, c, ldc);
        return;
    }
    let bounds = syrk_bounds(n, threads);
    if bounds.len() < 3 {
        // Fewer than 2 non-empty stripes: striping buys nothing.
        syrk_ln(n, k, alpha, a, lda, beta, c, ldc);
        return;
    }
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bounds.len() - 1);
    let mut rest = c;
    let mut consumed = 0usize;
    for s in 0..bounds.len() - 1 {
        let (j0, j1) = (bounds[s], bounds[s + 1]);
        let w = j1 - j0;
        debug_assert!(w > 0, "syrk_bounds produced an empty stripe");
        let take = ((j0 - consumed + w) * ldc).min(rest.len());
        let (mine, tail) = rest.split_at_mut(take);
        let my_c = &mut mine[(j0 - consumed) * ldc..];
        rest = tail;
        consumed = j1;
        tasks.push(Box::new(move || {
            // The stripe holds full-height columns [j0, j1) of C, so
            // local row indices equal global row indices: the diagonal
            // block starts at row j0 and the rectangle below at row j1.
            // Diagonal w x w triangle:
            syrk_ln(w, k, alpha, &a[j0..], lda, beta, &mut my_c[j0..], ldc);
            // Rectangle below: rows j1..n.
            let below = n - j1;
            if below > 0 {
                gemm_nt(
                    below,
                    w,
                    k,
                    alpha,
                    &a[j1..],
                    lda,
                    &a[j0..],
                    lda,
                    beta,
                    &mut my_c[j1..],
                    ldc,
                );
            }
        }));
    }
    pool::global().run(tasks);
}

/// Parallel `X Lᵀ = B` in place (see [`trsm_rlt`]): the blocked
/// right-looking column sweep is kept serial (each block depends on all
/// previous ones), but the dominant trailing GEMM update of each block —
/// `O(m·n²)` of the `O(m·n²)` total — runs striped on the pool. The
/// small per-block unblocked solves stay serial.
pub fn par_trsm_rlt(
    threads: usize,
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
) {
    if threads <= 1 || n <= NB || m == 0 {
        trsm_rlt(m, n, l, ldl, b, ldb);
        return;
    }
    trsm_rlt_with(threads, m, n, l, ldl, b, ldb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.random_range(-1.0..1.0)).collect()
    }

    #[test]
    fn stripes_cover_exactly() {
        for n in [0, 1, 5, 17] {
            for t in [1, 2, 3, 8, 40] {
                let s = column_stripes(n, t);
                let covered: usize = s.iter().map(|&(_, w)| w).sum();
                assert_eq!(covered, n);
                let mut pos = 0;
                for &(j0, w) in &s {
                    assert_eq!(j0, pos);
                    pos += w;
                }
            }
        }
    }

    #[test]
    fn syrk_bounds_have_no_empty_stripes() {
        for n in [2usize, 3, 5, 8, 83, 311] {
            for t in [2usize, 3, 7, 16, 64] {
                let b = syrk_bounds(n, t);
                assert_eq!(*b.first().unwrap(), 0);
                assert_eq!(*b.last().unwrap(), n);
                for w in b.windows(2) {
                    assert!(w[0] < w[1], "empty stripe in bounds {b:?} (n={n}, t={t})");
                }
            }
        }
    }

    #[test]
    fn tiny_syrk_with_many_threads_falls_back_cleanly() {
        // n=2 with 16 threads used to produce duplicate clamped bounds;
        // now it must still compute the right answer.
        let mut rng = StdRng::seed_from_u64(9);
        for n in [2usize, 3, 4] {
            let k = 3;
            let a = rand_vec(&mut rng, n * k);
            let c0 = rand_vec(&mut rng, n * n);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            syrk_ln(n, k, -1.0, &a, n, 1.0, &mut c1, n);
            par_syrk_ln(16, n, k, -1.0, &a, n, 1.0, &mut c2, n);
            for j in 0..n {
                for i in j..n {
                    let (x, y) = (c1[j * n + i], c2[j * n + i]);
                    assert!((x - y).abs() < 1e-12, "n={n} ({i},{j}): {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn par_gemm_matches_serial() {
        let mut rng = StdRng::seed_from_u64(10);
        let (m, n, k) = (33, 29, 17);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let bt = rand_vec(&mut rng, n * k);
        let c0 = rand_vec(&mut rng, m * n);
        for threads in [1, 2, 4, 7] {
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm_nn(m, n, k, -1.0, &a, m, &b, k, 1.0, &mut c1, m);
            par_gemm_nn(threads, m, n, k, -1.0, &a, m, &b, k, 1.0, &mut c2, m);
            assert_eq!(c1, c2, "gemm_nn threads={threads}");

            let mut c3 = c0.clone();
            let mut c4 = c0.clone();
            gemm_nt(m, n, k, 2.0, &a, m, &bt, n, 0.5, &mut c3, m);
            par_gemm_nt(threads, m, n, k, 2.0, &a, m, &bt, n, 0.5, &mut c4, m);
            assert_eq!(c3, c4, "gemm_nt threads={threads}");
        }
    }

    #[test]
    fn par_syrk_matches_serial() {
        let mut rng = StdRng::seed_from_u64(11);
        let (n, k) = (83, 21);
        let a = rand_vec(&mut rng, n * k);
        let c0 = rand_vec(&mut rng, n * n);
        for threads in [1, 2, 3, 5, 16] {
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            syrk_ln(n, k, -1.0, &a, n, 1.0, &mut c1, n);
            par_syrk_ln(threads, n, k, -1.0, &a, n, 1.0, &mut c2, n);
            // Compare only the lower triangle (upper is untouched by both).
            for j in 0..n {
                for i in j..n {
                    let (x, y) = (c1[j * n + i], c2[j * n + i]);
                    assert!(
                        (x - y).abs() < 1e-12,
                        "threads={threads} ({i},{j}): {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn par_trsm_matches_serial() {
        let mut rng = StdRng::seed_from_u64(12);
        // n crosses several NB blocks so the parallel path engages.
        let (m, n) = (45, 3 * NB + 7);
        let ldl = n + 1;
        let ldb = m + 2;
        let mut l = vec![0.0; ldl * n];
        for j in 0..n {
            for i in j..n {
                l[j * ldl + i] = if i == j {
                    2.0 + rng.random_range(0.0..1.0)
                } else {
                    rng.random_range(-0.5..0.5)
                };
            }
        }
        let b0 = rand_vec(&mut rng, ldb * n);
        for threads in [1, 2, 4, 8] {
            let mut b1 = b0.clone();
            let mut b2 = b0.clone();
            trsm_rlt(m, n, &l, ldl, &mut b1, ldb);
            par_trsm_rlt(threads, m, n, &l, ldl, &mut b2, ldb);
            let worst = b1
                .iter()
                .zip(&b2)
                .fold(0.0f64, |w, (&x, &y)| w.max((x - y).abs()));
            assert!(worst < 1e-11, "threads={threads}: diff {worst}");
        }
    }
}
