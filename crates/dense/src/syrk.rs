//! Symmetric rank-k update (`DSYRK`), lower triangle, no transpose:
//! `C := alpha * A * Aᵀ + beta * C` touching only `tril(C)`.
//!
//! This is the single call RL uses to form a supernode's entire update
//! matrix, and the per-block call RLB uses on ancestor diagonal blocks.

use crate::gemm::gemm_nt;
use crate::NB;

/// `C := alpha * A Aᵀ + beta * C` on the lower triangle.
///
/// `A` is `n x k`, `C` is `n x n`; only entries with `i >= j` are read or
/// written.
pub fn syrk_ln(
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if n == 0 {
        return;
    }
    debug_assert!(lda >= n, "lda {lda} < n {n}");
    debug_assert!(ldc >= n, "ldc {ldc} < n {n}");
    let mut j0 = 0;
    while j0 < n {
        let jb = NB.min(n - j0);
        // Diagonal block: small triangular kernel.
        syrk_diag_block(j0, jb, k, alpha, a, lda, beta, c, ldc);
        // Sub-diagonal rectangle: plain GEMM with Bᵀ = A[J, :]ᵀ.
        let below = n - j0 - jb;
        if below > 0 {
            // C[j0+jb.., J] = alpha * A[j0+jb.., :] * A[J, :]ᵀ + beta * C
            let cj = j0 * ldc + j0 + jb;
            gemm_nt(
                below,
                jb,
                k,
                alpha,
                &a[j0 + jb..],
                lda,
                &a[j0..],
                lda,
                beta,
                &mut c[cj..],
                ldc,
            );
        }
        j0 += jb;
    }
}

/// Updates the `jb x jb` lower-triangular block of `C` at `(j0, j0)`.
fn syrk_diag_block(
    j0: usize,
    jb: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    // Scale the triangle by beta first.
    for j in 0..jb {
        let base = (j0 + j) * ldc + j0 + j;
        let col = &mut c[base..base + jb - j];
        if beta == 0.0 {
            col.fill(0.0);
        } else if beta != 1.0 {
            for v in col {
                *v *= beta;
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }
    // Rank-1 accumulation over the k dimension; columns of A are
    // contiguous so the inner loop vectorizes.
    for p in 0..k {
        let ap = &a[p * lda + j0..p * lda + j0 + jb];
        for j in 0..jb {
            let s = alpha * ap[j];
            if s == 0.0 {
                continue;
            }
            let base = (j0 + j) * ldc + j0 + j;
            let col = &mut c[base..base + jb - j];
            for (ci, &av) in col.iter_mut().zip(&ap[j..]) {
                *ci += s * av;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn naive_syrk(
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) {
        for j in 0..n {
            for i in j..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[p * lda + i] * a[p * lda + j];
                }
                c[j * ldc + i] = beta * c[j * ldc + i] + alpha * acc;
            }
        }
    }

    fn check(n: usize, k: usize, alpha: f64, beta: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lda = n + 2;
        let ldc = n + 1;
        let a: Vec<f64> = (0..lda * k.max(1))
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let c0: Vec<f64> = (0..ldc * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        syrk_ln(n, k, alpha, &a, lda, beta, &mut c1, ldc);
        naive_syrk(n, k, alpha, &a, lda, beta, &mut c2, ldc);
        for j in 0..n {
            // Lower triangle matches.
            for i in j..n {
                let err = (c1[j * ldc + i] - c2[j * ldc + i]).abs();
                assert!(
                    err < 1e-11 * (k as f64 + 1.0),
                    "n={n} k={k} ({i},{j}): {err}"
                );
            }
            // Strict upper triangle untouched.
            for i in 0..j {
                assert_eq!(c1[j * ldc + i], c0[j * ldc + i], "upper ({i},{j}) modified");
            }
        }
    }

    #[test]
    fn matches_reference_small() {
        for &(n, k) in &[(1, 1), (3, 5), (8, 8), (17, 4), (64, 64)] {
            check(n, k, -1.0, 1.0, n as u64 * 31 + k as u64);
        }
    }

    #[test]
    fn matches_reference_across_blocks() {
        for &(n, k) in &[(65, 40), (130, 7), (200, 100)] {
            check(n, k, -1.0, 1.0, n as u64);
            check(n, k, 0.5, 0.0, n as u64 + 1);
        }
    }

    #[test]
    fn k_zero_only_scales() {
        check(10, 0, 1.0, 0.5, 9);
    }
}
