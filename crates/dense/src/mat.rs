//! Owned column-major dense matrices.

use std::fmt;

/// A column-major dense matrix: entry `(i, j)` lives at `data[i + j*nrows]`.
///
/// The leading dimension always equals `nrows`, so a `DMat` can be passed
/// directly to the slice-based kernels in this crate.
#[derive(Clone, PartialEq)]
pub struct DMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// A zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a column-major data vector.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        DMat { nrows, ncols, data }
    }

    /// Builds from rows given as nested slices (row-major input).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut m = DMat::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols);
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Fills with values from a function of `(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMat::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension (equals `nrows`).
    pub fn ld(&self) -> usize {
        self.nrows
    }

    /// Column-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable column-major data slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// The transpose.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// `self * other`.
    pub fn matmul(&self, other: &DMat) -> DMat {
        assert_eq!(self.ncols, other.nrows);
        let mut c = DMat::zeros(self.nrows, other.ncols);
        crate::gemm::gemm_nn(
            self.nrows,
            other.ncols,
            self.ncols,
            1.0,
            &self.data,
            self.nrows,
            &other.data,
            other.nrows,
            1.0,
            &mut c.data,
            self.nrows,
        );
        c
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry difference against `other`.
    pub fn max_abs_diff(&self, other: &DMat) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Zeroes the strict upper triangle (useful after in-place POTRF,
    /// which leaves the upper triangle untouched).
    pub fn zero_upper(&mut self) {
        for j in 1..self.ncols {
            for i in 0..j.min(self.nrows) {
                self[(i, j)] = 0.0;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(12) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(12) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = DMat::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn matmul_small() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_identity() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn zero_upper_clears_strict_upper_only() {
        let mut a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.zero_upper();
        assert_eq!(a[(0, 1)], 0.0);
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 0)], 3.0);
        assert_eq!(a[(1, 1)], 4.0);
    }
}
