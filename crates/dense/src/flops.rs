//! Floating-point operation counts for the BLAS/LAPACK kernels.
//!
//! These formulas feed the performance models: the simulated CPU and GPU
//! clocks advance by `flops / effective_rate` per call, so the counts must
//! match what the kernels actually execute (multiplies + adds).

/// Flops for `POTRF` on an `n x n` matrix: `n³/3 + n²/2 + n/6`.
pub fn flops_potrf(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0 + n * n / 2.0 + n / 6.0
}

/// Flops for a right-side `TRSM` with an `m x n` right-hand side and an
/// `n x n` triangle: `m n²`.
pub fn flops_trsm(m: usize, n: usize) -> f64 {
    m as f64 * n as f64 * n as f64
}

/// Flops for `SYRK` updating the lower triangle of an `n x n` matrix with
/// an `n x k` operand: `k n (n + 1)`.
pub fn flops_syrk(n: usize, k: usize) -> f64 {
    k as f64 * n as f64 * (n as f64 + 1.0)
}

/// Flops for `GEMM` with `C (m x n) += A (m x k) * B (k x n)`: `2 m n k`.
pub fn flops_gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flops for a triangular vector solve with an `n x n` triangle: `n²`.
pub fn flops_trsv(n: usize) -> f64 {
    (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potrf_matches_closed_form_small() {
        // n = 1: one sqrt-ish op bucket; formula gives 1.
        assert!((flops_potrf(1) - 1.0).abs() < 1e-12);
        // n = 2: 8/3 + 2 + 1/3 = 5
        assert!((flops_potrf(2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gemm_symmetry() {
        assert_eq!(flops_gemm(3, 4, 5), flops_gemm(4, 3, 5));
        assert_eq!(flops_gemm(10, 1, 1), 20.0);
    }

    #[test]
    fn syrk_is_half_of_gemm_asymptotically() {
        let (n, k) = (1000, 500);
        let ratio = flops_syrk(n, k) / flops_gemm(n, n, k);
        assert!((ratio - 0.5).abs() < 1e-2);
    }

    #[test]
    fn trsm_scales_quadratically_in_triangle_size() {
        assert_eq!(flops_trsm(10, 4), 160.0);
        assert_eq!(flops_trsv(7), 49.0);
    }
}
