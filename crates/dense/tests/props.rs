//! Property-based tests of the dense kernels against naive references.

use proptest::prelude::*;
use rlchol_dense::gemm::gemm_naive;
use rlchol_dense::{gemm_nn, gemm_nt, potrf, syrk_ln, trsm_rlt, DMat};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0..2.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_nn_matches_naive(
        m in 1usize..40, n in 1usize..40, k in 1usize..40, seed in 0u64..1000
    ) {
        let _ = seed;
        let a = (0..m * k).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect::<Vec<_>>();
        let b = (0..k * n).map(|i| ((i * 5 + 1) % 13) as f64 - 6.0).collect::<Vec<_>>();
        let c0 = (0..m * n).map(|i| (i % 3) as f64).collect::<Vec<_>>();
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm_nn(m, n, k, -1.5, &a, m, &b, k, 0.5, &mut c1, m);
        gemm_naive(m, n, k, -1.5, &a, m, &b, k, false, 0.5, &mut c2, m);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn gemm_nt_matches_naive(
        m in 1usize..32, n in 1usize..32, k in 1usize..32
    ) {
        let a = (0..m * k).map(|i| ((i * 3) % 7) as f64 - 3.0).collect::<Vec<_>>();
        let b = (0..n * k).map(|i| ((i * 11) % 5) as f64 - 2.0).collect::<Vec<_>>();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm_nt(m, n, k, 1.0, &a, m, &b, n, 0.0, &mut c1, m);
        gemm_naive(m, n, k, 1.0, &a, m, &b, n, true, 0.0, &mut c2, m);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn syrk_equals_gemm_with_self(n in 1usize..40, k in 1usize..24) {
        let a: Vec<f64> = (0..n * k).map(|i| ((i * 13 + 5) % 9) as f64 * 0.25 - 1.0).collect();
        let mut c_syrk = vec![0.0; n * n];
        syrk_ln(n, k, 1.0, &a, n, 0.0, &mut c_syrk, n);
        let mut c_gemm = vec![0.0; n * n];
        gemm_nt(n, n, k, 1.0, &a, n, &a, n, 0.0, &mut c_gemm, n);
        for j in 0..n {
            for i in j..n {
                prop_assert!((c_syrk[j * n + i] - c_gemm[j * n + i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn potrf_then_multiply_recovers_spd(n in 1usize..48, x in vec_strategy(48 * 48)) {
        // A = M Mᵀ + n·I is SPD for any M.
        let m = DMat::from_col_major(n, n, x[..n * n].to_vec());
        let mut a = m.matmul(&m.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let orig = a.clone();
        potrf(n, a.as_mut_slice(), n).unwrap();
        a.zero_upper();
        let rec = a.matmul(&a.transpose());
        prop_assert!(rec.max_abs_diff(&orig) < 1e-8 * (n as f64 + 1.0));
    }

    #[test]
    fn trsm_rlt_solves(m in 1usize..32, n in 1usize..32) {
        // Well-conditioned lower triangle.
        let mut l = vec![0.0f64; n * n];
        for j in 0..n {
            for i in j..n {
                l[j * n + i] = if i == j { 3.0 } else { ((i + 2 * j) % 3) as f64 * 0.2 - 0.2 };
            }
        }
        let x_true: Vec<f64> = (0..m * n).map(|i| ((i * 17) % 11) as f64 - 5.0).collect();
        // b = x Lᵀ
        let mut b = vec![0.0; m * n];
        gemm_naive(m, n, n, 1.0, &x_true, m, &l, n, true, 0.0, &mut b, m);
        trsm_rlt(m, n, &l, n, &mut b, m);
        for (got, want) in b.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }
}
