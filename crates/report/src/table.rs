//! Fixed-width text tables in the layout of the paper's Tables I and II.

/// A simple right-aligned text table with a left-aligned first column.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders to a string with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = width[0]));
                } else {
                    line.push_str(&format!("  {:>w$}", cell, w = width[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

/// Formats seconds with three decimals (the paper's runtime format).
pub fn fmt_secs(t: f64) -> String {
    format!("{t:.3}")
}

/// Formats a speedup with two decimals (the paper's format).
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Matrix", "runtime (s)", "speedup"]);
        t.row(vec!["CurlCurl_2", "3.800", "1.59"]);
        t.row(vec!["Queen_4147", "89.552", "4.27"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("89.552"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(3.8004), "3.800");
        assert_eq!(fmt_speedup(1.589), "1.59");
    }
}
