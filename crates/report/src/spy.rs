//! ASCII sparsity ("spy") plots — terminal renderings of nonzero
//! patterns like the paper's Figure 1/2 matrices.

/// Renders the lower-triangular pattern of an `n x n` symmetric matrix
/// given per-column row lists, downsampled onto a `size x size` character
/// grid ('*' = at least one nonzero in the cell, '.' = empty).
pub fn spy_lower<F>(n: usize, size: usize, mut col_rows: F) -> String
where
    F: FnMut(usize) -> Vec<usize>,
{
    let size = size.min(n).max(1);
    let mut grid = vec![vec!['.'; size]; size];
    let cell = |i: usize| i * size / n;
    for j in 0..n {
        for i in col_rows(j) {
            debug_assert!(i >= j, "lower triangle expected");
            grid[cell(i)][cell(j)] = '*';
        }
    }
    let mut out = String::with_capacity(size * (size + 3));
    for row in grid {
        out.push(' ');
        out.extend(row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_draws_a_diagonal() {
        let s = spy_lower(8, 8, |j| vec![j]);
        let lines: Vec<&str> = s.lines().collect();
        for (r, line) in lines.iter().enumerate() {
            let stars: Vec<usize> = line
                .chars()
                .enumerate()
                .filter(|&(_, c)| c == '*')
                .map(|(i, _)| i - 1)
                .collect();
            assert_eq!(stars, vec![r], "row {r}");
        }
    }

    #[test]
    fn downsampling_keeps_coverage() {
        // Dense lower triangle at half resolution: lower cells all marked.
        let n = 16;
        let s = spy_lower(n, 8, |j| (j..n).collect());
        for (r, line) in s.lines().enumerate() {
            for (c, ch) in line.chars().skip(1).enumerate() {
                if c <= r {
                    assert_eq!(ch, '*', "cell ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn small_size_is_clamped() {
        let s = spy_lower(3, 10, |j| vec![j]);
        assert_eq!(s.lines().count(), 3);
    }
}
