//! Minimal CSV output (quotes fields containing separators).

use std::io::Write;

/// Writes rows of string-like cells as CSV to `w`.
pub fn write_csv<W: Write, S: AsRef<str>>(w: &mut W, rows: &[Vec<S>]) -> std::io::Result<()> {
    for row in rows {
        let line: Vec<String> = row.iter().map(|c| escape(c.as_ref())).collect();
        writeln!(w, "{}", line.join(","))?;
    }
    Ok(())
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_plain_rows() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &[vec!["a", "b"], vec!["1", "2"]]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n");
    }

    #[test]
    fn escapes_commas_and_quotes() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &[vec!["a,b", "say \"hi\""]]).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "\"a,b\",\"say \"\"hi\"\"\"\n"
        );
    }
}
