//! ASCII line plots for terminal figure output.

/// Renders multiple series as an ASCII plot.
///
/// All series share the x grid `xs`; `ys[s]` is series `s`, labeled
/// `labels[s]` and drawn with its marker character. Intended for
/// monotone curves like performance profiles (y in [0, 1]).
pub fn ascii_plot(
    xs: &[f64],
    ys: &[Vec<f64>],
    labels: &[&str],
    width: usize,
    height: usize,
) -> String {
    assert!(!xs.is_empty());
    assert_eq!(ys.len(), labels.len());
    for s in ys {
        assert_eq!(s.len(), xs.len());
    }
    const MARKS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let (xmin, xmax) = (xs[0], *xs.last().unwrap());
    let ymin = ys
        .iter()
        .flatten()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let ymax = ys
        .iter()
        .flatten()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1.0);
    let mut grid = vec![vec![' '; width]; height];
    let to_col = |x: f64| -> usize {
        if xmax > xmin {
            (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize
        } else {
            0
        }
    };
    let to_row = |y: f64| -> usize {
        let frac = if ymax > ymin {
            (y - ymin) / (ymax - ymin)
        } else {
            0.0
        };
        height - 1 - (frac * (height - 1) as f64).round() as usize
    };
    for (s, series) in ys.iter().enumerate() {
        let mark = MARKS[s % MARKS.len()];
        for (k, &y) in series.iter().enumerate() {
            let (r, c) = (to_row(y), to_col(xs[k]));
            grid[r][c] = mark;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let yval = ymax - (ymax - ymin) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{yval:5.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "      +{}\n       x: {:.2} .. {:.2}\n",
        "-".repeat(width),
        xmin,
        xmax
    ));
    for (s, label) in labels.iter().enumerate() {
        out.push_str(&format!("       {} {}\n", MARKS[s % MARKS.len()], label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_contain_markers_and_labels() {
        let xs = vec![0.0, 1.0, 2.0];
        let ys = vec![vec![0.0, 0.5, 1.0], vec![1.0, 1.0, 1.0]];
        let s = ascii_plot(&xs, &ys, &["up", "flat"], 20, 8);
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("up"));
        assert!(s.contains("flat"));
    }

    #[test]
    fn handles_single_point() {
        let s = ascii_plot(&[0.0], &[vec![0.5]], &["dot"], 10, 4);
        assert!(s.contains('*'));
    }
}
