//! Dolan–Moré performance profiles (the paper's Figure 3).
//!
//! Given times `t[p][s]` for problem `p` under solver `s`, the profile of
//! solver `s` is
//!
//! ```text
//! ρ_s(τ) = |{ p : t[p][s] ≤ 2^τ · min_s' t[p][s'] }| / |P|
//! ```
//!
//! — the fraction of problems solved within a factor `2^τ` of the best
//! solver. Failures (`None`) never count, matching how the paper treats
//! RL's nlpkkt120 run.

/// A set of solvers evaluated on a common problem set.
#[derive(Debug, Clone)]
pub struct PerformanceProfile {
    solver_names: Vec<String>,
    /// `times[p][s]`: seconds, or `None` when solver `s` failed on `p`.
    times: Vec<Vec<Option<f64>>>,
}

impl PerformanceProfile {
    /// Creates a profile over the given solver names.
    pub fn new<S: Into<String>>(solver_names: Vec<S>) -> Self {
        PerformanceProfile {
            solver_names: solver_names.into_iter().map(Into::into).collect(),
            times: Vec::new(),
        }
    }

    /// Adds one problem's times (aligned with the solver names).
    pub fn add_problem(&mut self, times: Vec<Option<f64>>) {
        assert_eq!(times.len(), self.solver_names.len());
        assert!(
            times.iter().flatten().all(|&t| t > 0.0),
            "times must be positive"
        );
        self.times.push(times);
    }

    /// Number of problems recorded.
    pub fn num_problems(&self) -> usize {
        self.times.len()
    }

    /// Solver names.
    pub fn solvers(&self) -> &[String] {
        &self.solver_names
    }

    /// Performance ratios `t / best` per problem for solver `s`
    /// (`None` = failure).
    pub fn ratios(&self, s: usize) -> Vec<Option<f64>> {
        self.times
            .iter()
            .map(|row| {
                let best = row.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
                row[s].map(|t| t / best)
            })
            .collect()
    }

    /// `ρ_s(τ)`: fraction of problems with ratio ≤ `2^τ`.
    pub fn rho(&self, s: usize, tau: f64) -> f64 {
        let bound = 2.0f64.powf(tau);
        let hits = self
            .ratios(s)
            .iter()
            .flatten()
            .filter(|&&r| r <= bound + 1e-12)
            .count();
        hits as f64 / self.num_problems().max(1) as f64
    }

    /// Samples every solver's profile at `points` evenly spaced τ values
    /// in `[0, tau_max]`; returns `(taus, curves[s][k])`.
    pub fn curves(&self, tau_max: f64, points: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
        let taus: Vec<f64> = (0..points)
            .map(|k| tau_max * k as f64 / (points - 1).max(1) as f64)
            .collect();
        let curves = (0..self.solver_names.len())
            .map(|s| taus.iter().map(|&t| self.rho(s, t)).collect())
            .collect();
        (taus, curves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerformanceProfile {
        let mut p = PerformanceProfile::new(vec!["A", "B"]);
        p.add_problem(vec![Some(1.0), Some(2.0)]); // A best
        p.add_problem(vec![Some(4.0), Some(1.0)]); // B best, A 4x
        p.add_problem(vec![None, Some(3.0)]); // A fails
        p
    }

    #[test]
    fn rho_at_zero_counts_wins() {
        let p = sample();
        // A wins problem 1 only → 1/3; B wins problems 2 and 3 → 2/3.
        assert!((p.rho(0, 0.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.rho(1, 0.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rho_is_monotone_and_saturates() {
        let p = sample();
        let (_, curves) = p.curves(4.0, 9);
        for c in &curves {
            for w in c.windows(2) {
                assert!(w[1] >= w[0] - 1e-12);
            }
        }
        // B succeeds everywhere → reaches 1; A fails once → caps at 2/3.
        assert!((curves[1].last().unwrap() - 1.0).abs() < 1e-12);
        assert!((curves[0].last().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_relative_to_best() {
        let p = sample();
        let r = p.ratios(0);
        assert_eq!(r[0], Some(1.0));
        assert_eq!(r[1], Some(4.0));
        assert_eq!(r[2], None);
    }

    #[test]
    #[should_panic(expected = "times must be positive")]
    fn rejects_nonpositive_times() {
        let mut p = PerformanceProfile::new(vec!["A"]);
        p.add_problem(vec![Some(0.0)]);
    }
}
