//! # rlchol-report — performance profiles, tables and plots
//!
//! Reporting utilities for the experiment harnesses:
//!
//! * [`profile`] — Dolan–Moré performance profiles (the paper's Figure 3):
//!   for each solver, the fraction of problems solved within a factor
//!   `2^τ` of the best solver;
//! * [`table`] — fixed-width text tables matching the layout of the
//!   paper's Tables I and II;
//! * [`plot`] — ASCII line plots for terminal-friendly figure output;
//! * [`csv`] — minimal CSV writing for downstream plotting.

pub mod csv;
pub mod plot;
pub mod profile;
pub mod spy;
pub mod table;

pub use plot::ascii_plot;
pub use profile::PerformanceProfile;
pub use spy::spy_lower;
pub use table::Table;
