//! Criterion benches of the task-parallel factorization engines against
//! their serial counterparts (real wall time; see the `cpu_scaling` bin
//! for the full thread-sweep trajectory with JSON output).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rlchol_core::rl::factor_rl_cpu;
use rlchol_core::rlb::factor_rlb_cpu;
use rlchol_core::sched::{factor_rl_cpu_par, factor_rlb_cpu_par};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_symbolic::{analyze, SymbolicOptions};
use std::time::Duration;

fn bench_factorization_par(c: &mut Criterion) {
    let a0 = grid3d(14, 14, 14, Stencil::Star7, 1, 21);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let af = a0.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let a = af.permute(&sym.perm);

    let mut g = c.benchmark_group("factorization_par_14x14x14");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    g.bench_function("rl_serial", |b| b.iter(|| factor_rl_cpu(&sym, &a).unwrap()));
    g.bench_function("rlb_serial", |b| {
        b.iter(|| factor_rlb_cpu(&sym, &a).unwrap())
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("rl_par", threads), &threads, |b, &t| {
            b.iter(|| factor_rl_cpu_par(&sym, &a, t).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("rlb_par", threads), &threads, |b, &t| {
            b.iter(|| factor_rlb_cpu_par(&sym, &a, t).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_factorization_par);
criterion_main!(benches);
