//! Criterion benches of the supernodal triangular solves.

use criterion::{criterion_group, criterion_main, Criterion};
use rlchol_core::rl::factor_rl_cpu;
use rlchol_core::solve::{solve, solve_backward, solve_forward};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_symbolic::{analyze, SymbolicOptions};
use std::time::Duration;

fn bench_solve(c: &mut Criterion) {
    let a0 = grid3d(12, 12, 12, Stencil::Star7, 1, 41);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let af = a0.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let a = af.permute(&sym.perm);
    let run = factor_rl_cpu(&sym, &a).unwrap();
    let n = a.n();
    let b: Vec<f64> = (0..n).map(|i| (i % 11) as f64 - 5.0).collect();

    let mut g = c.benchmark_group("solve_12x12x12");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.bench_function("forward", |bench| {
        bench.iter(|| {
            let mut x = b.clone();
            solve_forward(&sym, &run.factor, &mut x);
            x
        })
    });
    g.bench_function("backward", |bench| {
        bench.iter(|| {
            let mut x = b.clone();
            solve_backward(&sym, &run.factor, &mut x);
            x
        })
    });
    g.bench_function("full", |bench| bench.iter(|| solve(&sym, &run.factor, &b)));
    g.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
