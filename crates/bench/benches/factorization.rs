//! Criterion benches of the numeric factorization engines (real wall
//! time of the actual Rust execution, complementing the simulated-clock
//! experiment binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use rlchol_core::engine::GpuOptions;
use rlchol_core::gpu_rl::factor_rl_gpu;
use rlchol_core::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use rlchol_core::rl::factor_rl_cpu;
use rlchol_core::rlb::factor_rlb_cpu;
use rlchol_core::simplicial::simplicial_cholesky;
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_perfmodel::MachineModel;
use rlchol_symbolic::{analyze, SymbolicOptions};
use std::time::Duration;

fn bench_factorization(c: &mut Criterion) {
    let a0 = grid3d(10, 10, 10, Stencil::Star7, 1, 21);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let af = a0.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let a = af.permute(&sym.perm);

    let mut g = c.benchmark_group("factorization_10x10x10");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    g.bench_function("rl_cpu", |b| b.iter(|| factor_rl_cpu(&sym, &a).unwrap()));
    g.bench_function("rlb_cpu", |b| b.iter(|| factor_rlb_cpu(&sym, &a).unwrap()));
    g.bench_function("simplicial", |b| {
        b.iter(|| simplicial_cholesky(&a).unwrap())
    });

    let opts = GpuOptions {
        machine: MachineModel::perlmutter(64).scale_compute(24.0),
        threshold: 20_000,
        overlap: true,
        streams: 0,
        assign: None,
        faults: None,
        retire: None,
        lookahead: None,
    };
    g.bench_function("rl_gpu_sim", |b| {
        b.iter(|| factor_rl_gpu(&sym, &a, &opts).unwrap())
    });
    g.bench_function("rlb_gpu_v2_sim", |b| {
        b.iter(|| factor_rlb_gpu(&sym, &a, &opts, RlbGpuVersion::V2).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_factorization);
criterion_main!(benches);
