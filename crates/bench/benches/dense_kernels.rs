//! Criterion benches of the dense BLAS kernels (real wall time): the
//! building blocks every factorization engine calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_nt");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for &n in &[64usize, 256, 512] {
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * n, 2);
        let mut out = vec![0.0; n * n];
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                rlchol_dense::gemm_nt(n, n, n, -1.0, &a, n, &b, n, 1.0, &mut out, n);
            })
        });
    }
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("syrk_ln");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for &(n, k) in &[(256usize, 64usize), (512, 128)] {
        let a = rand_vec(n * k, 3);
        let mut out = vec![0.0; n * n];
        g.throughput(Throughput::Elements((k * n * n) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{k}")),
            &(n, k),
            |bench, &(n, k)| {
                bench.iter(|| {
                    rlchol_dense::syrk_ln(n, k, -1.0, &a, n, 1.0, &mut out, n);
                })
            },
        );
    }
    g.finish();
}

fn bench_potrf_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("panel_factor");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for &n in &[64usize, 256] {
        // SPD via a dominant diagonal.
        let base: Vec<f64> = {
            let mut m = rand_vec(n * n, 4);
            for i in 0..n {
                m[i * n + i] = n as f64 + 2.0;
            }
            m
        };
        g.bench_with_input(BenchmarkId::new("potrf", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut a = base.clone();
                rlchol_dense::potrf(n, &mut a, n).unwrap();
                a
            })
        });
        let l = {
            let mut a = base.clone();
            rlchol_dense::potrf(n, &mut a, n).unwrap();
            a
        };
        let rhs = rand_vec(n * n, 5);
        g.bench_with_input(BenchmarkId::new("trsm_rlt", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut b = rhs.clone();
                rlchol_dense::trsm_rlt(n, n, &l, n, &mut b, n);
                b
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_syrk, bench_potrf_trsm);
criterion_main!(benches);
