//! Criterion benches of the simulated GPU runtime itself: how much real
//! wall time the simulation layer adds per device operation (allocation,
//! transfer, kernel dispatch + numerics).

use criterion::{criterion_group, criterion_main, Criterion};
use rlchol_gpu::Gpu;
use rlchol_perfmodel::perlmutter_gpu;
use std::time::Duration;

fn bench_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_runtime");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    g.bench_function("alloc_free", |b| {
        let gpu = Gpu::new(perlmutter_gpu());
        b.iter(|| {
            let buf = gpu.alloc(4096).unwrap();
            gpu.free(buf).unwrap();
        })
    });

    g.bench_function("h2d_d2h_64k", |b| {
        let gpu = Gpu::new(perlmutter_gpu());
        let s = gpu.default_stream();
        let buf = gpu.alloc(8192).unwrap();
        let src = vec![1.0f64; 8192];
        let mut dst = vec![0.0f64; 8192];
        b.iter(|| {
            gpu.memcpy_h2d(s, buf, 0, &src).unwrap();
            gpu.memcpy_d2h(s, buf, 0, &mut dst).unwrap();
            gpu.sync_stream(s);
        })
    });

    g.bench_function("syrk_dispatch_128", |b| {
        let gpu = Gpu::new(perlmutter_gpu());
        let s = gpu.default_stream();
        let (n, k) = (128usize, 64usize);
        let a_buf = gpu.alloc(n * k).unwrap();
        let c_buf = gpu.alloc(n * n).unwrap();
        let src = vec![0.5f64; n * k];
        gpu.memcpy_h2d(s, a_buf, 0, &src).unwrap();
        b.iter(|| {
            gpu.syrk(s, a_buf, 0, n, n, k, 1.0, 0.0, c_buf, 0, n)
                .unwrap();
        })
    });

    g.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
