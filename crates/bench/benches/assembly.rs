//! Criterion benches of the update-matrix assembly (the scatter loops
//! the paper parallelizes with OpenMP), serial vs scoped threads.

use criterion::{criterion_group, criterion_main, Criterion};
use rlchol_core::assemble::{assemble_update, assemble_update_par};
use rlchol_core::storage::FactorData;
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_symbolic::{analyze, SymbolicOptions};
use std::time::Duration;

fn bench_assembly(c: &mut Criterion) {
    let a0 = grid3d(10, 10, 10, Stencil::Star7, 1, 31);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let af = a0.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let a = af.permute(&sym.perm);

    // Pick the supernode with the most below-diagonal rows that still has
    // multiple targets.
    let s = (0..sym.nsup())
        .filter(|&s| !sym.rows[s].is_empty())
        .max_by_key(|&s| sym.rows[s].len())
        .expect("grid has updating supernodes");
    let r = sym.rows[s].len();
    let upd: Vec<f64> = (0..r * r).map(|i| (i % 17) as f64 * 0.25).collect();

    let mut g = c.benchmark_group("assembly");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.bench_function("serial", |b| {
        let mut data = FactorData::load(&sym, &a);
        b.iter(|| assemble_update(&sym, &mut data.sn, s, &upd, r))
    });
    for threads in [2usize, 4] {
        g.bench_function(format!("par_{threads}"), |b| {
            let mut data = FactorData::load(&sym, &a);
            b.iter(|| assemble_update_par(&sym, &mut data.sn, s, &upd, r, threads))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
