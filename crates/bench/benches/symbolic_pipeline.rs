//! Criterion benches of the symbolic phases: elimination tree, column
//! counts, supernode detection, amalgamation and partition refinement.

use criterion::{criterion_group, criterion_main, Criterion};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_symbolic::colcount::col_counts;
use rlchol_symbolic::etree::EliminationTree;
use rlchol_symbolic::merge::merge_supernodes;
use rlchol_symbolic::pr::refine_partition;
use rlchol_symbolic::supernodes::{find_supernodes, supernode_rows};
use rlchol_symbolic::{analyze, SymbolicOptions};
use std::time::Duration;

fn bench_symbolic(c: &mut Criterion) {
    let a0 = grid3d(14, 14, 14, Stencil::Star7, 1, 9);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let a = a0.permute(&fill);

    let mut g = c.benchmark_group("symbolic");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    g.bench_function("etree", |b| b.iter(|| EliminationTree::from_matrix(&a)));

    let t = EliminationTree::from_matrix(&a);
    g.bench_function("col_counts", |b| b.iter(|| col_counts(&a, &t)));

    let counts = col_counts(&a, &t);
    g.bench_function("supernodes+rows", |b| {
        b.iter(|| {
            let sn = find_supernodes(&t, &counts, false);
            supernode_rows(&a, &sn)
        })
    });

    let sn = find_supernodes(&t, &counts, false);
    let rows = supernode_rows(&a, &sn);
    g.bench_function("merge_25pct", |b| {
        b.iter(|| merge_supernodes(&sn, &rows, 0.25))
    });

    let m = merge_supernodes(&sn, &rows, 0.25);
    g.bench_function("partition_refinement", |b| {
        b.iter(|| refine_partition(&m.sn, &m.rows))
    });

    g.bench_function("analyze_full", |b| {
        b.iter(|| analyze(&a, &SymbolicOptions::default()))
    });

    g.finish();
}

fn bench_ordering(c: &mut Criterion) {
    let a = grid3d(12, 12, 12, Stencil::Star7, 1, 10);
    let mut g = c.benchmark_group("ordering");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    g.bench_function("nested_dissection", |b| {
        b.iter(|| order(&a, OrderingMethod::NestedDissection))
    });
    g.bench_function("rcm", |b| b.iter(|| order(&a, OrderingMethod::Rcm)));
    g.finish();
}

criterion_group!(benches, bench_symbolic, bench_ordering);
criterion_main!(benches);
