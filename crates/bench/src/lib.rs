//! # rlchol-bench — experiment harnesses
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the paper (see DESIGN.md §3 for the experiment index):
//!
//! * `table1` — Table I (GPU-accelerated RL);
//! * `table2` — Table II (GPU-accelerated RLB v2);
//! * `fig3` — Figure 3 (Dolan–Moré performance profile);
//! * `gpu_only` — §IV-B's GPU-only runs;
//! * `rlb_variants` — §IV-B's RLB v1 vs v2 comparison;
//! * `threshold_sweep` — the 600 k/750 k threshold ablation;
//! * `merge_pr_ablation` — §IV-A's supernode merging / partition
//!   refinement setup study.
//!
//! [`prepare`] runs ordering + symbolic analysis once per matrix;
//! [`PreparedMatrix`] then feeds any number of numeric engines so the
//! harnesses stay cheap.

use rlchol_core::engine::{CpuRun, GpuOptions, Method};
use rlchol_core::gpu_rl::factor_rl_gpu;
use rlchol_core::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use rlchol_core::rl::factor_rl_cpu;
use rlchol_core::rlb::factor_rlb_cpu;
use rlchol_core::{CholeskySolver, FactorError};
use rlchol_matgen::suite::{SuiteConfig, SuiteEntry};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_perfmodel::MachineModel;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::{analyze, SymbolicFactor, SymbolicOptions};

pub use rlchol_core::engine::GpuRun;

/// A matrix with its ordering and symbolic analysis done.
pub struct PreparedMatrix {
    pub name: &'static str,
    pub entry: SuiteEntry,
    pub sym: SymbolicFactor,
    /// The matrix in factor ordering (input to every numeric engine).
    pub a_fact: SymCsc,
}

/// Orders (nested dissection, as in the paper) and analyzes one suite
/// entry with the paper's symbolic setup (merging at 25 %, PR on).
pub fn prepare(entry: &SuiteEntry) -> PreparedMatrix {
    prepare_with(entry, &SymbolicOptions::default())
}

/// [`prepare`] with explicit symbolic options (used by the ablations).
pub fn prepare_with(entry: &SuiteEntry, opts: &SymbolicOptions) -> PreparedMatrix {
    let a = entry.generate();
    let fill = order(&a, OrderingMethod::NestedDissection);
    let a_fill = a.permute(&fill);
    let sym = analyze(&a_fill, opts);
    let a_fact = a_fill.permute(&sym.perm);
    PreparedMatrix {
        name: entry.name,
        entry: entry.clone(),
        sym,
        a_fact,
    }
}

/// CPU baseline of the paper: run both CPU engines once, replay their
/// traces over the thread sweep under the suite's scaled machine model,
/// and return `(best_seconds, rl, rlb)`.
pub fn cpu_baseline(p: &PreparedMatrix) -> (f64, CpuRun, CpuRun) {
    cpu_baseline_with(p, &SuiteConfig::default())
}

/// [`cpu_baseline`] with an explicit suite configuration.
pub fn cpu_baseline_with(p: &PreparedMatrix, cfg: &SuiteConfig) -> (f64, CpuRun, CpuRun) {
    let rl = factor_rl_cpu(&p.sym, &p.a_fact).expect("suite matrices are SPD");
    let rlb = factor_rlb_cpu(&p.sym, &p.a_fact).expect("suite matrices are SPD");
    let best = best_cpu_scaled(&rl, cfg).min(best_cpu_scaled(&rlb, cfg));
    (best, rl, rlb)
}

/// Best scaled-model CPU time of one run over the paper's thread sweep.
pub fn best_cpu_scaled(run: &CpuRun, cfg: &SuiteConfig) -> f64 {
    rlchol_perfmodel::PAPER_THREAD_SWEEP
        .iter()
        .map(|&t| {
            let model = rlchol_perfmodel::perlmutter_cpu(t).scale_compute(cfg.machine_scale);
            rlchol_perfmodel::replay_cpu(&run.trace, &model)
        })
        .fold(f64::INFINITY, f64::min)
}

/// GPU options for a suite run: the scaled device capacity from the suite
/// config and the requested threshold.
pub fn gpu_options(cfg: &SuiteConfig, threshold: usize) -> GpuOptions {
    GpuOptions {
        machine: MachineModel::perlmutter(cfg.gpu_host_threads)
            .scale_compute(cfg.machine_scale)
            .with_gpu_capacity(cfg.gpu_capacity_bytes),
        threshold,
        overlap: true,
        streams: 0,
        assign: None,
        retire: None,
        lookahead: None,
        faults: None,
    }
}

/// Runs one GPU engine on a prepared matrix.
pub fn run_gpu(
    p: &PreparedMatrix,
    method: Method,
    opts: &GpuOptions,
) -> Result<GpuRun, FactorError> {
    match method {
        Method::RlGpu => factor_rl_gpu(&p.sym, &p.a_fact, opts),
        Method::RlbGpuV1 => factor_rlb_gpu(&p.sym, &p.a_fact, opts, RlbGpuVersion::V1),
        Method::RlbGpuV2 => factor_rlb_gpu(&p.sym, &p.a_fact, opts, RlbGpuVersion::V2),
        Method::RlGpuPipe => rlchol_core::sched::factor_rl_gpu_pipe(&p.sym, &p.a_fact, opts),
        Method::RlbGpuPipe => rlchol_core::sched::factor_rlb_gpu_pipe(&p.sym, &p.a_fact, opts),
        _ => panic!("run_gpu called with a CPU method"),
    }
}

/// Renders a run's per-stream kernel/transfer breakdown, one indented
/// line per stream with its utilization over the simulated elapsed time.
pub fn stream_breakdown(run: &GpuRun) -> String {
    use rlchol_gpu::StreamRole;
    let utils = run.stats.stream_utilization(run.sim_seconds);
    let mut lines: Vec<String> = run
        .stats
        .per_stream
        .iter()
        .zip(&utils)
        .enumerate()
        .map(|(i, (st, util))| {
            let role = match st.role {
                StreamRole::Compute => "compute",
                StreamRole::Copy => "copy",
                StreamRole::Unassigned => "-",
            };
            format!(
                "  stream {i} ({role}): {} kernels ({:.4} s), {} transfers ({:.4} s), util {:.1}%",
                st.kernel_launches,
                st.kernel_seconds,
                st.transfer_count,
                st.transfer_seconds,
                util * 100.0
            )
        })
        .collect();
    // Averaging all streams together mixes the near-idle copy streams
    // into the compute numbers; report the two populations apart.
    let mean = |role: StreamRole| -> Option<f64> {
        let per = run.stats.role_utilization(run.sim_seconds, role);
        (!per.is_empty()).then(|| per.iter().sum::<f64>() / per.len() as f64)
    };
    if let (Some(cmp), Some(cpy)) = (mean(StreamRole::Compute), mean(StreamRole::Copy)) {
        lines.push(format!(
            "  mean util: compute {:.1}%, copy {:.1}%",
            cmp * 100.0,
            cpy * 100.0
        ));
    }
    lines.join("\n")
}

/// Counts supernodes at or above the offload threshold.
pub fn count_offloaded(sym: &SymbolicFactor, threshold: usize) -> usize {
    (0..sym.nsup())
        .filter(|&s| sym.sn_size(s) >= threshold.max(1))
        .count()
}

/// Verifies a factorization end-to-end through the solver pipeline (used
/// by harness self-checks): returns the refined residual.
pub fn verify_entry(entry: &SuiteEntry) -> f64 {
    let a = entry.generate();
    let solver = CholeskySolver::factor(&a, &Default::default()).expect("SPD");
    let n = a.n();
    let b: Vec<f64> = (0..n).map(|i| ((i * 17) % 29) as f64 - 14.0).collect();
    let (_, resid) = solver.solve_refined(&a, &b, 2);
    resid
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::paper_suite;

    #[test]
    fn prepare_smallest_suite_entry() {
        // PFlow analogue is cheap enough for a unit test.
        let suite = paper_suite();
        let entry = suite.iter().find(|e| e.name == "PFlow_742").unwrap();
        let p = prepare(entry);
        assert!(p.sym.nsup() > 10);
        assert_eq!(p.a_fact.n(), entry.spec.n());
        p.sym.validate().unwrap();
    }

    #[test]
    fn offload_count_monotone_in_threshold() {
        let suite = paper_suite();
        let entry = suite.iter().find(|e| e.name == "PFlow_742").unwrap();
        let p = prepare(entry);
        let mut prev = usize::MAX;
        for thr in [1usize, 1_000, 10_000, 100_000] {
            let c = count_offloaded(&p.sym, thr);
            assert!(c <= prev);
            prev = c;
        }
    }
}
