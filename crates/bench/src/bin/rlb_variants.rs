//! **E-RLBV — §IV-B text**: GPU-RLB v1 (one batched update transfer per
//! supernode) versus v2 (per-block streaming transfers).
//!
//! Paper finding: "On larger matrices, RLB with a single update matrix is
//! up to 9 percent better than RLB with multiple update matrices, whereas
//! on smaller matrices RLB with multiple update matrices is up to 3
//! percent better" — i.e. transfer *latency* is negligible, *bandwidth*
//! matters, so batching the same bytes into one transfer hardly changes
//! anything.

use rlchol_bench::{gpu_options, prepare, run_gpu};
use rlchol_core::engine::Method;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;

fn main() {
    let cfg = SuiteConfig::default();
    let opts = gpu_options(&cfg, cfg.rlb_threshold);
    println!("RLB GPU variants: v1 (batched transfer) vs v2 (per-block transfers)\n");
    let mut t = Table::new(vec![
        "Matrices",
        "v1 (s)",
        "v2 (s)",
        "v1/v2",
        "v1 D2H ops",
        "v2 D2H ops",
    ]);
    let mut best_v1_gain = (String::new(), 0.0f64);
    let mut best_v2_gain = (String::new(), 0.0f64);
    let mut flops: Vec<(String, f64, f64, f64)> = Vec::new();
    for entry in paper_suite() {
        let p = prepare(&entry);
        let v1 = match run_gpu(&p, Method::RlbGpuV1, &opts) {
            Ok(r) => r,
            Err(_) => {
                t.row(vec![
                    entry.name.to_string(),
                    "OOM".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                eprintln!("done {} (v1 OOM)", entry.name);
                continue;
            }
        };
        let v2 = run_gpu(&p, Method::RlbGpuV2, &opts).expect("v2 streams through memory limits");
        let ratio = v1.sim_seconds / v2.sim_seconds;
        // v1 faster → ratio < 1 → v1 gain = 1 - ratio.
        let v1_gain = (1.0 - ratio) * 100.0;
        let v2_gain = (ratio - 1.0) * 100.0;
        if v1_gain > best_v1_gain.1 {
            best_v1_gain = (entry.name.to_string(), v1_gain);
        }
        if v2_gain > best_v2_gain.1 {
            best_v2_gain = (entry.name.to_string(), v2_gain);
        }
        flops.push((
            entry.name.to_string(),
            p.sym.flops,
            v1.sim_seconds,
            v2.sim_seconds,
        ));
        t.row(vec![
            entry.name.to_string(),
            format!("{:.4}", v1.sim_seconds),
            format!("{:.4}", v2.sim_seconds),
            format!("{ratio:.3}"),
            format!("{}", v1.stats.d2h_count),
            format!("{}", v2.stats.d2h_count),
        ]);
        eprintln!("done {}", entry.name);
    }
    println!("{}", t.render());
    println!(
        "largest v1 advantage: {:.1}% on {} (paper: up to ~9% on larger matrices)",
        best_v1_gain.1, best_v1_gain.0
    );
    println!(
        "largest v2 advantage: {:.1}% on {} (paper: up to ~3% on smaller matrices)",
        best_v2_gain.1, best_v2_gain.0
    );
    println!(
        "interpretation (paper §IV-B): transferring the same bytes in one vs many \
         operations barely matters — PCIe latency is negligible, bandwidth rules."
    );
}
