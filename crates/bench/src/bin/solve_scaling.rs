//! Solve scaling trajectory: the serial sweeps against the level-set
//! (tree-parallel) sweeps over a thread × RHS-count sweep, on an
//! ND-ordered `grid3d(k, k, k, Star7)` — the bushy elimination tree the
//! level width comes from.
//!
//! Prints a table and writes `BENCH_solve_scaling.json` so successive
//! PRs can track the curve. As with `BENCH_cpu_scaling.json`, a 1-CPU
//! container can only show the scheduling overhead, not speedup —
//! regenerate on a multicore host for the real trajectory.
//!
//! Usage: `solve_scaling [k] [out.json]` — `k` is the grid edge
//! (default 24; use a smaller k for a quick smoke run).

use rlchol_core::{CholeskySolver, SolveWorkspace, SolverOptions};
use rlchol_matgen::{grid3d, Stencil};
use std::time::Instant;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const RHS_SWEEP: [usize; 3] = [1, 4, 16];

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args
        .next()
        .map(|v| v.parse().expect("grid edge must be an integer"))
        .unwrap_or(24);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_solve_scaling.json".to_string());

    // Give the persistent pool enough lanes for the sweep even when the
    // machine reports fewer; an explicit RLCHOL_THREADS wins.
    if std::env::var("RLCHOL_THREADS").is_err() {
        std::env::set_var(
            "RLCHOL_THREADS",
            THREAD_SWEEP.iter().max().unwrap().to_string(),
        );
    }

    let name = format!("grid3d({k}, {k}, {k}, Star7)");
    eprintln!("generating {name} ...");
    let a = grid3d(k, k, k, Stencil::Star7, 1, 29);
    let n = a.n();
    // Analyze once (ND ordering is the default); the solve plan rides
    // on the handle, so the thread sweep only flips `set_solve_threads`.
    let mut handle = CholeskySolver::analyze(&a, &SolverOptions::default());
    let fact = handle.factor_with(&a).expect("SPD");
    let plan_info = handle.solve_info();
    eprintln!(
        "n = {}, factor nnz = {}, plan: {} levels, max width {}",
        n,
        handle.factor_nnz(),
        plan_info.levels,
        plan_info.max_width
    );

    // Min of three runs, like the other trajectory benches.
    let time = |f: &mut dyn FnMut()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    println!(
        "{:>8}  {:>6}  {:>12}  {:>10}  {:>10}",
        "threads", "nrhs", "path", "solve (s)", "speedup"
    );
    let mut rows = Vec::new();
    let max_rhs = *RHS_SWEEP.iter().max().unwrap();
    let b: Vec<f64> = (0..n * max_rhs)
        .map(|i| ((i * 13) % 37) as f64 - 18.0)
        .collect();
    let mut x = vec![0.0; n * max_rhs];
    let mut ws = SolveWorkspace::warm(n, max_rhs);
    for nrhs in RHS_SWEEP {
        let mut serial_s = f64::NAN;
        for threads in THREAD_SWEEP {
            handle.set_solve_threads(threads);
            let info = handle.solve_info();
            let path = if info.level_set {
                "level-set"
            } else {
                "serial"
            };
            // Untimed warm-up (pool spawn, workspace growth).
            handle
                .solve_many(&fact, &b[..n * nrhs], &mut x[..n * nrhs], nrhs, &mut ws)
                .expect("buffers sized to the system");
            let secs = time(&mut || {
                handle
                    .solve_many(&fact, &b[..n * nrhs], &mut x[..n * nrhs], nrhs, &mut ws)
                    .expect("buffers sized to the system");
            });
            if threads == 1 {
                serial_s = secs;
            }
            let speedup = serial_s / secs;
            println!("{threads:>8}  {nrhs:>6}  {path:>12}  {secs:>10.5}  {speedup:>10.2}");
            rows.push(format!(
                concat!(
                    "    {{\"threads\": {}, \"nrhs\": {}, \"path\": \"{}\", ",
                    "\"solve_s\": {:.6}, \"speedup\": {:.4}}}"
                ),
                threads, nrhs, path, secs, speedup,
            ));
        }
    }

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        concat!(
            "{{\n",
            "  \"matrix\": \"{}\",\n",
            "  \"n\": {},\n",
            "  \"factor_nnz\": {},\n",
            "  \"plan_levels\": {},\n",
            "  \"plan_max_width\": {},\n",
            "  \"hardware_threads\": {},\n",
            "  \"sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        name,
        n,
        handle.factor_nnz(),
        plan_info.levels,
        plan_info.max_width,
        hw,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("writing scaling JSON");
    eprintln!("wrote {out_path} (hardware threads: {hw})");
    if hw == 1 {
        eprintln!(
            "note: this machine exposes a single hardware thread; the \
             level-set rows measure scheduling overhead, not speedup — \
             rerun on a multicore host for the real curve"
        );
    }
}
