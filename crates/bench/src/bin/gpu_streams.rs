//! Stream-count × retirement-mode sweep of the pipelined multi-stream
//! GPU engines on a 3-D grid problem (nested-dissection ordered, so the
//! supernodal elimination tree has real breadth to pipeline over).
//!
//! Every stream count runs under both retirement disciplines — in-order
//! (ascending supernode retirement) and out-of-order (retire on
//! device→host copy landing, per-target sequencing) — side by side, and
//! an extra sweep pins the out-of-order lookahead window at several
//! sizes against the adaptive controller. Prints tables and writes
//! `BENCH_gpu_streams.json` (simulated elapsed seconds plus
//! compute/copy-split stream utilization for each configuration) so
//! successive PRs can track the pipelining trajectory. The acceptance
//! shape: out-of-order at 8 streams beats in-order at 8 streams, and
//! the factors are identical between the modes at every stream count.
//!
//! Usage: `gpu_streams [k] [out.json]` — `k` is the grid edge (default
//! 20; use a smaller k for a quick smoke run). Everything is offloaded
//! (threshold 0), the regime where the device pipeline matters most.

use rlchol_core::engine::{GpuOptions, GpuRun, Method, RetireMode};
use rlchol_core::sched::{factor_rl_gpu_pipe, factor_rlb_gpu_pipe};
use rlchol_gpu::StreamRole;
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_symbolic::{analyze, SymbolicOptions};

const SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Pinned lookahead windows swept at the widest stream count; 0 is the
/// adaptive controller.
const LOOKAHEADS: [usize; 5] = [0, 4, 8, 16, 32];

/// Mean utilization of the streams tagged `role` over the run.
fn role_mean(run: &GpuRun, role: StreamRole) -> f64 {
    let per = run.stats.role_utilization(run.sim_seconds, role);
    if per.is_empty() {
        0.0
    } else {
        per.iter().sum::<f64>() / per.len() as f64
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args
        .next()
        .map(|v| v.parse().expect("grid edge must be an integer"))
        .unwrap_or(20);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_gpu_streams.json".to_string());

    let name = format!("grid3d({k}, {k}, {k}, Star7)");
    eprintln!("generating {name} ...");
    let a0 = grid3d(k, k, k, Stencil::Star7, 1, 33);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let af = a0.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let a = af.permute(&sym.perm);
    eprintln!(
        "n = {}, supernodes = {}, factor nnz = {}, flops = {:.3e}",
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops
    );

    println!(
        "{:>8}  {:>12}  {:>12}  {:>7}  {:>12}  {:>12}  {:>9}  {:>9}  {:>5}",
        "streams",
        "RL inorder",
        "RL ooo",
        "ooo x",
        "RLB inorder",
        "RLB ooo",
        "cmp util",
        "cpy util",
        "win"
    );
    let mut rows = Vec::new();
    let mut rl_base = f64::NAN;
    for streams in SWEEP {
        let run = |method: Method, retire: RetireMode| -> GpuRun {
            let opts = GpuOptions::with_threshold(0)
                .with_streams(streams)
                .with_retire(retire);
            let run = match method {
                Method::RlGpuPipe => factor_rl_gpu_pipe(&sym, &a, &opts),
                _ => factor_rlb_gpu_pipe(&sym, &a, &opts),
            }
            .expect("SPD");
            assert_eq!(run.streams_used, streams, "no OOM expected in the sweep");
            assert_eq!(run.retire, retire);
            run
        };
        let rl_in = run(Method::RlGpuPipe, RetireMode::InOrder);
        let rl_ooo = run(Method::RlGpuPipe, RetireMode::Ooo);
        let rlb_in = run(Method::RlbGpuPipe, RetireMode::InOrder);
        let rlb_ooo = run(Method::RlbGpuPipe, RetireMode::Ooo);
        assert_eq!(
            rl_in.factor, rl_ooo.factor,
            "retirement modes must agree bitwise (RL, {streams} streams)"
        );
        assert_eq!(
            rlb_in.factor, rlb_ooo.factor,
            "retirement modes must agree bitwise (RLB, {streams} streams)"
        );
        if streams == 1 {
            rl_base = rl_in.sim_seconds;
        }
        let cmp = role_mean(&rl_ooo, StreamRole::Compute);
        let cpy = role_mean(&rl_ooo, StreamRole::Copy);
        println!(
            "{streams:>8}  {:>12.6}  {:>12.6}  {:>7.2}  {:>12.6}  {:>12.6}  {cmp:>9.3}  {cpy:>9.3}  {:>5}",
            rl_in.sim_seconds,
            rl_ooo.sim_seconds,
            rl_base / rl_ooo.sim_seconds,
            rlb_in.sim_seconds,
            rlb_ooo.sim_seconds,
            rl_ooo.lookahead,
        );
        rows.push(format!(
            concat!(
                "    {{\"streams\": {}, ",
                "\"rl_inorder_s\": {:.9}, \"rl_ooo_s\": {:.9}, ",
                "\"rlb_inorder_s\": {:.9}, \"rlb_ooo_s\": {:.9}, ",
                "\"rl_inorder_speedup\": {:.4}, \"rl_ooo_speedup\": {:.4}, ",
                "\"rl_ooo_lookahead\": {}, ",
                "\"rl_ooo_compute_util\": {:.4}, \"rl_ooo_copy_util\": {:.4}, ",
                "\"rl_inorder_compute_util\": {:.4}, \"rl_inorder_copy_util\": {:.4}, ",
                "\"rlb_ooo_compute_util\": {:.4}, \"rlb_ooo_copy_util\": {:.4}}}"
            ),
            streams,
            rl_in.sim_seconds,
            rl_ooo.sim_seconds,
            rlb_in.sim_seconds,
            rlb_ooo.sim_seconds,
            rl_base / rl_in.sim_seconds,
            rl_base / rl_ooo.sim_seconds,
            rl_ooo.lookahead,
            role_mean(&rl_ooo, StreamRole::Compute),
            role_mean(&rl_ooo, StreamRole::Copy),
            role_mean(&rl_in, StreamRole::Compute),
            role_mean(&rl_in, StreamRole::Copy),
            role_mean(&rlb_ooo, StreamRole::Compute),
            role_mean(&rlb_ooo, StreamRole::Copy),
        ));
    }

    // Pinned-lookahead sweep at the widest stream count: how the fixed
    // windows bracket the adaptive controller (lookahead 0).
    let wide = *SWEEP.last().unwrap();
    println!("\nRL out-of-order lookahead sweep at {wide} streams:");
    println!("{:>10}  {:>12}  {:>10}", "lookahead", "RL ooo", "final win");
    let mut la_rows = Vec::new();
    for la in LOOKAHEADS {
        let opts = GpuOptions::with_threshold(0)
            .with_streams(wide)
            .with_retire(RetireMode::Ooo)
            .with_lookahead(la);
        let run = factor_rl_gpu_pipe(&sym, &a, &opts).expect("SPD");
        let label = if la == 0 {
            "adaptive".to_string()
        } else {
            la.to_string()
        };
        println!(
            "{label:>10}  {:>12.6}  {:>10}",
            run.sim_seconds, run.lookahead
        );
        la_rows.push(format!(
            "    {{\"lookahead\": {}, \"rl_ooo_s\": {:.9}, \"final_window\": {}}}",
            la, run.sim_seconds, run.lookahead
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"matrix\": \"{}\",\n",
            "  \"n\": {},\n",
            "  \"supernodes\": {},\n",
            "  \"factor_nnz\": {},\n",
            "  \"flops\": {:.6e},\n",
            "  \"label\": \"{}\",\n",
            "  \"threshold\": 0,\n",
            "  \"sweep\": [\n{}\n  ],\n",
            "  \"lookahead_sweep_streams\": {},\n",
            "  \"lookahead_sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        name,
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops,
        Method::RlGpuPipe.label(),
        rows.join(",\n"),
        wide,
        la_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("writing stream-sweep JSON");
    eprintln!("wrote {out_path}");
}
