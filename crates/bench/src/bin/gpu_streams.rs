//! Stream-count sweep of the pipelined multi-stream GPU engines on a
//! 3-D grid problem (nested-dissection ordered, so the supernodal
//! elimination tree has real breadth to pipeline over).
//!
//! Prints a table and writes `BENCH_gpu_streams.json` (simulated elapsed
//! seconds plus per-stream utilization for each configuration) so
//! successive PRs can track the pipelining trajectory. The acceptance
//! shape: elapsed strictly decreasing from 1 to 2 streams.
//!
//! Usage: `gpu_streams [k] [out.json]` — `k` is the grid edge (default
//! 20; use a smaller k for a quick smoke run). Everything is offloaded
//! (threshold 0), the regime where the device pipeline matters most.

use rlchol_core::engine::{GpuOptions, GpuRun, Method};
use rlchol_core::sched::{factor_rl_gpu_pipe, factor_rlb_gpu_pipe};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_symbolic::{analyze, SymbolicOptions};

const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args
        .next()
        .map(|v| v.parse().expect("grid edge must be an integer"))
        .unwrap_or(20);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_gpu_streams.json".to_string());

    let name = format!("grid3d({k}, {k}, {k}, Star7)");
    eprintln!("generating {name} ...");
    let a0 = grid3d(k, k, k, Stencil::Star7, 1, 33);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let af = a0.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let a = af.permute(&sym.perm);
    eprintln!(
        "n = {}, supernodes = {}, factor nnz = {}, flops = {:.3e}",
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops
    );

    let utilization = |run: &GpuRun| -> (f64, f64) {
        let per = run.stats.stream_utilization(run.sim_seconds);
        let mean = if per.is_empty() {
            0.0
        } else {
            per.iter().sum::<f64>() / per.len() as f64
        };
        let max = per.iter().fold(0.0f64, |m, &u| m.max(u));
        (mean, max)
    };

    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}  {:>10}  {:>10}",
        "streams", "RL_G(pipe)", "RLB_G(pipe)", "RL x", "util mean", "util max"
    );
    let mut rows = Vec::new();
    let mut rl_base = f64::NAN;
    for streams in SWEEP {
        let opts = GpuOptions::with_threshold(0).with_streams(streams);
        let rl = factor_rl_gpu_pipe(&sym, &a, &opts).expect("SPD");
        let rlb = factor_rlb_gpu_pipe(&sym, &a, &opts).expect("SPD");
        assert_eq!(rl.streams_used, streams, "no OOM expected in the sweep");
        if streams == 1 {
            rl_base = rl.sim_seconds;
        }
        let (rl_mean, rl_max) = utilization(&rl);
        let (rlb_mean, rlb_max) = utilization(&rlb);
        println!(
            "{streams:>8}  {:>12.6}  {:>12.6}  {:>8.2}  {rl_mean:>10.3}  {rl_max:>10.3}",
            rl.sim_seconds,
            rlb.sim_seconds,
            rl_base / rl.sim_seconds,
        );
        let fmt_util = |per: &[f64]| -> String {
            per.iter()
                .map(|u| format!("{u:.4}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        rows.push(format!(
            concat!(
                "    {{\"streams\": {}, \"rl_pipe_s\": {:.9}, \"rlb_pipe_s\": {:.9}, ",
                "\"rl_speedup\": {:.4}, ",
                "\"rl_util_mean\": {:.4}, \"rl_util_max\": {:.4}, ",
                "\"rlb_util_mean\": {:.4}, \"rlb_util_max\": {:.4}, ",
                "\"rl_stream_util\": [{}], \"rlb_stream_util\": [{}]}}"
            ),
            streams,
            rl.sim_seconds,
            rlb.sim_seconds,
            rl_base / rl.sim_seconds,
            rl_mean,
            rl_max,
            rlb_mean,
            rlb_max,
            fmt_util(&rl.stats.stream_utilization(rl.sim_seconds)),
            fmt_util(&rlb.stats.stream_utilization(rlb.sim_seconds)),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"matrix\": \"{}\",\n",
            "  \"n\": {},\n",
            "  \"supernodes\": {},\n",
            "  \"factor_nnz\": {},\n",
            "  \"flops\": {:.6e},\n",
            "  \"label\": \"{}\",\n",
            "  \"threshold\": 0,\n",
            "  \"sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        name,
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops,
        Method::RlGpuPipe.label(),
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("writing stream-sweep JSON");
    eprintln!("wrote {out_path}");
}
