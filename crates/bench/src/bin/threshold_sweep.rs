//! **E-THRESH**: ablation of the CPU/GPU supernode-size threshold and of
//! the asynchronous copy-back overlap.
//!
//! The paper determined thresholds empirically: 600 000 for RL and
//! 750 000 for RLB (§IV-B). This sweep regenerates that choice at suite
//! scale: times as a function of the threshold for three representative
//! matrices (small / medium / large), plus the no-overlap ablation at the
//! chosen threshold (DESIGN.md §4).

use rlchol_bench::{cpu_baseline, gpu_options, prepare, run_gpu};
use rlchol_core::engine::Method;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;

fn main() {
    let cfg = SuiteConfig::default();
    let picks = ["CurlCurl_2", "Serena", "Queen_4147"];
    let thresholds: [usize; 8] = [
        0,
        6_000,
        12_000,
        24_000,
        30_000,
        60_000,
        120_000,
        usize::MAX,
    ];
    println!("Threshold sweep: GPU-accelerated runtime (s) vs offload threshold");
    println!(
        "(suite thresholds: RL {} / RLB {}; MAX = CPU only)\n",
        cfg.rl_threshold, cfg.rlb_threshold
    );
    for method in [Method::RlGpu, Method::RlbGpuV2] {
        println!("== {} ==", method.label());
        let mut t = Table::new(vec!["threshold", picks[0], picks[1], picks[2]]);
        let prepared: Vec<_> = paper_suite()
            .into_iter()
            .filter(|e| picks.contains(&e.name))
            .map(|e| {
                let p = prepare(&e);
                let (best, _, _) = cpu_baseline(&p);
                (p, best)
            })
            .collect();
        for thr in thresholds {
            let mut row = vec![if thr == usize::MAX {
                "CPU-only".to_string()
            } else {
                format!("{thr}")
            }];
            for (p, best_cpu) in &prepared {
                let time = if thr == usize::MAX {
                    *best_cpu
                } else {
                    match run_gpu(p, method, &gpu_options(&cfg, thr)) {
                        Ok(r) => r.sim_seconds,
                        Err(_) => f64::NAN,
                    }
                };
                row.push(if time.is_nan() {
                    "OOM".into()
                } else {
                    format!("{time:.4}")
                });
            }
            t.row(row);
        }
        println!("{}", t.render());
    }

    // Overlap ablation at the suite thresholds.
    println!("== async copy-back overlap ablation (RL_G, suite threshold) ==");
    let mut t = Table::new(vec![
        "Matrix",
        "overlap on (s)",
        "overlap off (s)",
        "off/on",
    ]);
    for name in picks {
        let entry = paper_suite().into_iter().find(|e| e.name == name).unwrap();
        let p = prepare(&entry);
        let mut on = gpu_options(&cfg, cfg.rl_threshold);
        on.overlap = true;
        let mut off = on.clone();
        off.overlap = false;
        let t_on = run_gpu(&p, Method::RlGpu, &on).unwrap().sim_seconds;
        let t_off = run_gpu(&p, Method::RlGpu, &off).unwrap().sim_seconds;
        t.row(vec![
            name.to_string(),
            format!("{t_on:.4}"),
            format!("{t_off:.4}"),
            format!("{:.3}", t_off / t_on),
        ]);
    }
    println!("{}", t.render());
}
