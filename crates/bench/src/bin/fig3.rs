//! **E-F3 — Figure 3**: Dolan–Moré performance profile of the four
//! factorization methods — `RL_C`, `RLB_C` (CPU, best thread count) and
//! `RL_G`, `RLB_G` (GPU-accelerated hybrids).
//!
//! Expected shape (paper §IV-B): `RL_G` is "unequivocally the best,
//! except for one matrix for which RL cannot compute the factorization"
//! (its curve saturates at 20/21); `RLB_G` follows closely; both GPU
//! methods dominate their CPU versions.

use rlchol_bench::{best_cpu_scaled, cpu_baseline, gpu_options, prepare, run_gpu};
use rlchol_core::engine::Method;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::{ascii_plot, PerformanceProfile};

fn main() {
    let cfg = SuiteConfig::default();
    let mut profile = PerformanceProfile::new(vec!["RL_C", "RLB_C", "RL_G", "RLB_G"]);
    let mut csv: Vec<Vec<String>> = vec![vec![
        "matrix".into(),
        "RL_C".into(),
        "RLB_C".into(),
        "RL_G".into(),
        "RLB_G".into(),
    ]];
    for entry in paper_suite() {
        let p = prepare(&entry);
        let (_, rl, rlb) = cpu_baseline(&p);
        let t_rlc = best_cpu_scaled(&rl, &cfg);
        let t_rlbc = best_cpu_scaled(&rlb, &cfg);
        let t_rlg = run_gpu(&p, Method::RlGpu, &gpu_options(&cfg, cfg.rl_threshold))
            .ok()
            .map(|r| r.sim_seconds);
        let t_rlbg = run_gpu(&p, Method::RlbGpuV2, &gpu_options(&cfg, cfg.rlb_threshold))
            .ok()
            .map(|r| r.sim_seconds);
        csv.push(vec![
            entry.name.to_string(),
            format!("{t_rlc:.6}"),
            format!("{t_rlbc:.6}"),
            t_rlg.map_or("fail".into(), |t| format!("{t:.6}")),
            t_rlbg.map_or("fail".into(), |t| format!("{t:.6}")),
        ]);
        profile.add_problem(vec![Some(t_rlc), Some(t_rlbc), t_rlg, t_rlbg]);
        eprintln!("done {}", entry.name);
    }

    println!("FIGURE 3: performance profile, P(log2(r_ps) <= tau) over the 21-matrix suite\n");
    let (taus, curves) = profile.curves(2.0, 33);
    println!(
        "{}",
        ascii_plot(&taus, &curves, &["RL_C", "RLB_C", "RL_G", "RLB_G"], 66, 21)
    );
    // Key ordinates, like reading the figure.
    for (s, name) in ["RL_C", "RLB_C", "RL_G", "RLB_G"].iter().enumerate() {
        println!(
            "{name:6} rho(0) = {:.3}  rho(0.5) = {:.3}  rho(2) = {:.3}",
            profile.rho(s, 0.0),
            profile.rho(s, 0.5),
            profile.rho(s, 2.0)
        );
    }
    std::fs::create_dir_all("results").ok();
    let mut f = std::fs::File::create("results/fig3.csv").expect("results dir writable");
    rlchol_report::csv::write_csv(&mut f, &csv).expect("csv written");
    println!("\nper-matrix times written to results/fig3.csv");
}
