//! Suite calibration probe (not a paper artifact).
//!
//! Prints, per suite matrix: dimension, A/L nonzeros, supernode counts,
//! factor flops, the largest update matrix and RL's device footprint —
//! the numbers used to pick the scaled thresholds and device capacity in
//! `rlchol_matgen::suite::SuiteConfig` (documented in EXPERIMENTS.md).

use rlchol_bench::{count_offloaded, cpu_baseline, prepare};
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;

fn main() {
    let cfg = SuiteConfig::default();
    let mut t = Table::new(vec![
        "Matrix",
        "n",
        "nnz(A)",
        "nsup",
        "nnz(L)",
        "Gflop",
        "max_upd",
        "RL dev MB",
        "#>=RLthr",
        "#>=RLBthr",
        "bestCPU(s)",
    ]);
    for entry in paper_suite() {
        let p = prepare(&entry);
        let sym = &p.sym;
        let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
        let max_upd = sym.max_update_matrix_entries();
        let dev_bytes = (max_panel + max_upd) * 8;
        let (best, _, _) = cpu_baseline(&p);
        t.row(vec![
            entry.name.to_string(),
            format!("{}", p.a_fact.n()),
            format!("{}", p.a_fact.nnz_lower()),
            format!("{}", sym.nsup()),
            format!("{}", sym.nnz),
            format!("{:.2}", sym.flops / 1e9),
            format!("{}", max_upd),
            format!("{:.1}", dev_bytes as f64 / (1 << 20) as f64),
            format!("{}", count_offloaded(sym, cfg.rl_threshold)),
            format!("{}", count_offloaded(sym, cfg.rlb_threshold)),
            format!("{:.3}", best),
        ]);
        eprintln!("done {}", entry.name);
    }
    println!("{}", t.render());
    println!(
        "config: rl_threshold={} rlb_threshold={} capacity={} MiB",
        cfg.rl_threshold,
        cfg.rlb_threshold,
        cfg.gpu_capacity_bytes >> 20
    );
}
