//! **E-GPUONLY — §IV-B text**: the "GPU only" runs, where *every* BLAS
//! call goes to the device (threshold = 0).
//!
//! Expected shape: because host-device transfer is slow, GPU-only is
//! slower than the best CPU for most matrices; only the largest matrices
//! show speedups (paper: RL reaches 3.11×, 3.69× and 4.15× on
//! Long_Coup_dt0, Cube_Coup_dt0 and Queen_4147; RLB v1 2.97× and v2
//! 2.66× on Queen_4147).

use rlchol_bench::{cpu_baseline, gpu_options, prepare, run_gpu, stream_breakdown};
use rlchol_core::engine::Method;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;

fn main() {
    let cfg = SuiteConfig::default();
    let opts = gpu_options(&cfg, 0); // threshold 0: everything offloaded
    println!("GPU-ONLY runs (all BLAS on device, threshold = 0): speedup vs best CPU\n");
    let mut t = Table::new(vec!["Matrices", "RL_G", "RLB_G v1", "RLB_G v2"]);
    let mut slower_count = 0usize;
    let mut total = 0usize;
    let mut highlights: Vec<(String, f64)> = Vec::new();
    let mut breakdowns: Vec<String> = Vec::new();
    for entry in paper_suite() {
        let p = prepare(&entry);
        let (best_cpu, _, _) = cpu_baseline(&p);
        let fmt = |m: Method| -> String {
            match run_gpu(&p, m, &opts) {
                Ok(run) => format!("{:.2}", best_cpu / run.sim_seconds),
                Err(_) => "OOM".into(),
            }
        };
        let rl = match run_gpu(&p, Method::RlGpu, &opts) {
            Ok(run) => {
                let s = best_cpu / run.sim_seconds;
                total += 1;
                if s < 1.0 {
                    slower_count += 1;
                }
                highlights.push((entry.name.to_string(), s));
                breakdowns.push(format!(
                    "{} (RL_G):\n{}",
                    entry.name,
                    stream_breakdown(&run)
                ));
                format!("{s:.2}")
            }
            Err(_) => "OOM".into(),
        };
        t.row(vec![
            entry.name.to_string(),
            rl,
            fmt(Method::RlbGpuV1),
            fmt(Method::RlbGpuV2),
        ]);
        eprintln!("done {}", entry.name);
    }
    println!("{}", t.render());
    println!("per-stream device timelines (roles tagged per stream):");
    for b in &breakdowns {
        println!("{b}");
    }
    println!(
        "RL GPU-only slower than best CPU on {slower_count}/{total} matrices \
         (paper: \"runtimes were more than CPU-only runtimes for most of the matrices\")"
    );
    highlights.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("best three RL GPU-only speedups (paper: 4.15 Queen_4147, 3.69 Cube_Coup_dt0, 3.11 Long_Coup_dt0):");
    for (name, s) in highlights.iter().take(3) {
        println!("  {name}: {s:.2}x");
    }
}
