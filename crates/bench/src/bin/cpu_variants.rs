//! Extension study: the paper's RL/RLB against the two classic serial
//! supernodal alternatives — left-looking (LL) and multifrontal (MF).
//!
//! The companion reference ([1] in the paper) introduces RL/RLB and shows
//! them "superior to or competitive with other methods in terms of both
//! time and storage"; this harness regenerates that comparison on the
//! suite: simulated best-CPU time per method plus each method's extra
//! working storage (RL: one largest-update workspace; RLB: none; MF: the
//! update-matrix stack; LL: one update panel).

use rlchol_bench::{best_cpu_scaled, prepare};
use rlchol_core::ll::factor_ll_cpu;
use rlchol_core::multifrontal::factor_multifrontal_cpu;
use rlchol_core::rl::factor_rl_cpu;
use rlchol_core::rlb::factor_rlb_cpu;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;

fn main() {
    let cfg = SuiteConfig::default();
    let picks = [
        "CurlCurl_2",
        "PFlow_742",
        "bone010",
        "Serena",
        "Cube_Coup_dt0",
        "Queen_4147",
    ];
    println!("CPU factorization variants (simulated best-thread time, s):\n");
    let mut t = Table::new(vec![
        "Matrix",
        "RL",
        "RLB",
        "LL",
        "MF",
        "RL wspace",
        "MF stack",
    ]);
    for name in picks {
        let entry = paper_suite().into_iter().find(|e| e.name == name).unwrap();
        let p = prepare(&entry);
        let rl = factor_rl_cpu(&p.sym, &p.a_fact).unwrap();
        let rlb = factor_rlb_cpu(&p.sym, &p.a_fact).unwrap();
        let ll = factor_ll_cpu(&p.sym, &p.a_fact).unwrap();
        let mf = factor_multifrontal_cpu(&p.sym, &p.a_fact).unwrap();
        // Cross-validate while we are here.
        assert!(rl.factor.max_rel_diff(&ll.factor) < 1e-10);
        assert!(rl.factor.max_rel_diff(&mf.run.factor) < 1e-10);
        t.row(vec![
            name.to_string(),
            format!("{:.4}", best_cpu_scaled(&rl, &cfg)),
            format!("{:.4}", best_cpu_scaled(&rlb, &cfg)),
            format!("{:.4}", best_cpu_scaled(&ll, &cfg)),
            format!("{:.4}", best_cpu_scaled(&mf.run, &cfg)),
            format!("{}", p.sym.max_update_matrix_entries()),
            format!("{}", mf.peak_stack_entries),
        ]);
        eprintln!("done {name}");
    }
    println!("{}", t.render());
    println!(
        "expected shape (companion reference): RL/RLB competitive with or ahead of\n\
         LL and MF; RL's workspace is one update matrix while MF stacks several\n\
         (its peak exceeds RL's workspace), and RLB needs no update storage at all."
    );
}
