//! **E-T2 — Table II**: runtimes of GPU-accelerated RLB (second version,
//! per-block transfers) with speedups over the best CPU configuration.
//!
//! Unlike RL, RLB's streaming transfers keep the device footprint small,
//! so the nlpkkt120 analogue *succeeds* here — the paper's headline
//! memory/speed trade-off between the two methods.

use rlchol_bench::{cpu_baseline, gpu_options, prepare, run_gpu};
use rlchol_core::engine::Method;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;

fn main() {
    let cfg = SuiteConfig::default();
    let opts = gpu_options(&cfg, cfg.rlb_threshold);
    println!("TABLE II: Runtimes for GPU accelerated RLB together with the speedups");
    println!(
        "and numbers of supernodes computed on GPU (threshold {} = paper's 750,000 scaled)\n",
        cfg.rlb_threshold
    );
    let mut t = Table::new(vec![
        "Matrices",
        "runtime (s)",
        "speedup",
        "on GPU",
        "total",
        "paper (s)",
        "paper spd",
        "paper GPU",
        "paper total",
    ]);
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for entry in paper_suite() {
        let p = prepare(&entry);
        let (best_cpu, _, _) = cpu_baseline(&p);
        let run = run_gpu(&p, Method::RlbGpuV2, &opts)
            .unwrap_or_else(|e| panic!("{}: RLB v2 must not fail ({e})", entry.name));
        let speedup = best_cpu / run.sim_seconds;
        speedups.push((entry.name.to_string(), speedup));
        t.row(vec![
            entry.name.to_string(),
            format!("{:.3}", run.sim_seconds),
            format!("{speedup:.2}"),
            format!("{}", run.sn_on_gpu),
            format!("{}", p.sym.nsup()),
            format!("{:.3}", entry.paper.rlb.0),
            format!("{:.2}", entry.paper.rlb.1),
            format!("{}", entry.paper.rlb.2),
            format!("{}", entry.paper.total_supernodes),
        ]);
        eprintln!("done {}", entry.name);
    }
    println!("{}", t.render());
    let min = speedups.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    let max = speedups.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    println!(
        "min speedup {:.2} on {} (paper: 1.09 on dielFilterV2real); max {:.2} on {} (paper: 3.15 on Queen_4147)",
        min.1, min.0, max.1, max.0
    );
    println!("note: RLB successfully factors nlpkkt120, which RL cannot (Table I).");
}
