//! **E-SETUP — §IV-A**: ablation of the two symbolic-setup improvements
//! the paper applies before factorization:
//!
//! * **supernode merging** (Ashcraft–Grimes amalgamation, stopped at a
//!   25 % storage-growth cap) — coarsens the partition so BLAS calls are
//!   larger;
//! * **partition refinement** (Jacquelin–Ng–Peyton column reordering
//!   within supernodes) — reduces the number of row blocks, "essential to
//!   attain high performance using RLB".
//!
//! For each configuration this prints the supernode count, factor
//! storage, total row blocks, RLB BLAS-call count, and the simulated
//! best-CPU and GPU-RLB times.

use rlchol_bench::{best_cpu_scaled, gpu_options, prepare_with, run_gpu};
use rlchol_core::engine::Method;
use rlchol_core::rlb::factor_rlb_cpu;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;
use rlchol_symbolic::blocks::total_blocks;
use rlchol_symbolic::SymbolicOptions;

fn main() {
    let cfg = SuiteConfig::default();
    let picks = ["CurlCurl_2", "Serena", "Queen_4147"];
    println!("Setup ablation: supernode merging (25% cap) x partition refinement\n");
    for name in picks {
        let entry = paper_suite().into_iter().find(|e| e.name == name).unwrap();
        println!("== {name} ==");
        let mut t = Table::new(vec![
            "config",
            "nsup",
            "nnz(L)",
            "blocks",
            "RLB calls",
            "bestCPU (s)",
            "RLB_G (s)",
        ]);
        for (merge, pr) in [(false, false), (false, true), (true, false), (true, true)] {
            let opts = SymbolicOptions {
                merge,
                partition_refine: pr,
                merge_growth_cap: 0.25,
                ..SymbolicOptions::default()
            };
            let p = prepare_with(&entry, &opts);
            let blocks = total_blocks(&p.sym.rows, &p.sym.sn);
            let rlb = factor_rlb_cpu(&p.sym, &p.a_fact).expect("SPD");
            let best_cpu = best_cpu_scaled(&rlb, &cfg);
            let gpu = run_gpu(&p, Method::RlbGpuV2, &gpu_options(&cfg, cfg.rlb_threshold))
                .map(|r| format!("{:.4}", r.sim_seconds))
                .unwrap_or_else(|_| "OOM".into());
            t.row(vec![
                format!(
                    "merge={} PR={}",
                    if merge { "on " } else { "off" },
                    if pr { "on " } else { "off" }
                ),
                format!("{}", p.sym.nsup()),
                format!("{}", p.sym.nnz),
                format!("{blocks}"),
                format!("{}", rlb.trace.blas_calls()),
                format!("{best_cpu:.4}"),
                gpu,
            ]);
        }
        println!("{}", t.render());
    }
    println!(
        "expected shape (paper §IV-A): merging cuts the supernode count by an order\n\
         of magnitude at <=25% extra storage; PR cuts the number of blocks and hence\n\
         RLB's BLAS-call count — the reordering 'essential' for RLB performance."
    );
}
