//! Calibration probe: where simulated time goes in the GPU-RL runs.

use rlchol_bench::{cpu_baseline, gpu_options, prepare, run_gpu};
use rlchol_core::engine::Method;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;

fn main() {
    let cfg = SuiteConfig::default();
    for name in ["CurlCurl_2", "Serena", "Queen_4147"] {
        let entry = paper_suite().into_iter().find(|e| e.name == name).unwrap();
        let p = prepare(&entry);
        let (best, rl, rlb) = cpu_baseline(&p);
        let run = run_gpu(&p, Method::RlGpu, &gpu_options(&cfg, cfg.rl_threshold)).unwrap();
        println!(
            "{name}: gpu total {:.4}s | kernels {:.4} transfers {:.4} host {:.4} | bestCPU {:.4}",
            run.sim_seconds,
            run.stats.kernel_seconds,
            run.stats.transfer_seconds,
            run.stats.host_seconds,
            best
        );
        // CPU trace composition for reference.
        let stats = |r: &rlchol_core::engine::CpuRun, label: &str| {
            use rlchol_perfmodel::TraceOp;
            let mut blas = 0.0;
            let mut asm = 0.0;
            let model = rlchol_perfmodel::perlmutter_cpu(64).scale_compute(cfg.machine_scale);
            for op in &r.trace.ops {
                let t = model.op_time(op);
                if matches!(op, TraceOp::Assemble { .. }) {
                    asm += t;
                } else {
                    blas += t;
                }
            }
            println!("  {label}@64t: blas {blas:.4} assembly {asm:.4}");
        };
        stats(&rl, "RL_C ");
        stats(&rlb, "RLB_C");
    }
}
