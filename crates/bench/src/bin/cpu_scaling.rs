//! CPU scaling trajectory: real wall-clock of the serial RL/RLB engines
//! against the task-parallel scheduler over a thread sweep, on the
//! acceptance matrix `grid3d(40, 40, 40, Star7)`.
//!
//! Prints a table and writes `BENCH_cpu_scaling.json` next to the
//! invocation directory so successive PRs can track the speedup curve.
//!
//! Usage: `cpu_scaling [k] [out.json]` — `k` is the grid edge (default
//! 40; use a smaller k for a quick smoke run).

use rlchol_core::rl::factor_rl_cpu;
use rlchol_core::rlb::factor_rlb_cpu;
use rlchol_core::sched::{factor_rl_cpu_par, factor_rlb_cpu_par};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::{order, OrderingMethod};
use rlchol_symbolic::{analyze, SymbolicOptions};
use std::time::Instant;

// Starts at 2: factor_*_cpu_par delegate to the serial engines at
// threads <= 1, so a threads=1 row would just re-time the serial
// baselines and record run-to-run noise as scheduler data.
const SWEEP: [usize; 3] = [2, 4, 8];

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args
        .next()
        .map(|v| v.parse().expect("grid edge must be an integer"))
        .unwrap_or(40);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_cpu_scaling.json".to_string());

    // Give the persistent pool enough lanes for the sweep even when the
    // machine reports fewer (the submitter still participates, so this
    // never hurts); an explicit RLCHOL_THREADS wins.
    if std::env::var("RLCHOL_THREADS").is_err() {
        std::env::set_var("RLCHOL_THREADS", SWEEP.iter().max().unwrap().to_string());
    }

    let name = format!("grid3d({k}, {k}, {k}, Star7)");
    eprintln!("generating {name} ...");
    let a0 = grid3d(k, k, k, Stencil::Star7, 1, 21);
    let fill = order(&a0, OrderingMethod::NestedDissection);
    let af = a0.permute(&fill);
    let sym = analyze(&af, &SymbolicOptions::default());
    let a = af.permute(&sym.perm);
    eprintln!(
        "n = {}, supernodes = {}, factor nnz = {}, flops = {:.3e}",
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops
    );

    // Min of three runs: the trajectory file feeds cross-PR comparisons,
    // so a single scheduling hiccup must not masquerade as a regression.
    let time = |f: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    // Untimed warmup: first touch of the factor storage pages and the
    // thread-local packing buffers lands outside every measurement.
    factor_rlb_cpu(&sym, &a).expect("SPD");

    // Serial baselines (the better of the two is the speedup reference,
    // matching the paper's best-CPU convention).
    let rl_serial = time(&|| {
        factor_rl_cpu(&sym, &a).expect("SPD");
    });
    let rlb_serial = time(&|| {
        factor_rlb_cpu(&sym, &a).expect("SPD");
    });
    println!(
        "{:>8}  {:>10}  {:>10}  {:>8}",
        "threads", "RL (s)", "RLB (s)", "RLB x"
    );
    println!(
        "{:>8}  {rl_serial:>10.3}  {rlb_serial:>10.3}  {:>8}",
        "serial", "1.00"
    );

    let mut rows = Vec::new();
    for threads in SWEEP {
        let rl_par = time(&|| {
            factor_rl_cpu_par(&sym, &a, threads).expect("SPD");
        });
        let rlb_par = time(&|| {
            factor_rlb_cpu_par(&sym, &a, threads).expect("SPD");
        });
        let speedup = rlb_serial / rlb_par;
        println!("{threads:>8}  {rl_par:>10.3}  {rlb_par:>10.3}  {speedup:>8.2}");
        rows.push(format!(
            concat!(
                "    {{\"threads\": {}, \"rl_par_s\": {:.6}, \"rlb_par_s\": {:.6}, ",
                "\"rl_speedup\": {:.4}, \"rlb_speedup\": {:.4}}}"
            ),
            threads,
            rl_par,
            rlb_par,
            rl_serial / rl_par,
            speedup,
        ));
    }

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        concat!(
            "{{\n",
            "  \"matrix\": \"{}\",\n",
            "  \"n\": {},\n",
            "  \"supernodes\": {},\n",
            "  \"factor_nnz\": {},\n",
            "  \"flops\": {:.6e},\n",
            "  \"hardware_threads\": {},\n",
            "  \"rl_serial_s\": {:.6},\n",
            "  \"rlb_serial_s\": {:.6},\n",
            "  \"sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        name,
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops,
        hw,
        rl_serial,
        rlb_serial,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("writing scaling JSON");
    eprintln!("wrote {out_path} (hardware threads: {hw})");
    if hw == 1 {
        eprintln!(
            "note: this machine exposes a single hardware thread; \
             wall-clock speedup is only observable on multicore hosts"
        );
    }
}
