//! **E-T1 — Table I**: runtimes of GPU-accelerated RL with speedups over
//! the best CPU configuration, and the number of supernodes computed on
//! the GPU.
//!
//! Baseline, as in the paper (§IV-B): for each matrix, the best of
//! {RL, RLB} × {8, 16, 32, 64, 128} MKL threads. The nlpkkt120 analogue
//! must fail with a device out-of-memory (its RL update matrix exceeds
//! the scaled device capacity), reproducing the blank row of Table I.

use rlchol_bench::{cpu_baseline, gpu_options, prepare, run_gpu, stream_breakdown};
use rlchol_core::engine::Method;
use rlchol_core::FactorError;
use rlchol_matgen::paper_suite;
use rlchol_matgen::suite::SuiteConfig;
use rlchol_report::Table;

fn main() {
    let cfg = SuiteConfig::default();
    let opts = gpu_options(&cfg, cfg.rl_threshold);
    println!("TABLE I: Runtimes for GPU accelerated RL together with the speedups");
    println!(
        "and numbers of supernodes computed on GPU (threshold {} = paper's 600,000 scaled)\n",
        cfg.rl_threshold
    );
    let mut t = Table::new(vec![
        "Matrices",
        "runtime (s)",
        "speedup",
        "on GPU",
        "total",
        "paper (s)",
        "paper spd",
        "paper GPU",
        "paper total",
    ]);
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut oom_names: Vec<&str> = Vec::new();
    let mut breakdowns: Vec<String> = Vec::new();
    for entry in paper_suite() {
        let p = prepare(&entry);
        let (best_cpu, _, _) = cpu_baseline(&p);
        let (paper_rt, paper_spd, paper_gpu) = entry
            .paper
            .rl
            .map(|(a, b, c)| (format!("{a:.3}"), format!("{b:.2}"), format!("{c}")))
            .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
        match run_gpu(&p, Method::RlGpu, &opts) {
            Ok(run) => {
                let speedup = best_cpu / run.sim_seconds;
                speedups.push((entry.name.to_string(), speedup));
                breakdowns.push(format!("{}:\n{}", entry.name, stream_breakdown(&run)));
                t.row(vec![
                    entry.name.to_string(),
                    format!("{:.3}", run.sim_seconds),
                    format!("{speedup:.2}"),
                    format!("{}", run.sn_on_gpu),
                    format!("{}", p.sym.nsup()),
                    paper_rt,
                    paper_spd,
                    paper_gpu,
                    format!("{}", entry.paper.total_supernodes),
                ]);
            }
            Err(FactorError::GpuOutOfMemory {
                requested_bytes,
                capacity_bytes,
            }) => {
                oom_names.push(entry.name);
                t.row(vec![
                    entry.name.to_string(),
                    "OOM".into(),
                    "-".into(),
                    "-".into(),
                    format!("{}", p.sym.nsup()),
                    paper_rt,
                    paper_spd,
                    paper_gpu,
                    format!("{}", entry.paper.total_supernodes),
                ]);
                eprintln!(
                    "{}: device OOM as expected? need {} B > capacity {} B",
                    entry.name, requested_bytes, capacity_bytes
                );
            }
            Err(e) => panic!("{}: unexpected failure {e}", entry.name),
        }
        eprintln!("done {}", entry.name);
    }
    println!("{}", t.render());
    if let (Some(min), Some(max)) = (
        speedups.iter().min_by(|a, b| a.1.total_cmp(&b.1)).cloned(),
        speedups.iter().max_by(|a, b| a.1.total_cmp(&b.1)).cloned(),
    ) {
        println!(
            "min speedup {:.2} on {} (paper: 1.31 on Flan_1565); max {:.2} on {} (paper: 4.47 on Bump_2911)",
            min.1, min.0, max.1, max.0
        );
    }
    println!(
        "matrices failing with device OOM: {:?} (paper: nlpkkt120 — largest update matrix too big for the GPU)",
        oom_names
    );
    println!("\nper-stream device timelines (roles tagged per stream):");
    for b in &breakdowns {
        println!("{b}");
    }
}
