//! Lane-count sweep for `batch_factor`: batch throughput of one shared
//! `SymbolicCholesky` handle as its workspace-lane cap grows, on a
//! nested-dissection-ordered 3-D grid.
//!
//! Measures the tentpole of the lane pool: a batch of same-pattern
//! value sets fanned across `rlchol_dense::pool`, with the lane cap
//! limiting how many factorizations are in flight. One lane serializes
//! (the pre-pool behavior behind the old workspace lock); the sweep
//! shows how throughput and checkout contention move as lanes open up.
//! Results are bit-identical at every lane count, so the sweep is
//! purely about wall clock.
//!
//! Prints a table and writes `BENCH_batch_factor.json` so successive
//! PRs can track the curve. **Note:** on a 1-CPU container the pool has
//! one worker and every row degenerates to serial execution — rerun on
//! a multicore host for a real curve.
//!
//! Usage: `batch_factor [k] [out.json]` — `k` is the grid edge (default
//! 12; use a smaller k for a quick smoke run).

use std::time::Instant;

use rlchol_core::{CholeskySolver, Method, SolverOptions, SymbolicCholesky};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_sparse::SymCsc;

const LANE_SWEEP: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 16;
const REPS: usize = 3;
const PATTERN_SEED: u64 = 91;

fn run_batch(handle: &SymbolicCholesky, refs: &[&SymCsc]) -> f64 {
    let t0 = Instant::now();
    let results = handle.batch_factor(refs);
    let dt = t0.elapsed().as_secs_f64();
    assert!(results.iter().all(|r| r.is_ok()), "SPD batch must factor");
    // Return storage so later rounds run the recycled steady state.
    for r in results {
        handle.recycle(r.expect("checked above"));
    }
    dt
}

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args
        .next()
        .map(|v| v.parse().expect("grid edge must be an integer"))
        .unwrap_or(12);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_batch_factor.json".to_string());

    let name = format!("grid3d({k}, {k}, {k}, Star7)");
    eprintln!("generating {name} + {BATCH} value sets ...");
    let a0 = grid3d(k, k, k, Stencil::Star7, 1, PATTERN_SEED);
    let sets: Vec<SymCsc> = (0..BATCH)
        .map(|i| grid3d(k, k, k, Stencil::Star7, 1, PATTERN_SEED + 1 + i as u64))
        .collect();
    let refs: Vec<&SymCsc> = sets.iter().collect();

    let pool_threads = rlchol_dense::pool::global().threads();
    eprintln!("pool threads: {pool_threads} (concurrency = min(lanes, threads))");

    println!(
        "{:>6}  {:>12}  {:>12}  {:>10}  {:>10}",
        "lanes", "batch ms", "fac/s", "peak", "contended"
    );
    let mut rows = Vec::new();
    let mut serial_s = 0.0;
    for lanes in LANE_SWEEP {
        let opts = SolverOptions {
            method: Method::RlbCpu,
            factor_lanes: lanes,
            ..SolverOptions::default()
        };
        let handle = CholeskySolver::analyze(&a0, &opts);
        run_batch(&handle, &refs); // warm-up: lanes, scratch, bins
        let mut total = 0.0;
        for _ in 0..REPS {
            total += run_batch(&handle, &refs);
        }
        let per_batch = total / REPS as f64;
        if lanes == 1 {
            serial_s = per_batch;
        }
        let stats = handle.lane_stats();
        let throughput = BATCH as f64 / per_batch;
        println!(
            "{lanes:>6}  {:>12.3}  {throughput:>12.1}  {:>10}  {:>10}",
            per_batch * 1e3,
            stats.peak_in_use,
            stats.contended
        );
        rows.push(format!(
            "    {{\"lanes\": {lanes}, \"batch_s\": {per_batch:.9}, \
             \"fac_per_s\": {throughput:.3}, \"speedup_vs_1\": {:.4}, \
             \"peak_in_use\": {}, \"contended\": {}}}",
            serial_s / per_batch,
            stats.peak_in_use,
            stats.contended
        ));
    }

    let sym_handle = CholeskySolver::analyze(
        &a0,
        &SolverOptions {
            method: Method::RlbCpu,
            ..SolverOptions::default()
        },
    );
    let sym = sym_handle.symbolic();
    let json = format!(
        concat!(
            "{{\n",
            "  \"matrix\": \"{}\",\n",
            "  \"n\": {},\n",
            "  \"supernodes\": {},\n",
            "  \"factor_nnz\": {},\n",
            "  \"method\": \"{}\",\n",
            "  \"batch\": {},\n",
            "  \"pool_threads\": {},\n",
            "  \"lane_sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        name,
        sym.n,
        sym.nsup(),
        sym.nnz,
        Method::RlbCpu.label(),
        BATCH,
        pool_threads,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("writing batch_factor JSON");
    eprintln!("wrote {out_path}");
}
