//! Calibration probe: per-engine device footprints of selected matrices
//! (used to pick the scaled device capacity; not a paper artifact).

use rlchol_bench::prepare;
use rlchol_matgen::paper_suite;

fn main() {
    for entry in paper_suite() {
        if !["nlpkkt120", "Bump_2911", "Queen_4147", "CurlCurl_4"].contains(&entry.name) {
            continue;
        }
        let p = prepare(&entry);
        let sym = &p.sym;
        let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
        let max_upd = sym.max_update_matrix_entries();
        // v1 staging and v2 max strip.
        let mut max_stage = 0usize;
        let mut max_strip = 0usize;
        for s in 0..sym.nsup() {
            let blocks = &sym.blocks[s];
            let mut stage = 0usize;
            for (b1, blk) in blocks.iter().enumerate() {
                for blk2 in &blocks[b1..] {
                    stage += blk2.len * blk.len;
                    max_strip = max_strip.max(blk2.len * blk.len);
                }
            }
            max_stage = max_stage.max(stage);
        }
        let mb = |x: usize| x as f64 * 8.0 / (1 << 20) as f64;
        println!(
            "{:18} panel {:6.1} MiB | RL {:6.1} | RLBv1 {:6.1} | RLBv2 {:6.1} MiB",
            entry.name,
            mb(max_panel),
            mb(max_panel + max_upd),
            mb(max_panel + max_stage),
            mb(max_panel + max_strip),
        );
    }
}
