//! Solver-as-a-service load generator: mixed open-loop Zipf traffic
//! against one `Service`, latency percentiles split by cache hit/miss,
//! a warm-vs-cold comparison, an overload scenario, and a TCP smoke.
//!
//! Five phases, all with fixed seeds:
//!
//! * **mixed** — `threads` clients submit Zipf-distributed traffic over
//!   8 grid patterns (60% factor / 30% solve / 10% batch); reports
//!   throughput and p50/p95/p99 split by cache outcome.
//! * **warm_vs_miss** — repeated factor requests for one pattern: cold
//!   misses on fresh services (pay the analysis) vs warm hits on one
//!   service. Asserts warm-hit p50 ≥ 2× faster than miss p50 — the
//!   cache earning its keep.
//! * **overload** — queue depth 2 under 8 unpaced threads: every
//!   request must complete or shed typed (`Overloaded`); no panics, no
//!   hangs, no unbounded queue.
//! * **tcp** — in-process server on localhost, 2 protocol clients × 20
//!   mixed requests; asserts zero protocol errors and nonzero cache
//!   hits, then a clean shutdown.
//! * **many_conns** (Unix) — 64 concurrent connections against the
//!   evented front end with a 2-thread fixed worker pool; asserts
//!   every request on every connection is served and reports
//!   per-request latency percentiles over the multiplexed loop.
//!
//! Writes `BENCH_service.json`. Usage: `service_load [reqs_per_thread]
//! [out.json]` (default 40; CI uses a smaller count).

use rlchol_core::solver::SolverOptions;
use rlchol_matgen::{grid3d, Stencil};
use rlchol_service::{protocol, CacheOutcome, Request, Service, ServiceConfig, ServiceError};
use rlchol_sparse::SymCsc;
use std::sync::Arc;
use std::time::Instant;

const PATTERNS: [(usize, usize, usize); 8] = [
    (4, 4, 3),
    (5, 4, 3),
    (5, 5, 4),
    (6, 5, 4),
    (6, 6, 4),
    (7, 6, 5),
    (7, 7, 5),
    (8, 7, 5),
];
const ZIPF_S: f64 = 1.1;

fn pattern_matrix(rank: usize, seed: u64) -> SymCsc {
    let (x, y, z) = PATTERNS[rank % PATTERNS.len()];
    grid3d(x, y, z, Stencil::Star7, 1, seed)
}

/// SplitMix64 — deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(s) sampler over `n` ranks via the cumulative weight table.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.iter().position(|&c| u <= c).unwrap_or(0)
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct LatencySplit {
    hit: Vec<f64>,
    miss: Vec<f64>,
}

fn pcts_json(label: &str, mut lat: Vec<f64>) -> String {
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    format!(
        "{{\"class\": \"{label}\", \"count\": {}, \"p50_ms\": {:.4}, \
         \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}",
        lat.len(),
        percentile(&lat, 50.0) * 1e3,
        percentile(&lat, 95.0) * 1e3,
        percentile(&lat, 99.0) * 1e3,
    )
}

fn rhs_for(a: &SymCsc) -> Vec<f64> {
    let ones = vec![1.0; a.n()];
    let mut b = vec![0.0; a.n()];
    a.matvec(&ones, &mut b);
    b
}

fn service_config(queue_depth: usize, lanes: usize) -> ServiceConfig {
    ServiceConfig {
        options: SolverOptions {
            factor_lanes: lanes,
            ..SolverOptions::default()
        },
        queue_depth,
        cache_bytes: 1 << 30,
        default_deadline: None,
        batch_window_us: 0,
    }
}

/// Phase A: mixed Zipf traffic. Returns (throughput req/s, split, json).
fn phase_mixed(reqs_per_thread: usize, threads: usize) -> (f64, String) {
    let service = Arc::new(Service::new(service_config(4 * threads, 4)));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut rng = Rng(0xA11C_E000 + t as u64);
                let zipf = Zipf::new(PATTERNS.len(), ZIPF_S);
                let mut split = LatencySplit {
                    hit: Vec::new(),
                    miss: Vec::new(),
                };
                for i in 0..reqs_per_thread {
                    let rank = zipf.sample(&mut rng);
                    let seed = 10_000 + (t * reqs_per_thread + i) as u64;
                    let a = pattern_matrix(rank, seed);
                    let roll = rng.f64();
                    let req = if roll < 0.6 {
                        Request::factor(a)
                    } else if roll < 0.9 {
                        let b = rhs_for(&a);
                        Request::solve(a, b)
                    } else {
                        let sets = vec![
                            pattern_matrix(rank, seed + 1).values().to_vec(),
                            pattern_matrix(rank, seed + 2).values().to_vec(),
                        ];
                        Request::batch(a, sets)
                    };
                    let t_req = Instant::now();
                    let resp = service.submit(req).expect("mixed traffic stays admitted");
                    let lat = t_req.elapsed().as_secs_f64();
                    match resp.metrics.cache {
                        CacheOutcome::Hit => split.hit.push(lat),
                        _ => split.miss.push(lat),
                    }
                }
                split
            })
        })
        .collect();
    let mut hit = Vec::new();
    let mut miss = Vec::new();
    for w in workers {
        let s = w.join().expect("no load thread panicked");
        hit.extend(s.hit);
        miss.extend(s.miss);
    }
    let wall = t0.elapsed().as_secs_f64();
    let total = (threads * reqs_per_thread) as f64;
    let throughput = total / wall;
    let stats = service.stats();
    assert_eq!(stats.completed, total as u64, "every request completed");
    assert!(stats.cache.hits > 0, "Zipf repeats must hit the cache");
    println!(
        "mixed: {total} reqs on {threads} threads in {wall:.2} s -> {throughput:.1} req/s \
         ({} hits, {} misses+coalesced)",
        hit.len(),
        miss.len()
    );
    let json = format!(
        "{{\"threads\": {threads}, \"requests\": {total}, \"wall_s\": {wall:.4}, \
         \"throughput_rps\": {throughput:.2}, \"latency\": [{}, {}], \"cache\": {{\
         \"hits\": {}, \"misses\": {}, \"coalesced\": {}}}}}",
        pcts_json("hit", hit),
        pcts_json("miss", miss),
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.coalesced,
    );
    (throughput, json)
}

/// Phase B: warm hits vs cold misses on one repeated pattern.
fn phase_warm_vs_miss() -> String {
    let dims = (10, 10, 6);
    let cold_samples = 5;
    let warm_samples = 32;
    let mk = |seed: u64| grid3d(dims.0, dims.1, dims.2, Stencil::Star7, 1, seed);

    // Cold: a fresh service per sample pays ordering + analysis.
    let mut cold = Vec::new();
    for i in 0..cold_samples {
        let service = Service::new(service_config(4, 1));
        let t0 = Instant::now();
        let resp = service
            .submit(Request::factor(mk(500 + i)))
            .expect("SPD factor");
        cold.push(t0.elapsed().as_secs_f64());
        assert_eq!(resp.metrics.cache, CacheOutcome::Miss);
    }

    // Warm: one service, the pattern analyzed once up front.
    let service = Service::new(service_config(4, 1));
    service.submit(Request::analyze(mk(0))).expect("warmup");
    let mut warm = Vec::new();
    for i in 0..warm_samples {
        let t0 = Instant::now();
        let resp = service
            .submit(Request::factor(mk(600 + i)))
            .expect("SPD factor");
        warm.push(t0.elapsed().as_secs_f64());
        assert_eq!(resp.metrics.cache, CacheOutcome::Hit);
    }

    let mut c = cold.clone();
    let mut w = warm.clone();
    c.sort_by(|a, b| a.partial_cmp(b).unwrap());
    w.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let miss_p50 = percentile(&c, 50.0);
    let hit_p50 = percentile(&w, 50.0);
    let speedup = miss_p50 / hit_p50;
    println!(
        "warm_vs_miss: grid3d{dims:?} miss p50 {:.2} ms, warm-hit p50 {:.2} ms -> {speedup:.1}x",
        miss_p50 * 1e3,
        hit_p50 * 1e3
    );
    assert!(
        speedup >= 2.0,
        "warm hits must be >= 2x faster than misses (got {speedup:.2}x): \
         the handle cache is not amortizing analysis"
    );
    format!(
        "{{\"pattern\": \"grid3d{dims:?}\", \"miss_p50_ms\": {:.4}, \
         \"hit_p50_ms\": {:.4}, \"speedup\": {speedup:.2}}}",
        miss_p50 * 1e3,
        hit_p50 * 1e3
    )
}

/// Phase C: 8 unpaced threads against queue depth 2.
fn phase_overload() -> String {
    let threads = 8;
    let per_thread = 24;
    let service = Arc::new(Service::new(service_config(2, 2)));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut shed = 0u64;
                for i in 0..per_thread {
                    let a = pattern_matrix(4, 20_000 + (t * per_thread + i) as u64);
                    match service.submit(Request::factor(a)) {
                        Ok(_) => ok += 1,
                        Err(ServiceError::Overloaded { .. }) => shed += 1,
                        Err(e) => panic!("overload run saw a non-shed error: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    for w in workers {
        let (o, s) = w.join().expect("no overload thread hung or panicked");
        ok += o;
        shed += s;
    }
    let total = (threads * per_thread) as u64;
    assert_eq!(ok + shed, total, "every request completed or shed typed");
    assert!(shed > 0, "8 threads against depth 2 must shed");
    assert_eq!(service.stats().in_flight, 0, "gate fully drained");
    println!("overload: {total} reqs, {ok} completed, {shed} typed sheds, 0 hangs");
    format!(
        "{{\"threads\": {threads}, \"queue_depth\": 2, \"requests\": {total}, \
         \"completed\": {ok}, \"shed_overload\": {shed}}}"
    )
}

/// Phase D: protocol smoke over localhost TCP.
fn phase_tcp() -> String {
    let service = Arc::new(Service::new(service_config(8, 2)));
    let (addr, server) =
        protocol::spawn_server("127.0.0.1:0", Arc::clone(&service)).expect("bind localhost");
    let clients = 2;
    let per_client = 20;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = protocol::Client::connect(addr).expect("connect");
                let mut rng = Rng(0xBEEF + c as u64);
                let mut protocol_errors = 0u64;
                for i in 0..per_client {
                    let rank = (rng.next() % 3) as usize;
                    let a = pattern_matrix(rank, 30_000 + (c * per_client + i) as u64);
                    let resp = match i % 3 {
                        0 => client.analyze(&a),
                        1 => client.factor(&a, None, 0),
                        _ => {
                            let b = rhs_for(&a);
                            client.solve(&a, &b, None, 0)
                        }
                    };
                    match resp {
                        Ok(r) if r.ok() => {}
                        Ok(r) => {
                            panic!("in-band error on clean traffic: {}", r.json)
                        }
                        Err(_) => protocol_errors += 1,
                    }
                }
                protocol_errors
            })
        })
        .collect();
    let mut protocol_errors = 0;
    for w in workers {
        protocol_errors += w.join().expect("client thread finished");
    }
    let hits = service.cache().stats().hits;
    assert_eq!(protocol_errors, 0, "zero protocol errors on the smoke run");
    assert!(hits > 0, "TCP traffic must produce cache hits");
    let mut shut = protocol::Client::connect(addr).expect("connect for shutdown");
    shut.shutdown().expect("shutdown ack");
    drop(shut);
    server.join().expect("server joined").expect("clean exit");
    let total = clients * per_client;
    println!("tcp: {total} requests, 0 protocol errors, {hits} cache hits, clean shutdown");
    format!(
        "{{\"clients\": {clients}, \"requests\": {total}, \
         \"protocol_errors\": 0, \"cache_hits\": {hits}}}"
    )
}

/// Phase E: 64 concurrent connections multiplexed over a 2-thread
/// evented worker pool — the thread-per-connection design this replaced
/// would have needed 64 handler threads.
#[cfg(unix)]
fn phase_many_conns() -> String {
    use rlchol_service::{ClientOptions, NetStats, ServeOptions};
    use std::time::Duration;

    let conns = 64;
    let per_conn = 3;
    let net_workers = 2;
    let service = Arc::new(Service::new(service_config(16, 2)));
    let stats = Arc::new(NetStats::default());
    let opts = ServeOptions {
        workers: net_workers,
        stats: Some(Arc::clone(&stats)),
        ..ServeOptions::default()
    };
    let (addr, server) = protocol::spawn_server_with("127.0.0.1:0", Arc::clone(&service), opts)
        .expect("bind localhost");

    let t0 = Instant::now();
    let barrier = Arc::new(std::sync::Barrier::new(conns));
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut client = protocol::Client::connect_with(
                    addr,
                    ClientOptions {
                        connect_timeout: Some(Duration::from_secs(30)),
                        read_timeout: Some(Duration::from_secs(120)),
                    },
                )
                .expect("connect");
                let mut lat = Vec::new();
                for i in 0..per_conn {
                    let a = pattern_matrix(c % 4, 40_000 + (c * per_conn + i) as u64);
                    let t_req = Instant::now();
                    let resp = match i % 3 {
                        0 => client.analyze(&a),
                        1 => client.factor(&a, None, 0),
                        _ => {
                            let b = rhs_for(&a);
                            client.solve(&a, &b, None, 0)
                        }
                    }
                    .expect("many-conns roundtrip");
                    assert!(resp.ok(), "request failed in-band: {}", resp.json);
                    lat.push(t_req.elapsed().as_secs_f64());
                }
                lat
            })
        })
        .collect();
    let mut lat = Vec::new();
    for w in workers {
        lat.extend(w.join().expect("no connection thread hung or panicked"));
    }
    let wall = t0.elapsed().as_secs_f64();
    let total = conns * per_conn;
    let accepted = stats.accepted.load(std::sync::atomic::Ordering::Relaxed);
    let frames = stats.frames.load(std::sync::atomic::Ordering::Relaxed);
    assert!(accepted >= conns as u64, "all {conns} connections accepted");
    assert!(frames >= total as u64, "all {total} frames served");

    let mut shut = protocol::Client::connect(addr).expect("connect for shutdown");
    shut.shutdown().expect("shutdown ack");
    drop(shut);
    server.join().expect("server joined").expect("clean exit");
    println!(
        "many_conns: {conns} connections x {per_conn} reqs over {net_workers} net workers \
         in {wall:.2} s ({accepted} accepted, {frames} frames)"
    );
    format!(
        "{{\"connections\": {conns}, \"net_workers\": {net_workers}, \"requests\": {total}, \
         \"wall_s\": {wall:.4}, \"accepted\": {accepted}, \"frames\": {frames}, \
         \"latency\": {}}}",
        pcts_json("all", lat)
    )
}

#[cfg(not(unix))]
fn phase_many_conns() -> String {
    println!("many_conns: skipped (evented front end is Unix-only)");
    "{\"skipped\": true}".to_string()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let reqs_per_thread: usize = args
        .next()
        .map(|v| v.parse().expect("requests per thread must be an integer"))
        .unwrap_or(40);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let threads = 4;

    let t0 = Instant::now();
    let (throughput, mixed) = phase_mixed(reqs_per_thread, threads);
    let warm = phase_warm_vs_miss();
    let overload = phase_overload();
    let tcp = phase_tcp();
    let many_conns = phase_many_conns();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service_load\",\n",
            "  \"reqs_per_thread\": {},\n",
            "  \"zipf_s\": {},\n",
            "  \"throughput_rps\": {:.2},\n",
            "  \"mixed\": {},\n",
            "  \"warm_vs_miss\": {},\n",
            "  \"overload\": {},\n",
            "  \"tcp\": {},\n",
            "  \"many_conns\": {}\n",
            "}}\n"
        ),
        reqs_per_thread, ZIPF_S, throughput, mixed, warm, overload, tcp, many_conns
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!(
        "wrote {out_path} (5 phases, {:.1} s total)",
        t0.elapsed().as_secs_f64()
    );
}
