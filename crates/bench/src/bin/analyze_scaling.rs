//! Analyze scaling trajectory: the serial symbolic pipeline against the
//! thread-parallel one (`analyze_threads`) over a thread × ordering
//! sweep on `grid3d(k, k, k, Star7)` — the first-contact wall every
//! cache-miss request pays.
//!
//! Every parallel cell **self-asserts bit-identity** against the serial
//! handle (`analysis_eq`: symbolic factor, permutation, solve plan,
//! value map) before being timed — a scaling number for a divergent
//! analysis would be meaningless.
//!
//! Prints a table and writes `BENCH_analyze_scaling.json` so successive
//! PRs can track the curve. As with `BENCH_solve_scaling.json`, a 1-CPU
//! container can only show the dispatch overhead, not speedup —
//! regenerate on a multicore host for the real trajectory.
//!
//! Usage: `analyze_scaling [k] [out.json]` — `k` is the grid edge
//! (default 20; use a smaller k for a quick smoke run).

use rlchol_core::{SolverOptions, SymbolicCholesky};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_ordering::OrderingMethod;
use std::time::Instant;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const ORDERINGS: [(OrderingMethod, &str); 2] = [
    (OrderingMethod::NestedDissection, "nd"),
    (OrderingMethod::MinDegree, "md"),
];

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args
        .next()
        .map(|v| v.parse().expect("grid edge must be an integer"))
        .unwrap_or(20);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_analyze_scaling.json".to_string());

    // Give the persistent pool enough lanes for the sweep even when the
    // machine reports fewer; an explicit RLCHOL_THREADS wins.
    if std::env::var("RLCHOL_THREADS").is_err() {
        std::env::set_var(
            "RLCHOL_THREADS",
            THREAD_SWEEP.iter().max().unwrap().to_string(),
        );
    }

    let name = format!("grid3d({k}, {k}, {k}, Star7)");
    eprintln!("generating {name} ...");
    let a = grid3d(k, k, k, Stencil::Star7, 1, 31);
    let n = a.n();
    eprintln!("n = {}, nnz(lower) = {}", n, a.nnz_lower());

    // Min of three runs, like the other trajectory benches.
    let time = |f: &mut dyn FnMut()| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    println!(
        "{:>8}  {:>8}  {:>12}  {:>10}",
        "ordering", "threads", "analyze (s)", "speedup"
    );
    let mut rows = Vec::new();
    for (ordering, oname) in ORDERINGS {
        let opts_for = |threads: usize| SolverOptions {
            ordering,
            analyze_threads: threads,
            ..SolverOptions::default()
        };
        let serial_handle = SymbolicCholesky::new(&a, &opts_for(1));
        let mut serial_s = f64::NAN;
        for threads in THREAD_SWEEP {
            let opts = opts_for(threads);
            // Self-assert: the parallel pipeline must be bit-identical
            // to the serial one before its time means anything.
            let check = SymbolicCholesky::new(&a, &opts);
            assert!(
                check.analysis_eq(&serial_handle),
                "analyze_threads={threads} ({oname}) diverged from the serial analysis"
            );
            let secs = time(&mut || {
                let h = SymbolicCholesky::new(&a, &opts);
                std::hint::black_box(&h);
            });
            if threads == 1 {
                serial_s = secs;
            }
            let speedup = serial_s / secs;
            println!("{oname:>8}  {threads:>8}  {secs:>12.5}  {speedup:>10.2}");
            rows.push(format!(
                concat!(
                    "    {{\"ordering\": \"{}\", \"threads\": {}, ",
                    "\"analyze_s\": {:.6}, \"speedup\": {:.4}}}"
                ),
                oname, threads, secs, speedup,
            ));
        }
    }

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        concat!(
            "{{\n",
            "  \"matrix\": \"{}\",\n",
            "  \"n\": {},\n",
            "  \"nnz_lower\": {},\n",
            "  \"bit_identical\": true,\n",
            "  \"hardware_threads\": {},\n",
            "  \"sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        name,
        n,
        a.nnz_lower(),
        hw,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("writing scaling JSON");
    eprintln!("wrote {out_path} (hardware threads: {hw})");
    if hw == 1 {
        eprintln!(
            "note: this machine exposes a single hardware thread; the \
             parallel rows measure dispatch overhead, not speedup — \
             rerun on a multicore host for the real curve"
        );
    }
}
