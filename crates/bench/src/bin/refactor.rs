//! Analyze-once amortization curve: staged refactorization vs the
//! one-shot pipeline on a nested-dissection-ordered 3-D grid.
//!
//! Measures the staged API's serving-loop economics: ordering +
//! symbolic analysis is paid once per pattern, each subsequent
//! same-pattern factorization reuses the symbolic structure and the
//! factor storage. For `k` factorizations the staged path costs
//! `analyze + k × refactor` against the one-shot path's
//! `k × (analyze + factor)`; the ratio approaches
//! `(analyze + factor) / refactor` as `k` grows.
//!
//! Prints a table and writes `BENCH_refactor.json` so successive PRs
//! can track the curve.
//!
//! Usage: `refactor [k] [out.json]` — `k` is the grid edge (default 14;
//! use a smaller k for a quick smoke run).

use std::time::Instant;

use rlchol_core::{CholeskySolver, Method, SolverOptions};
use rlchol_matgen::{grid3d, Stencil};

const SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];
const PATTERN_SEED: u64 = 77;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args
        .next()
        .map(|v| v.parse().expect("grid edge must be an integer"))
        .unwrap_or(14);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_refactor.json".to_string());

    let name = format!("grid3d({k}, {k}, {k}, Star7)");
    eprintln!("generating {name} ...");
    let a0 = grid3d(k, k, k, Stencil::Star7, 1, PATTERN_SEED);
    let opts = SolverOptions {
        method: Method::RlbCpu,
        ..SolverOptions::default()
    };

    // Stage timings. Each value-set is regenerated outside the timed
    // region (the serving loop's values arrive from the application).
    let t0 = Instant::now();
    let handle = CholeskySolver::analyze(&a0, &opts);
    let t_analyze = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut fact = handle.factor_with(&a0).expect("SPD input");
    let t_first_factor = t0.elapsed().as_secs_f64();

    let refactors = 6usize;
    let mut t_refactor = 0.0;
    for i in 0..refactors {
        let a = grid3d(k, k, k, Stencil::Star7, 1, PATTERN_SEED + 1 + i as u64);
        let t0 = Instant::now();
        handle.refactor(&mut fact, &a).expect("SPD values");
        t_refactor += t0.elapsed().as_secs_f64();
    }
    t_refactor /= refactors as f64;

    // One-shot reference (fresh ordering + analysis + factor each time).
    let oneshots = 3usize;
    let mut t_oneshot = 0.0;
    for i in 0..oneshots {
        let a = grid3d(k, k, k, Stencil::Star7, 1, PATTERN_SEED + 100 + i as u64);
        let t0 = Instant::now();
        CholeskySolver::factor(&a, &opts).expect("SPD input");
        t_oneshot += t0.elapsed().as_secs_f64();
    }
    t_oneshot /= oneshots as f64;

    let sym = handle.symbolic();
    eprintln!(
        "n = {}, supernodes = {}, factor nnz = {}, flops = {:.3e}",
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops
    );
    println!(
        "analyze {:.2} ms | first factor {:.2} ms | refactor {:.2} ms | one-shot {:.2} ms",
        t_analyze * 1e3,
        t_first_factor * 1e3,
        t_refactor * 1e3,
        t_oneshot * 1e3
    );
    println!(
        "symbolic/numeric cost ratio: {:.2} (analysis amortized away by refactoring)",
        t_analyze / t_refactor
    );

    println!(
        "{:>6}  {:>14}  {:>14}  {:>8}",
        "k", "staged ms/fac", "one-shot ms/fac", "speedup"
    );
    let mut rows = Vec::new();
    for steps in SWEEP {
        let staged = (t_analyze + t_first_factor + (steps - 1) as f64 * t_refactor) / steps as f64;
        let speedup = t_oneshot / staged;
        println!(
            "{steps:>6}  {:>14.3}  {:>14.3}  {speedup:>8.2}",
            staged * 1e3,
            t_oneshot * 1e3
        );
        rows.push(format!(
            "    {{\"k\": {steps}, \"staged_amortized_s\": {staged:.9}, \
             \"oneshot_s\": {t_oneshot:.9}, \"speedup\": {speedup:.4}}}"
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"matrix\": \"{}\",\n",
            "  \"n\": {},\n",
            "  \"supernodes\": {},\n",
            "  \"factor_nnz\": {},\n",
            "  \"flops\": {:.6e},\n",
            "  \"method\": \"{}\",\n",
            "  \"analyze_s\": {:.9},\n",
            "  \"first_factor_s\": {:.9},\n",
            "  \"refactor_s\": {:.9},\n",
            "  \"oneshot_s\": {:.9},\n",
            "  \"symbolic_over_numeric\": {:.4},\n",
            "  \"amortization\": [\n{}\n  ]\n",
            "}}\n"
        ),
        name,
        sym.n,
        sym.nsup(),
        sym.nnz,
        sym.flops,
        opts.method.label(),
        t_analyze,
        t_first_factor,
        t_refactor,
        t_oneshot,
        t_analyze / t_refactor,
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("writing refactor JSON");
    eprintln!("wrote {out_path}");
}
