//! Aggregate counters of a simulated-device session.

/// Counters accumulated by the [`Gpu`](crate::Gpu) runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuStats {
    /// Kernels launched.
    pub kernel_launches: u64,
    /// Simulated seconds spent inside kernels (sum over streams).
    pub kernel_seconds: f64,
    /// Host-to-device copies issued.
    pub h2d_count: u64,
    /// Bytes moved host → device.
    pub h2d_bytes: u64,
    /// Device-to-host copies issued.
    pub d2h_count: u64,
    /// Bytes moved device → host.
    pub d2h_bytes: u64,
    /// Simulated seconds of transfer time (sum, ignoring overlap).
    pub transfer_seconds: f64,
    /// Simulated seconds of host compute registered via `host_compute`.
    pub host_seconds: f64,
    /// Current device memory in use, bytes.
    pub used_bytes: u64,
    /// High-water mark of device memory, bytes.
    pub peak_bytes: u64,
}

impl GpuStats {
    /// Total bytes across both transfer directions.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = GpuStats {
            h2d_bytes: 10,
            d2h_bytes: 32,
            ..Default::default()
        };
        assert_eq!(s.total_transfer_bytes(), 42);
    }
}
