//! Aggregate counters of a simulated-device session.

/// What a stream is used for, as declared by the engine that created it.
/// Reports that average utilization over *all* streams mix near-idle
/// copy streams into the compute numbers; tagging lets
/// [`GpuStats::role_utilization`] keep the two populations apart.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StreamRole {
    /// Never tagged (engines that predate roles, ad-hoc streams).
    #[default]
    Unassigned,
    /// Runs factorization kernels (POTRF/TRSM/SYRK/GEMM).
    Compute,
    /// Runs asynchronous copy-backs and staging transfers.
    Copy,
}

/// Per-stream slice of the device counters: what one in-order stream was
/// asked to execute. `busy_seconds` over the session's elapsed time is
/// that stream's utilization — the number the pipelined engines tune.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// The engine-declared role of this stream.
    pub role: StreamRole,
    /// Kernels launched on this stream.
    pub kernel_launches: u64,
    /// Simulated seconds of kernel time issued to this stream.
    pub kernel_seconds: f64,
    /// Transfers (either direction) issued to this stream.
    pub transfer_count: u64,
    /// Simulated seconds of transfer time issued to this stream.
    pub transfer_seconds: f64,
}

impl StreamStats {
    /// Total simulated seconds this stream spent executing work.
    pub fn busy_seconds(&self) -> f64 {
        self.kernel_seconds + self.transfer_seconds
    }
}

/// Counters accumulated by the [`Gpu`](crate::Gpu) runtime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GpuStats {
    /// Kernels launched.
    pub kernel_launches: u64,
    /// Device allocations attempted (the ordinal space of `oom@N`
    /// fault specs).
    pub alloc_count: u64,
    /// Simulated seconds spent inside kernels (sum over streams).
    pub kernel_seconds: f64,
    /// Host-to-device copies issued.
    pub h2d_count: u64,
    /// Bytes moved host → device.
    pub h2d_bytes: u64,
    /// Device-to-host copies issued.
    pub d2h_count: u64,
    /// Bytes moved device → host.
    pub d2h_bytes: u64,
    /// Simulated seconds of transfer time (sum, ignoring overlap).
    pub transfer_seconds: f64,
    /// Simulated seconds of host compute registered via `host_compute`.
    pub host_seconds: f64,
    /// Current device memory in use, bytes.
    pub used_bytes: u64,
    /// High-water mark of device memory, bytes.
    pub peak_bytes: u64,
    /// Per-stream kernel/transfer breakdown, indexed like the stream ids
    /// (entry 0 is the default stream; one more per `create_stream`).
    pub per_stream: Vec<StreamStats>,
}

impl GpuStats {
    /// Total bytes across both transfer directions.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Per-stream utilization over `elapsed` simulated seconds (busy
    /// fraction per stream, in stream-id order).
    pub fn stream_utilization(&self, elapsed: f64) -> Vec<f64> {
        self.per_stream
            .iter()
            .map(|s| {
                if elapsed > 0.0 {
                    s.busy_seconds() / elapsed
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Utilization of only the streams tagged `role`, in stream-id order.
    /// Averaging this for [`StreamRole::Compute`] gives the number the
    /// pipelined engines actually tune — the all-streams mean dilutes it
    /// with the (intentionally) near-idle copy streams.
    pub fn role_utilization(&self, elapsed: f64, role: StreamRole) -> Vec<f64> {
        self.per_stream
            .iter()
            .filter(|s| s.role == role)
            .map(|s| {
                if elapsed > 0.0 {
                    s.busy_seconds() / elapsed
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = GpuStats {
            h2d_bytes: 10,
            d2h_bytes: 32,
            ..Default::default()
        };
        assert_eq!(s.total_transfer_bytes(), 42);
    }

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let s = GpuStats {
            per_stream: vec![
                StreamStats {
                    kernel_seconds: 1.0,
                    transfer_seconds: 1.0,
                    ..Default::default()
                },
                StreamStats::default(),
            ],
            ..Default::default()
        };
        assert_eq!(s.stream_utilization(4.0), vec![0.5, 0.0]);
        assert_eq!(s.stream_utilization(0.0), vec![0.0, 0.0]);
    }
}
