//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s, each naming a fault kind
//! and the **ordinal** of the device operation it strikes. Ordinals are
//! per-kind counters maintained by the [`Gpu`](crate::Gpu) runtime:
//!
//! * `oom@N` — the `N`-th call to [`alloc`](crate::Gpu::alloc) fails as
//!   if the device were out of memory;
//! * `transfer@N` — the `N`-th transfer (H2D and D2H share one counter)
//!   fails before any data moves;
//! * `kernel@N` — the `N`-th kernel launch faults before any numerics
//!   run, so device state is never half-written;
//! * `stall@N=SECS` — the `N`-th stream operation (transfers and kernels
//!   share one counter) takes `SECS` extra simulated seconds. Stalls do
//!   not fail the call; they exist to trip simulated-time deadlines.
//!
//! Counters start at zero when the `Gpu` is built, so the same plan on
//! the same workload strikes the same operation every run — the property
//! the fault-sweep suite relies on.
//!
//! A spec marked **transient** (`:t` suffix) fires once per plan: the
//! fired flag is shared across [`Clone`]s, so a retry that rebuilds the
//! device from the same plan sails past the fault. Persistent specs fire
//! on every device whose ordinal reaches them — a fallback engine
//! replaying a similar schedule hits them again, as real broken hardware
//! would.
//!
//! ## `RLCHOL_FAULTS` grammar
//!
//! Comma-separated specs, parsed by [`FaultPlan::parse`]:
//!
//! ```text
//! transfer@3         fail the 4th transfer (persistent)
//! kernel@0:t         fail the 1st kernel launch, once (transient)
//! oom@2              fail the 3rd device allocation
//! stall@5=0.25       add 0.25 simulated seconds to the 6th stream op
//! seed@42#8/100      8 pseudo-random faults over ordinals [0, 100)
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The class of device operation a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A memory transfer (either direction) fails.
    TransferFail,
    /// A kernel launch faults before executing.
    KernelFault,
    /// A device allocation fails as out-of-memory.
    DeviceOom,
    /// A stream operation takes extra simulated time (never fails).
    StreamStall,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::TransferFail => "transfer failure",
            FaultKind::KernelFault => "kernel fault",
            FaultKind::DeviceOom => "device out-of-memory",
            FaultKind::StreamStall => "stream stall",
        };
        f.write_str(s)
    }
}

/// One planned fault: strike the `index`-th operation of `kind`'s class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What fails.
    pub kind: FaultKind,
    /// Zero-based ordinal within the kind's operation class.
    pub index: u64,
    /// Transient faults fire once per plan; a retry succeeds.
    pub transient: bool,
    /// Extra simulated seconds for [`FaultKind::StreamStall`] (ignored
    /// for the failing kinds).
    pub stall_seconds: f64,
}

/// A fault injected by the runtime, carried inside
/// [`GpuError::Fault`](crate::GpuError::Fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceError {
    /// What failed.
    pub kind: FaultKind,
    /// The ordinal that was struck.
    pub index: u64,
    /// Whether the underlying spec was transient (a retry may succeed).
    pub transient: bool,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} at {} op #{}{}",
            self.kind,
            match self.kind {
                FaultKind::TransferFail => "transfer",
                FaultKind::KernelFault => "kernel",
                FaultKind::DeviceOom => "alloc",
                FaultKind::StreamStall => "stream",
            },
            self.index,
            if self.transient { " (transient)" } else { "" }
        )
    }
}

impl std::error::Error for DeviceError {}

/// A deterministic schedule of injected faults.
///
/// Build one with the `*_at` methods, [`FaultPlan::seeded`], or
/// [`FaultPlan::parse`], then install it via
/// [`Gpu::with_faults`](crate::Gpu::with_faults) /
/// [`Gpu::set_faults`](crate::Gpu::set_faults) — in the solver stack,
/// through `GpuOptions::faults` or the `RLCHOL_FAULTS` environment
/// variable. Clones share the transient-fired flags.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    entries: Vec<FaultSpec>,
    fired: Arc<[AtomicBool]>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            entries: Vec::new(),
            fired: Vec::new().into(),
        }
    }
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// The planned faults, in insertion order.
    pub fn entries(&self) -> &[FaultSpec] {
        &self.entries
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn push(mut self, spec: FaultSpec) -> Self {
        self.entries.push(spec);
        self.fired = self
            .entries
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        self
    }

    /// Fails the `index`-th transfer (H2D and D2H share the counter).
    pub fn transfer_at(self, index: u64) -> Self {
        self.push(FaultSpec {
            kind: FaultKind::TransferFail,
            index,
            transient: false,
            stall_seconds: 0.0,
        })
    }

    /// Faults the `index`-th kernel launch.
    pub fn kernel_at(self, index: u64) -> Self {
        self.push(FaultSpec {
            kind: FaultKind::KernelFault,
            index,
            transient: false,
            stall_seconds: 0.0,
        })
    }

    /// Fails the `index`-th device allocation as out-of-memory.
    pub fn oom_at(self, index: u64) -> Self {
        self.push(FaultSpec {
            kind: FaultKind::DeviceOom,
            index,
            transient: false,
            stall_seconds: 0.0,
        })
    }

    /// Adds `seconds` of simulated time to the `index`-th stream
    /// operation.
    pub fn stall_at(self, index: u64, seconds: f64) -> Self {
        self.push(FaultSpec {
            kind: FaultKind::StreamStall,
            index,
            transient: false,
            stall_seconds: seconds,
        })
    }

    /// Marks the most recently added spec transient (fires once per
    /// plan; shared across clones, so a retry succeeds).
    pub fn transient(mut self) -> Self {
        if let Some(last) = self.entries.last_mut() {
            last.transient = true;
        }
        self
    }

    /// `count` pseudo-random faults with ordinals in `[0, horizon)`,
    /// fully determined by `seed` (xorshift64 — no external RNG).
    pub fn seeded(seed: u64, count: usize, horizon: u64) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        if state == 0 {
            state = 0x2545_F491_4F6C_DD1D;
        }
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let kind = match next() % 4 {
                0 => FaultKind::TransferFail,
                1 => FaultKind::KernelFault,
                2 => FaultKind::DeviceOom,
                _ => FaultKind::StreamStall,
            };
            let index = next() % horizon.max(1);
            let transient = next() & 1 == 1;
            plan = plan.push(FaultSpec {
                kind,
                index,
                transient,
                stall_seconds: if kind == FaultKind::StreamStall {
                    0.25
                } else {
                    0.0
                },
            });
        }
        plan
    }

    /// Parses the `RLCHOL_FAULTS` grammar (see the module docs).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for tok in s.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (head, tail) = tok
                .split_once('@')
                .ok_or_else(|| format!("fault spec `{tok}`: expected `kind@index`"))?;
            if head == "seed" {
                // seed@SEED[#COUNT[/HORIZON]]
                let (seed_s, rest) = match tail.split_once('#') {
                    Some((a, b)) => (a, Some(b)),
                    None => (tail, None),
                };
                let seed: u64 = seed_s
                    .parse()
                    .map_err(|_| format!("fault spec `{tok}`: bad seed `{seed_s}`"))?;
                let (count, horizon) = match rest {
                    None => (1usize, 64u64),
                    Some(r) => match r.split_once('/') {
                        None => (
                            r.parse()
                                .map_err(|_| format!("fault spec `{tok}`: bad count `{r}`"))?,
                            64,
                        ),
                        Some((c, h)) => (
                            c.parse()
                                .map_err(|_| format!("fault spec `{tok}`: bad count `{c}`"))?,
                            h.parse()
                                .map_err(|_| format!("fault spec `{tok}`: bad horizon `{h}`"))?,
                        ),
                    },
                };
                for spec in FaultPlan::seeded(seed, count, horizon).entries() {
                    plan = plan.push(*spec);
                }
                continue;
            }
            let (mut rest, transient) = match tail.strip_suffix(":t") {
                Some(r) => (r, true),
                None => (tail, false),
            };
            let mut stall_seconds = 0.0;
            let kind = match head {
                "transfer" => FaultKind::TransferFail,
                "kernel" => FaultKind::KernelFault,
                "oom" => FaultKind::DeviceOom,
                "stall" => {
                    stall_seconds = 1.0;
                    if let Some((idx, secs)) = rest.split_once('=') {
                        stall_seconds = secs
                            .parse()
                            .map_err(|_| format!("fault spec `{tok}`: bad seconds `{secs}`"))?;
                        rest = idx;
                    }
                    FaultKind::StreamStall
                }
                other => return Err(format!("fault spec `{tok}`: unknown kind `{other}`")),
            };
            let index: u64 = rest
                .parse()
                .map_err(|_| format!("fault spec `{tok}`: bad index `{rest}`"))?;
            plan = plan.push(FaultSpec {
                kind,
                index,
                transient,
                stall_seconds,
            });
        }
        Ok(plan)
    }

    /// Looks up a failing fault of `kind` at ordinal `index`; transient
    /// matches consume their (clone-shared) fired flag.
    pub(crate) fn strike(&self, kind: FaultKind, index: u64) -> Option<DeviceError> {
        for (i, spec) in self.entries.iter().enumerate() {
            if spec.kind != kind || spec.index != index {
                continue;
            }
            if spec.transient && self.fired[i].swap(true, Ordering::Relaxed) {
                continue; // already fired once; the retry succeeds
            }
            return Some(DeviceError {
                kind,
                index,
                transient: spec.transient,
            });
        }
        None
    }

    /// Total stall seconds planned for stream-op ordinal `index`
    /// (transient stalls likewise fire once).
    pub(crate) fn stall(&self, index: u64) -> f64 {
        let mut total = 0.0;
        for (i, spec) in self.entries.iter().enumerate() {
            if spec.kind != FaultKind::StreamStall || spec.index != index {
                continue;
            }
            if spec.transient && self.fired[i].swap(true, Ordering::Relaxed) {
                continue;
            }
            total += spec.stall_seconds;
        }
        total
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultPlan::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_record_specs() {
        let plan = FaultPlan::new()
            .transfer_at(3)
            .kernel_at(0)
            .transient()
            .oom_at(2)
            .stall_at(5, 0.25);
        assert_eq!(plan.entries().len(), 4);
        assert_eq!(plan.entries()[0].kind, FaultKind::TransferFail);
        assert!(plan.entries()[1].transient);
        assert_eq!(plan.entries()[3].stall_seconds, 0.25);
    }

    #[test]
    fn strike_matches_kind_and_index() {
        let plan = FaultPlan::new().kernel_at(2);
        assert!(plan.strike(FaultKind::KernelFault, 1).is_none());
        assert!(plan.strike(FaultKind::TransferFail, 2).is_none());
        let e = plan.strike(FaultKind::KernelFault, 2).unwrap();
        assert_eq!(e.index, 2);
        assert!(!e.transient);
        // Persistent faults fire again (a rebuilt device re-hits them).
        assert!(plan.strike(FaultKind::KernelFault, 2).is_some());
    }

    #[test]
    fn transient_fires_once_across_clones() {
        let plan = FaultPlan::new().transfer_at(0).transient();
        let clone = plan.clone();
        assert!(plan.strike(FaultKind::TransferFail, 0).is_some());
        // The clone shares the fired flag — the retry's device succeeds.
        assert!(clone.strike(FaultKind::TransferFail, 0).is_none());
    }

    #[test]
    fn stalls_accumulate_and_transient_stalls_expire() {
        let plan = FaultPlan::new()
            .stall_at(1, 0.5)
            .stall_at(1, 0.25)
            .stall_at(2, 1.0)
            .transient();
        assert_eq!(plan.stall(0), 0.0);
        assert_eq!(plan.stall(1), 0.75);
        assert_eq!(plan.stall(2), 1.0);
        assert_eq!(plan.stall(2), 0.0);
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = FaultPlan::seeded(42, 8, 100);
        let b = FaultPlan::seeded(42, 8, 100);
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.entries().len(), 8);
        assert!(a.entries().iter().all(|s| s.index < 100));
        let c = FaultPlan::seeded(43, 8, 100);
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse("transfer@3, kernel@0:t, oom@2, stall@5=0.25").unwrap();
        assert_eq!(plan.entries().len(), 4);
        assert_eq!(
            plan.entries()[0],
            FaultSpec {
                kind: FaultKind::TransferFail,
                index: 3,
                transient: false,
                stall_seconds: 0.0
            }
        );
        assert!(plan.entries()[1].transient);
        assert_eq!(plan.entries()[2].kind, FaultKind::DeviceOom);
        assert_eq!(plan.entries()[3].stall_seconds, 0.25);
        // Stall without `=` defaults to one second.
        let d = FaultPlan::parse("stall@0").unwrap();
        assert_eq!(d.entries()[0].stall_seconds, 1.0);
        // Seed expansion matches the builder.
        let s = FaultPlan::parse("seed@42#8/100").unwrap();
        assert_eq!(s.entries(), FaultPlan::seeded(42, 8, 100).entries());
        assert_eq!(FaultPlan::parse("seed@7").unwrap().entries().len(), 1);
        // Empty input is an empty plan.
        assert!(FaultPlan::parse("").unwrap().is_empty());
        // Errors are typed strings, not panics.
        assert!(FaultPlan::parse("bogus@1").is_err());
        assert!(FaultPlan::parse("kernel").is_err());
        assert!(FaultPlan::parse("kernel@x").is_err());
    }

    #[test]
    fn display_names_the_struck_op() {
        let e = DeviceError {
            kind: FaultKind::KernelFault,
            index: 7,
            transient: true,
        };
        let s = e.to_string();
        assert!(s.contains("kernel fault"), "{s}");
        assert!(s.contains("#7"), "{s}");
        assert!(s.contains("transient"), "{s}");
    }
}
