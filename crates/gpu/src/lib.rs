//! # rlchol-gpu — a simulated GPU runtime
//!
//! The paper offloads BLAS calls to an NVIDIA A100 through MAGMA/CUDA.
//! This crate is the substitution (DESIGN.md §1): a CUDA-like runtime that
//! **executes kernels on the host** (bit-exact, fully testable) while
//! advancing a **simulated clock** according to the calibrated
//! [`GpuModel`](rlchol_perfmodel::GpuModel):
//!
//! * [`Gpu::alloc`] — device memory with a hard capacity; exceeding it
//!   returns [`GpuError::OutOfMemory`], which is exactly how `nlpkkt120`
//!   fails under RL in Table I;
//! * [`Stream`]s — in-order queues with their own completion cursor;
//!   enqueue is asynchronous with respect to the host clock, so a
//!   device-to-host copy can overlap host assembly work the way the
//!   paper's second transfer does in GPU-RL (§III);
//! * [`Event`]s — cross-stream and host synchronization points;
//! * kernels ([`Gpu::potrf`], [`Gpu::trsm_panel`], [`Gpu::syrk`],
//!   [`Gpu::gemm_nt`]) — numerics via `rlchol-dense`, time via the model,
//!   one launch overhead per call (the term that punishes RLB's many
//!   small calls relative to RL's single coarse DSYRK).
//!
//! The host side participates through [`Gpu::host_compute`] (CPU work
//! advances the host clock) and [`Gpu::synchronize`] /
//! [`Gpu::sync_stream`]; total simulated runtime is [`Gpu::elapsed`].
//!
//! ## Multi-stream pipelining
//!
//! Streams are cheap cursors, so engines may create as many compute/copy
//! pairs as they like and pipeline independent work across them; the
//! pipelined factorization engines size their pair count from
//! `RLCHOL_STREAMS` (see [`default_streams`]), mirroring how
//! `RLCHOL_THREADS` sizes the host thread pool. [`GpuStats`] keeps a
//! [`StreamStats`] breakdown per stream (kernel/transfer time and
//! counts), from which per-stream utilization over [`Gpu::elapsed`]
//! falls out directly. Note the model has no PCIe-contention term:
//! transfers on distinct streams overlap freely, as kernels do.

pub mod device;
pub mod error;
pub mod faults;
pub mod stats;

pub use device::{default_streams, Buffer, Event, Gpu, StreamId};
pub use error::GpuError;
pub use faults::{DeviceError, FaultKind, FaultPlan, FaultSpec};
pub use stats::{GpuStats, StreamRole, StreamStats};
