//! Errors of the simulated GPU runtime.

use std::fmt;

use crate::faults::DeviceError;

/// Failures surfaced by the device API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// An allocation would exceed the device memory capacity. This is the
    /// failure mode of Table I's `nlpkkt120` row: RL's full update matrix
    /// does not fit.
    OutOfMemory {
        requested_bytes: u64,
        used_bytes: u64,
        capacity_bytes: u64,
    },
    /// A buffer handle is stale (already freed) or out of range.
    InvalidBuffer { id: usize },
    /// An access would run past the end of a buffer.
    OutOfBounds {
        id: usize,
        offset: usize,
        len: usize,
        buffer_len: usize,
    },
    /// A kernel reported a numerical failure (e.g. POTRF pivot).
    Numerical(String),
    /// An injected fault from the device's [`FaultPlan`](crate::FaultPlan)
    /// struck this operation (fault-injection testing).
    Fault(DeviceError),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested_bytes,
                used_bytes,
                capacity_bytes,
            } => write!(
                f,
                "device out of memory: requested {requested_bytes} B with {used_bytes} B in use of {capacity_bytes} B"
            ),
            GpuError::InvalidBuffer { id } => write!(f, "invalid device buffer handle {id}"),
            GpuError::OutOfBounds {
                id,
                offset,
                len,
                buffer_len,
            } => write!(
                f,
                "device access out of bounds: buffer {id} ({buffer_len} elems), offset {offset}, len {len}"
            ),
            GpuError::Numerical(msg) => write!(f, "device kernel failure: {msg}"),
            GpuError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GpuError {}
