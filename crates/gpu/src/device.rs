//! The simulated device: memory, streams, events, transfers and kernels.

use parking_lot::Mutex;
use rlchol_perfmodel::{GpuModel, TraceOp};

use crate::error::GpuError;
use crate::faults::{FaultKind, FaultPlan};
use crate::stats::{GpuStats, StreamStats};

/// Stream-pair count for the pipelined engines: `RLCHOL_STREAMS` if set
/// to a positive integer, otherwise 2 (one pair overlapping another —
/// the smallest configuration that pipelines at all). Engines treat an
/// explicit stream count in their options as overriding this.
pub fn default_streams() -> usize {
    match std::env::var("RLCHOL_STREAMS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => 2,
        },
        Err(_) => 2,
    }
}

/// Handle to a device memory buffer (`f64` elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    id: usize,
    len: usize,
}

impl Buffer {
    /// Number of `f64` elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Handle to an in-order execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(usize);

/// A recorded timestamp on a stream, usable for cross-stream or host
/// synchronization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event(f64);

impl Event {
    /// The simulated completion time this event captured. Schedulers use
    /// it to pick which in-flight work item completes earliest — the
    /// simulated analogue of polling `cudaEventQuery`.
    pub fn time(&self) -> f64 {
        self.0
    }
}

struct State {
    buffers: Vec<Option<Vec<f64>>>,
    streams: Vec<f64>,
    host_clock: f64,
    blocking: bool,
    stats: GpuStats,
    /// Reused triangle copy for [`Gpu::trsm_panel`]; grows to the largest
    /// diagonal block so repeated panel TRSMs allocate nothing.
    l11_scratch: Vec<f64>,
    faults: FaultState,
}

/// Per-device fault-injection bookkeeping: the installed plan plus the
/// per-kind operation ordinals it is matched against (see
/// [`crate::faults`] for the ordinal semantics). Counters start at zero
/// per device, which is what makes a plan deterministic per run.
#[derive(Default)]
struct FaultState {
    plan: Option<FaultPlan>,
    transfer_ops: u64,
    kernel_ops: u64,
    stream_ops: u64,
}

impl FaultState {
    /// Advances the transfer ordinal; `Some` if the plan strikes it.
    fn next_transfer(&mut self) -> Option<GpuError> {
        let idx = self.transfer_ops;
        self.transfer_ops += 1;
        self.plan
            .as_ref()
            .and_then(|p| p.strike(FaultKind::TransferFail, idx))
            .map(GpuError::Fault)
    }

    /// Advances the kernel ordinal; `Some` if the plan strikes it.
    fn next_kernel(&mut self) -> Option<GpuError> {
        let idx = self.kernel_ops;
        self.kernel_ops += 1;
        self.plan
            .as_ref()
            .and_then(|p| p.strike(FaultKind::KernelFault, idx))
            .map(GpuError::Fault)
    }

    /// `Some` if the plan turns allocation ordinal `idx` into an OOM.
    fn alloc_fault(&self, idx: u64) -> Option<GpuError> {
        self.plan
            .as_ref()
            .and_then(|p| p.strike(FaultKind::DeviceOom, idx))
            .map(GpuError::Fault)
    }

    /// Advances the stream-op ordinal; extra stall seconds for this op.
    fn next_stall(&mut self) -> f64 {
        let idx = self.stream_ops;
        self.stream_ops += 1;
        self.plan.as_ref().map_or(0.0, |p| p.stall(idx))
    }
}

/// The simulated GPU.
///
/// All methods are interior-mutable behind a lock, mirroring how a real
/// device handle is shared across host code.
pub struct Gpu {
    model: GpuModel,
    state: Mutex<State>,
}

impl Gpu {
    /// Creates a device with the given performance/capacity model and one
    /// default stream (`StreamId(0)`).
    pub fn new(model: GpuModel) -> Self {
        Gpu {
            model,
            state: Mutex::new(State {
                buffers: Vec::new(),
                streams: vec![0.0],
                host_clock: 0.0,
                blocking: false,
                stats: GpuStats {
                    per_stream: vec![StreamStats::default()],
                    ..GpuStats::default()
                },
                l11_scratch: Vec::new(),
                faults: FaultState::default(),
            }),
        }
    }

    /// [`Gpu::new`] with a fault-injection plan installed (operation
    /// ordinals start at zero on the fresh device).
    pub fn with_faults(model: GpuModel, plan: FaultPlan) -> Self {
        let gpu = Gpu::new(model);
        gpu.set_faults(Some(plan));
        gpu
    }

    /// Installs (or clears) the fault-injection plan. The per-kind
    /// operation ordinals are reset so the plan's indices count from the
    /// next operation.
    pub fn set_faults(&self, plan: Option<FaultPlan>) {
        let mut st = self.state.lock();
        st.faults = FaultState {
            plan: plan.filter(|p| !p.is_empty()),
            ..FaultState::default()
        };
    }

    /// The model this device simulates.
    pub fn model(&self) -> &GpuModel {
        &self.model
    }

    /// The default stream.
    pub fn default_stream(&self) -> StreamId {
        StreamId(0)
    }

    /// Creates an additional stream.
    pub fn create_stream(&self) -> StreamId {
        let mut st = self.state.lock();
        let now = st.host_clock;
        st.streams.push(now);
        st.stats.per_stream.push(StreamStats::default());
        StreamId(st.streams.len() - 1)
    }

    /// When `true`, every enqueue synchronizes the host with the stream —
    /// the "no overlap" ablation mode.
    pub fn set_blocking(&self, blocking: bool) {
        self.state.lock().blocking = blocking;
    }

    /// Declares what `stream` is used for; reported per stream in
    /// [`GpuStats`] so utilization can be split by role.
    pub fn set_stream_role(&self, stream: StreamId, role: crate::stats::StreamRole) {
        self.state.lock().stats.per_stream[stream.0].role = role;
    }

    /// Rewinds the device to the start of a new factorization session
    /// while keeping its memory contents: clocks return to zero and the
    /// activity counters reset, but buffers (and their data), allocation
    /// bookkeeping (`used_bytes`, with `peak_bytes` restarting from it)
    /// and stream roles survive. This is what makes warm refactorization
    /// on a resident device meaningful — the next run's stats describe
    /// only its own work.
    pub fn reset_session(&self) {
        let mut st = self.state.lock();
        st.host_clock = 0.0;
        for c in st.streams.iter_mut() {
            *c = 0.0;
        }
        let used = st.stats.used_bytes;
        let alloc_count = st.stats.alloc_count;
        let roles: Vec<_> = st.stats.per_stream.iter().map(|s| s.role).collect();
        st.stats = GpuStats {
            used_bytes: used,
            peak_bytes: used,
            alloc_count,
            per_stream: roles
                .into_iter()
                .map(|role| StreamStats {
                    role,
                    ..StreamStats::default()
                })
                .collect(),
            ..GpuStats::default()
        };
    }

    /// Allocates `len` doubles of device memory.
    pub fn alloc(&self, len: usize) -> Result<Buffer, GpuError> {
        let bytes = (len * 8) as u64;
        let mut st = self.state.lock();
        let ordinal = st.stats.alloc_count;
        st.stats.alloc_count += 1;
        if let Some(err) = st.faults.alloc_fault(ordinal) {
            return Err(err);
        }
        if st.stats.used_bytes + bytes > self.model.memory_capacity {
            return Err(GpuError::OutOfMemory {
                requested_bytes: bytes,
                used_bytes: st.stats.used_bytes,
                capacity_bytes: self.model.memory_capacity,
            });
        }
        st.stats.used_bytes += bytes;
        st.stats.peak_bytes = st.stats.peak_bytes.max(st.stats.used_bytes);
        // Reuse a free slot if possible.
        let id = match st.buffers.iter().position(|b| b.is_none()) {
            Some(i) => {
                st.buffers[i] = Some(vec![0.0; len]);
                i
            }
            None => {
                st.buffers.push(Some(vec![0.0; len]));
                st.buffers.len() - 1
            }
        };
        Ok(Buffer { id, len })
    }

    /// Frees a buffer. Double-frees return `InvalidBuffer`.
    pub fn free(&self, buf: Buffer) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        match st.buffers.get_mut(buf.id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                st.stats.used_bytes -= (buf.len * 8) as u64;
                Ok(())
            }
            _ => Err(GpuError::InvalidBuffer { id: buf.id }),
        }
    }

    /// Registers `seconds` of host-side compute on the host timeline.
    pub fn host_compute(&self, seconds: f64) {
        let mut st = self.state.lock();
        st.host_clock += seconds;
        st.stats.host_seconds += seconds;
    }

    /// Blocks the host until `stream` has drained.
    pub fn sync_stream(&self, stream: StreamId) {
        let mut st = self.state.lock();
        st.host_clock = st.host_clock.max(st.streams[stream.0]);
    }

    /// Blocks the host until all streams have drained.
    pub fn synchronize(&self) {
        let mut st = self.state.lock();
        let m = st.streams.iter().fold(st.host_clock, |acc, &c| acc.max(c));
        st.host_clock = m;
    }

    /// Records an event capturing `stream`'s current completion time.
    pub fn record_event(&self, stream: StreamId) -> Event {
        Event(self.state.lock().streams[stream.0])
    }

    /// Makes `stream` wait for `event`.
    pub fn stream_wait_event(&self, stream: StreamId, event: Event) {
        let mut st = self.state.lock();
        st.streams[stream.0] = st.streams[stream.0].max(event.0);
    }

    /// Blocks the host until `event` has completed.
    pub fn host_wait_event(&self, event: Event) {
        let mut st = self.state.lock();
        st.host_clock = st.host_clock.max(event.0);
    }

    /// Current simulated time: the furthest point any timeline reached.
    pub fn elapsed(&self) -> f64 {
        let st = self.state.lock();
        st.streams.iter().fold(st.host_clock, |acc, &c| acc.max(c))
    }

    /// Host timeline position (excludes unfinished asynchronous work).
    pub fn host_now(&self) -> f64 {
        self.state.lock().host_clock
    }

    /// Resets all clocks to zero (buffers and stats are kept).
    pub fn reset_clocks(&self) {
        let mut st = self.state.lock();
        st.host_clock = 0.0;
        for c in st.streams.iter_mut() {
            *c = 0.0;
        }
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> GpuStats {
        self.state.lock().stats.clone()
    }

    fn check_range(st: &State, buf: Buffer, offset: usize, len: usize) -> Result<(), GpuError> {
        match st.buffers.get(buf.id) {
            Some(Some(v)) => {
                if offset + len > v.len() {
                    Err(GpuError::OutOfBounds {
                        id: buf.id,
                        offset,
                        len,
                        buffer_len: v.len(),
                    })
                } else {
                    Ok(())
                }
            }
            _ => Err(GpuError::InvalidBuffer { id: buf.id }),
        }
    }

    /// Advances `stream` by `dur`, starting no earlier than the host clock
    /// (the host must have issued the work).
    fn advance(st: &mut State, stream: StreamId, dur: f64) {
        let start = st.streams[stream.0].max(st.host_clock);
        st.streams[stream.0] = start + dur;
        if st.blocking {
            st.host_clock = st.streams[stream.0];
        }
    }

    /// Asynchronous host→device copy.
    pub fn memcpy_h2d(
        &self,
        stream: StreamId,
        buf: Buffer,
        offset: usize,
        src: &[f64],
    ) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        Self::check_range(&st, buf, offset, src.len())?;
        if let Some(err) = st.faults.next_transfer() {
            return Err(err);
        }
        let bytes = src.len() * 8;
        st.buffers[buf.id].as_mut().unwrap()[offset..offset + src.len()].copy_from_slice(src);
        let dur = self.model.transfer_time(bytes) + st.faults.next_stall();
        st.stats.h2d_count += 1;
        st.stats.h2d_bytes += bytes as u64;
        st.stats.transfer_seconds += dur;
        st.stats.per_stream[stream.0].transfer_count += 1;
        st.stats.per_stream[stream.0].transfer_seconds += dur;
        Self::advance(&mut st, stream, dur);
        Ok(())
    }

    /// Asynchronous device→host copy.
    ///
    /// Data lands in `dst` immediately (host execution is eager); the
    /// *simulated* completion is the stream cursor — callers must
    /// [`sync_stream`](Self::sync_stream) (or wait on an event) before the
    /// simulated host may observe it, exactly as with a real `cudaMemcpyAsync`.
    pub fn memcpy_d2h(
        &self,
        stream: StreamId,
        buf: Buffer,
        offset: usize,
        dst: &mut [f64],
    ) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        Self::check_range(&st, buf, offset, dst.len())?;
        if let Some(err) = st.faults.next_transfer() {
            return Err(err);
        }
        let bytes = dst.len() * 8;
        dst.copy_from_slice(&st.buffers[buf.id].as_ref().unwrap()[offset..offset + dst.len()]);
        let dur = self.model.transfer_time(bytes) + st.faults.next_stall();
        st.stats.d2h_count += 1;
        st.stats.d2h_bytes += bytes as u64;
        st.stats.transfer_seconds += dur;
        st.stats.per_stream[stream.0].transfer_count += 1;
        st.stats.per_stream[stream.0].transfer_seconds += dur;
        Self::advance(&mut st, stream, dur);
        Ok(())
    }

    fn launch(&self, st: &mut State, stream: StreamId, op: TraceOp) {
        let dur = self.model.kernel_time(&op) + st.faults.next_stall();
        st.stats.kernel_launches += 1;
        st.stats.kernel_seconds += dur;
        st.stats.per_stream[stream.0].kernel_launches += 1;
        st.stats.per_stream[stream.0].kernel_seconds += dur;
        Self::advance(st, stream, dur);
    }

    /// `DPOTRF` on the `n x n` block at `offset` (leading dimension `ld`).
    pub fn potrf(
        &self,
        stream: StreamId,
        buf: Buffer,
        offset: usize,
        n: usize,
        ld: usize,
    ) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        if n > 0 {
            Self::check_range(&st, buf, offset, (n - 1) * ld + n)?;
        }
        if let Some(err) = st.faults.next_kernel() {
            return Err(err);
        }
        let data = st.buffers[buf.id].as_mut().unwrap();
        rlchol_dense::potrf(n, &mut data[offset..], ld)
            .map_err(|e| GpuError::Numerical(e.to_string()))?;
        self.launch(&mut st, stream, TraceOp::Potrf { n });
        Ok(())
    }

    /// `DTRSM` for a supernode panel stored in one buffer: the `c x c`
    /// lower triangle at `offset` is the (already factored) diagonal
    /// block; the `m` rows directly below it are solved in place
    /// (`B := B · L^{-T}`).
    pub fn trsm_panel(
        &self,
        stream: StreamId,
        buf: Buffer,
        offset: usize,
        ld: usize,
        c: usize,
        m: usize,
    ) -> Result<(), GpuError> {
        let mut st = self.state.lock();
        if c > 0 && m > 0 {
            Self::check_range(&st, buf, offset, (c - 1) * ld + c + m)?;
        }
        if let Some(err) = st.faults.next_kernel() {
            return Err(err);
        }
        // The diagonal block and the panel interleave by columns; copy the
        // triangle out (exactly what the blocked host POTRF does) into the
        // device-wide reusable scratch.
        let mut l11 = std::mem::take(&mut st.l11_scratch);
        if l11.len() < c * c {
            l11.resize(c * c, 0.0);
        }
        let data = st.buffers[buf.id].as_mut().unwrap();
        for j in 0..c {
            for i in j..c {
                l11[j * c + i] = data[offset + j * ld + i];
            }
        }
        rlchol_dense::trsm_rlt(m, c, &l11[..c * c], c, &mut data[offset + c..], ld);
        st.l11_scratch = l11;
        self.launch(&mut st, stream, TraceOp::Trsm { m, n: c });
        Ok(())
    }

    /// `DSYRK`: `C := alpha · A Aᵀ + beta · C` (lower), where `A` is the
    /// `n x k` block of `a_buf` at `a_off` and `C` the `n x n` block of
    /// `c_buf` at `c_off`. The two buffers must be distinct.
    #[allow(clippy::too_many_arguments)]
    pub fn syrk(
        &self,
        stream: StreamId,
        a_buf: Buffer,
        a_off: usize,
        lda: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
        c_buf: Buffer,
        c_off: usize,
        ldc: usize,
    ) -> Result<(), GpuError> {
        assert_ne!(a_buf.id, c_buf.id, "SYRK operands must not alias");
        let mut st = self.state.lock();
        if n > 0 {
            if k > 0 {
                Self::check_range(&st, a_buf, a_off, (k - 1) * lda + n)?;
            }
            Self::check_range(&st, c_buf, c_off, (n - 1) * ldc + n)?;
        }
        if let Some(err) = st.faults.next_kernel() {
            return Err(err);
        }
        let mut c_data = st.buffers[c_buf.id]
            .take()
            .ok_or(GpuError::InvalidBuffer { id: c_buf.id })?;
        {
            let a_data = st.buffers[a_buf.id].as_ref().unwrap();
            rlchol_dense::syrk_ln(
                n,
                k,
                alpha,
                &a_data[a_off..],
                lda,
                beta,
                &mut c_data[c_off..],
                ldc,
            );
        }
        st.buffers[c_buf.id] = Some(c_data);
        self.launch(&mut st, stream, TraceOp::Syrk { n, k });
        Ok(())
    }

    /// `DGEMM` (`C := alpha · A Bᵀ + beta · C`): `A` is `m x k` at
    /// `a_off` of `a_buf`, `B` is `n x k` at `b_off` of `b_buf` (the two
    /// may alias — RLB multiplies two row blocks of the same supernode),
    /// `C` is `m x n` in a distinct buffer.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_nt(
        &self,
        stream: StreamId,
        a_buf: Buffer,
        a_off: usize,
        lda: usize,
        b_buf: Buffer,
        b_off: usize,
        ldb: usize,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
        c_buf: Buffer,
        c_off: usize,
        ldc: usize,
    ) -> Result<(), GpuError> {
        assert_ne!(a_buf.id, c_buf.id, "GEMM output must not alias A");
        assert_ne!(b_buf.id, c_buf.id, "GEMM output must not alias B");
        let mut st = self.state.lock();
        if m > 0 && n > 0 && k > 0 {
            Self::check_range(&st, a_buf, a_off, (k - 1) * lda + m)?;
            Self::check_range(&st, b_buf, b_off, (k - 1) * ldb + n)?;
            Self::check_range(&st, c_buf, c_off, (n - 1) * ldc + m)?;
        }
        if let Some(err) = st.faults.next_kernel() {
            return Err(err);
        }
        let mut c_data = st.buffers[c_buf.id]
            .take()
            .ok_or(GpuError::InvalidBuffer { id: c_buf.id })?;
        {
            let a_data = st.buffers[a_buf.id].as_ref().unwrap();
            let b_data = st.buffers[b_buf.id].as_ref().unwrap();
            rlchol_dense::gemm_nt(
                m,
                n,
                k,
                alpha,
                &a_data[a_off..],
                lda,
                &b_data[b_off..],
                ldb,
                beta,
                &mut c_data[c_off..],
                ldc,
            );
        }
        st.buffers[c_buf.id] = Some(c_data);
        self.launch(&mut st, stream, TraceOp::Gemm { m, n, k });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_dense::DMat;
    use rlchol_perfmodel::perlmutter_gpu;

    fn small_gpu(capacity_bytes: u64) -> Gpu {
        let mut model = perlmutter_gpu();
        model.memory_capacity = capacity_bytes;
        Gpu::new(model)
    }

    #[test]
    fn alloc_tracks_capacity_and_oom() {
        let gpu = small_gpu(1024); // 128 doubles
        let b1 = gpu.alloc(100).unwrap();
        assert!(matches!(gpu.alloc(50), Err(GpuError::OutOfMemory { .. })));
        gpu.free(b1).unwrap();
        let b2 = gpu.alloc(120).unwrap();
        assert_eq!(gpu.stats().peak_bytes, 120 * 8);
        assert!(gpu.free(b2).is_ok());
        assert!(gpu.free(b2).is_err()); // double free
    }

    #[test]
    fn device_factorization_matches_host() {
        // Factor a 12x3 supernode panel (3 cols, 9 rows below) on device
        // and compare against the host kernels.
        let (c, len) = (3usize, 12usize);
        let mut host = DMat::from_fn(len, c, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                ((i * 7 + j * 3) % 5) as f64 * 0.1
            }
        });
        let gpu = small_gpu(1 << 20);
        let s = gpu.default_stream();
        let buf = gpu.alloc(len * c).unwrap();
        gpu.memcpy_h2d(s, buf, 0, host.as_slice()).unwrap();
        gpu.potrf(s, buf, 0, c, len).unwrap();
        gpu.trsm_panel(s, buf, 0, len, c, len - c).unwrap();
        let mut back = vec![0.0; len * c];
        gpu.memcpy_d2h(s, buf, 0, &mut back).unwrap();
        gpu.sync_stream(s);
        // Host reference.
        rlchol_dense::potrf(c, host.as_mut_slice(), len).unwrap();
        let mut l11 = vec![0.0; c * c];
        for j in 0..c {
            for i in j..c {
                l11[j * c + i] = host[(i, j)];
            }
        }
        {
            let hs = host.as_mut_slice();
            rlchol_dense::trsm_rlt(len - c, c, &l11, c, &mut hs[c..], len);
        }
        for (x, y) in back.iter().zip(host.as_slice()) {
            assert!((x - y).abs() < 1e-13);
        }
        assert_eq!(gpu.stats().kernel_launches, 2);
    }

    #[test]
    fn syrk_and_gemm_numerics() {
        let gpu = small_gpu(1 << 20);
        let s = gpu.default_stream();
        let (n, k) = (5usize, 3usize);
        let a: Vec<f64> = (0..n * k).map(|i| (i as f64) * 0.25 - 1.0).collect();
        let abuf = gpu.alloc(n * k).unwrap();
        let cbuf = gpu.alloc(n * n).unwrap();
        gpu.memcpy_h2d(s, abuf, 0, &a).unwrap();
        gpu.syrk(s, abuf, 0, n, n, k, -1.0, 0.0, cbuf, 0, n)
            .unwrap();
        let mut c_dev = vec![0.0; n * n];
        gpu.memcpy_d2h(s, cbuf, 0, &mut c_dev).unwrap();
        let mut c_ref = vec![0.0; n * n];
        rlchol_dense::syrk_ln(n, k, -1.0, &a, n, 0.0, &mut c_ref, n);
        for j in 0..n {
            for i in j..n {
                assert!((c_dev[j * n + i] - c_ref[j * n + i]).abs() < 1e-14);
            }
        }
        // GEMM with aliased A/B (two views of the same buffer).
        let gbuf = gpu.alloc(4).unwrap();
        gpu.gemm_nt(s, abuf, 0, n, abuf, 2, n, 2, 2, k, 1.0, 0.0, gbuf, 0, 2)
            .unwrap();
        let mut g_dev = vec![0.0; 4];
        gpu.memcpy_d2h(s, gbuf, 0, &mut g_dev).unwrap();
        let mut g_ref = vec![0.0; 4];
        rlchol_dense::gemm_nt(2, 2, k, 1.0, &a, n, &a[2..], n, 0.0, &mut g_ref, 2);
        assert_eq!(g_dev, g_ref);
    }

    #[test]
    fn async_d2h_overlaps_host_compute() {
        let gpu = small_gpu(1 << 24);
        let s = gpu.default_stream();
        let buf = gpu.alloc(1 << 18).unwrap(); // 2 MiB transfer
        let src = vec![1.0; 1 << 18];
        gpu.memcpy_h2d(s, buf, 0, &src).unwrap();
        gpu.sync_stream(s);
        let t0 = gpu.elapsed();
        let mut dst = vec![0.0; 1 << 18];
        gpu.memcpy_d2h(s, buf, 0, &mut dst).unwrap();
        let transfer = gpu.model().transfer_time(8 << 18);
        // Overlapped host work shorter than the transfer.
        gpu.host_compute(transfer * 0.5);
        gpu.sync_stream(s);
        let total = gpu.elapsed() - t0;
        assert!((total - transfer).abs() < 1e-12, "overlap not modeled");

        // Blocking mode serializes instead.
        gpu.reset_clocks();
        gpu.set_blocking(true);
        gpu.memcpy_d2h(s, buf, 0, &mut dst).unwrap();
        gpu.host_compute(transfer * 0.5);
        gpu.sync_stream(s);
        assert!(gpu.elapsed() >= transfer * 1.5 - 1e-12);
    }

    #[test]
    fn events_order_streams() {
        let gpu = small_gpu(1 << 20);
        let s0 = gpu.default_stream();
        let s1 = gpu.create_stream();
        let buf = gpu.alloc(1000).unwrap();
        let src = vec![0.5; 1000];
        gpu.memcpy_h2d(s0, buf, 0, &src).unwrap();
        let ev = gpu.record_event(s0);
        gpu.stream_wait_event(s1, ev);
        // s1's next op starts no earlier than the copy's completion.
        gpu.potrf(s1, buf, 0, 0, 1).unwrap();
        gpu.synchronize();
        assert!(gpu.elapsed() >= gpu.model().transfer_time(8000));
    }

    #[test]
    fn bounds_and_handles_are_checked() {
        let gpu = small_gpu(1 << 20);
        let s = gpu.default_stream();
        let buf = gpu.alloc(10).unwrap();
        let src = vec![0.0; 11];
        assert!(matches!(
            gpu.memcpy_h2d(s, buf, 0, &src),
            Err(GpuError::OutOfBounds { .. })
        ));
        assert!(gpu.potrf(s, buf, 8, 2, 2).is_err());
        gpu.free(buf).unwrap();
        assert!(matches!(
            gpu.memcpy_h2d(s, buf, 0, &src[..1]),
            Err(GpuError::InvalidBuffer { .. })
        ));
    }

    #[test]
    fn injected_faults_strike_the_planned_ordinals() {
        use crate::faults::{DeviceError, FaultKind, FaultPlan};
        let model = perlmutter_gpu();

        // oom@1: the second allocation fails, the first succeeds.
        let gpu = Gpu::with_faults(model, FaultPlan::new().oom_at(1));
        gpu.alloc(8).unwrap();
        assert!(matches!(
            gpu.alloc(8),
            Err(GpuError::Fault(DeviceError {
                kind: FaultKind::DeviceOom,
                index: 1,
                ..
            }))
        ));
        assert_eq!(gpu.stats().alloc_count, 2);

        // transfer@1: H2D and D2H share the ordinal space; no data moves.
        let gpu = Gpu::with_faults(model, FaultPlan::new().transfer_at(1));
        let s = gpu.default_stream();
        let buf = gpu.alloc(4).unwrap();
        gpu.memcpy_h2d(s, buf, 0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut back = [0.0; 4];
        assert!(matches!(
            gpu.memcpy_d2h(s, buf, 0, &mut back),
            Err(GpuError::Fault(DeviceError {
                kind: FaultKind::TransferFail,
                index: 1,
                ..
            }))
        ));
        assert_eq!(back, [0.0; 4], "failed transfer must not move data");

        // kernel@1: potrf succeeds, the following trsm faults before
        // touching the panel.
        let gpu = Gpu::with_faults(model, FaultPlan::new().kernel_at(1));
        let s = gpu.default_stream();
        let buf = gpu.alloc(6).unwrap();
        gpu.memcpy_h2d(s, buf, 0, &[4.0, 1.0, 1.0, 0.0, 9.0, 2.0])
            .unwrap();
        gpu.potrf(s, buf, 0, 2, 3).unwrap();
        let mut snap = [0.0; 6];
        gpu.memcpy_d2h(s, buf, 0, &mut snap).unwrap();
        assert!(matches!(
            gpu.trsm_panel(s, buf, 0, 3, 2, 1),
            Err(GpuError::Fault(DeviceError {
                kind: FaultKind::KernelFault,
                index: 1,
                ..
            }))
        ));
        let mut after = [0.0; 6];
        gpu.memcpy_d2h(s, buf, 0, &mut after).unwrap();
        assert_eq!(snap, after, "faulted kernel must not run numerics");

        // stall@N adds simulated time without failing the op.
        let gpu = Gpu::new(model);
        let s = gpu.default_stream();
        let buf = gpu.alloc(4).unwrap();
        gpu.memcpy_h2d(s, buf, 0, &[0.0; 4]).unwrap();
        gpu.synchronize();
        let clean = gpu.elapsed();
        let gpu = Gpu::with_faults(model, FaultPlan::new().stall_at(0, 2.5));
        let s = gpu.default_stream();
        let buf = gpu.alloc(4).unwrap();
        gpu.memcpy_h2d(s, buf, 0, &[0.0; 4]).unwrap();
        gpu.synchronize();
        assert!((gpu.elapsed() - clean - 2.5).abs() < 1e-12);
    }

    #[test]
    fn transient_fault_spares_a_rebuilt_device() {
        use crate::faults::FaultPlan;
        let plan = FaultPlan::new().kernel_at(0).transient();
        let model = perlmutter_gpu();
        let gpu = Gpu::with_faults(model, plan.clone());
        let s = gpu.default_stream();
        let buf = gpu.alloc(4).unwrap();
        gpu.memcpy_h2d(s, buf, 0, &[4.0, 1.0, 1.0, 3.0]).unwrap();
        assert!(matches!(
            gpu.potrf(s, buf, 0, 2, 2),
            Err(GpuError::Fault(_))
        ));
        // A retry on a fresh device built from the same plan succeeds.
        let gpu = Gpu::with_faults(model, plan);
        let s = gpu.default_stream();
        let buf = gpu.alloc(4).unwrap();
        gpu.memcpy_h2d(s, buf, 0, &[4.0, 1.0, 1.0, 3.0]).unwrap();
        gpu.potrf(s, buf, 0, 2, 2).unwrap();
    }

    #[test]
    fn potrf_surfaces_numerical_failures() {
        let gpu = small_gpu(1 << 20);
        let s = gpu.default_stream();
        let buf = gpu.alloc(4).unwrap();
        gpu.memcpy_h2d(s, buf, 0, &[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(matches!(
            gpu.potrf(s, buf, 0, 2, 2),
            Err(GpuError::Numerical(_))
        ));
    }
}
