//! Typed service-layer errors. Every failure a request can hit maps to
//! exactly one variant — the admission gate and deadline machinery shed
//! with [`ServiceError::Overloaded`] / [`ServiceError::DeadlineExceeded`]
//! rather than blocking, and engine errors pass through unwrapped so
//! callers keep the full [`FactorError`] / [`SolveError`] taxonomy.

use rlchol_core::{FactorError, SolveError};
use std::fmt;
use std::time::Duration;

/// What went wrong with one service request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The in-flight gate was full: the request was shed immediately
    /// instead of queueing unboundedly.
    Overloaded {
        /// Requests in flight when the shed happened.
        in_flight: usize,
        /// The admission limit (resolved queue depth).
        limit: usize,
    },
    /// The request's deadline expired before numeric work started
    /// (expiry *during* factorization surfaces as
    /// [`FactorError::DeadlineExceeded`] inside [`ServiceError::Factor`]).
    DeadlineExceeded {
        /// How long the request had waited when it was shed.
        waited: Duration,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request itself is malformed (e.g. a batch value set whose
    /// length does not match the pattern).
    BadRequest(String),
    /// Numeric factorization failed (typed engine error).
    Factor(FactorError),
    /// The triangular solve failed (typed solve error).
    Solve(SolveError),
    /// A wire-protocol frame could not be decoded.
    Protocol(String),
}

impl ServiceError {
    /// Stable lowercase tag for JSON responses and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::DeadlineExceeded { .. } => "deadline",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::Factor(_) => "factor",
            ServiceError::Solve(_) => "solve",
            ServiceError::Protocol(_) => "protocol",
        }
    }

    /// True when the error is load shedding (admission or deadline) as
    /// opposed to a genuine numeric/protocol failure — overload tests
    /// and the bench use this to separate "shed by design" from broken.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. }
                | ServiceError::DeadlineExceeded { .. }
                | ServiceError::ShuttingDown
                | ServiceError::Factor(FactorError::DeadlineExceeded { .. })
                | ServiceError::Factor(FactorError::Cancelled)
                | ServiceError::Factor(FactorError::LanesExhausted { .. })
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, limit } => write!(
                f,
                "service overloaded: {in_flight} requests in flight (limit {limit}); \
                 request shed — retry with backoff"
            ),
            ServiceError::DeadlineExceeded { waited } => write!(
                f,
                "request deadline expired after {:.1} ms before work started",
                waited.as_secs_f64() * 1e3
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Factor(e) => write!(f, "factorization failed: {e}"),
            ServiceError::Solve(e) => write!(f, "solve failed: {e}"),
            ServiceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Factor(e) => Some(e),
            ServiceError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FactorError> for ServiceError {
    fn from(e: FactorError) -> Self {
        ServiceError::Factor(e)
    }
}

impl From<SolveError> for ServiceError {
    fn from(e: SolveError) -> Self {
        ServiceError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_sheds_are_classified() {
        let overload = ServiceError::Overloaded {
            in_flight: 4,
            limit: 4,
        };
        assert_eq!(overload.kind(), "overloaded");
        assert!(overload.is_shed());
        assert!(overload.to_string().contains("4 requests in flight"));

        let deadline = ServiceError::DeadlineExceeded {
            waited: Duration::from_millis(5),
        };
        assert_eq!(deadline.kind(), "deadline");
        assert!(deadline.is_shed());

        let factor: ServiceError = FactorError::Cancelled.into();
        assert_eq!(factor.kind(), "factor");
        assert!(factor.is_shed(), "cancel/deadline engine errors are sheds");

        let hard: ServiceError = FactorError::NotPositiveDefinite { column: 3 }.into();
        assert!(!hard.is_shed(), "numeric failure is not a shed");

        let solve: ServiceError = SolveError::RhsDimension {
            expected: 4,
            found: 3,
        }
        .into();
        assert_eq!(solve.kind(), "solve");
        assert!(!solve.is_shed());

        assert_eq!(ServiceError::ShuttingDown.kind(), "shutting_down");
        assert_eq!(ServiceError::BadRequest("x".into()).kind(), "bad_request");
        assert_eq!(ServiceError::Protocol("x".into()).kind(), "protocol");
    }
}
