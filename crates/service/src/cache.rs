//! Symbolic-handle cache: fingerprint → `Arc<SymbolicCholesky>` with
//! byte-accurate accounting, LRU eviction against a configurable budget,
//! and single-flight miss coalescing.
//!
//! Symbolic analysis is the expensive, values-independent prefix of a
//! solve — amortizing one handle across every request with the same
//! pattern is the whole point of the service. The cache guarantees:
//!
//! * **Single flight** — when N threads miss on the same key
//!   concurrently, exactly one runs the analysis; the rest block on a
//!   per-key condvar and wake with the shared handle
//!   ([`CacheOutcome::CoalescedMiss`]). A panicking builder wakes the
//!   waiters (one of them retries the build) instead of deadlocking them.
//! * **Byte-accurate budget** — each entry is charged
//!   [`SymbolicCholesky::memory_bytes`] (symbolic structure, solve
//!   plan, and every lane workspace); least-recently-used *ready*
//!   entries are evicted until the total fits the budget. In-flight
//!   builds and the entry just inserted are never evicted, so the
//!   budget is a soft ceiling: a single handle larger than the budget
//!   still caches (and evicts everything else).
//! * **Eviction is safe** — evicting drops the cache's `Arc`; requests
//!   still factoring on the old handle keep it alive until they finish.

use crate::fingerprint::PatternFingerprint;
use rlchol_core::SymbolicCholesky;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How a request's handle lookup resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Handle was ready in the cache.
    Hit,
    /// This request ran the symbolic analysis.
    Miss,
    /// Another request was already analyzing the same pattern; this one
    /// waited and shares the result.
    CoalescedMiss,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a ready handle.
    pub hits: u64,
    /// Lookups that ran an analysis.
    pub misses: u64,
    /// Lookups that waited on another request's in-flight analysis.
    pub coalesced: u64,
    /// Ready entries evicted to fit the budget.
    pub evictions: u64,
    /// Ready entries currently cached.
    pub entries: usize,
    /// Bytes currently charged.
    pub bytes: u64,
    /// High-water mark of charged bytes.
    pub peak_bytes: u64,
    /// The configured budget.
    pub budget_bytes: u64,
}

#[derive(Default)]
enum BuildState {
    #[default]
    Pending,
    Ready(Arc<SymbolicCholesky>),
    /// The builder panicked; a waiter must retry the build.
    Failed,
}

#[derive(Default)]
struct Build {
    state: Mutex<BuildState>,
    cv: Condvar,
}

impl Build {
    fn complete(&self, result: Option<Arc<SymbolicCholesky>>) {
        let mut st = self.state.lock().unwrap();
        *st = match result {
            Some(h) => BuildState::Ready(h),
            None => BuildState::Failed,
        };
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<Arc<SymbolicCholesky>> {
        let mut st = self.state.lock().unwrap();
        loop {
            match &*st {
                BuildState::Pending => st = self.cv.wait(st).unwrap(),
                BuildState::Ready(h) => return Some(h.clone()),
                BuildState::Failed => return None,
            }
        }
    }
}

struct Entry {
    handle: Arc<SymbolicCholesky>,
    bytes: u64,
    last_used: u64,
}

enum Slot {
    Ready(Entry),
    Building(Arc<Build>),
}

#[derive(Default)]
struct Inner {
    map: HashMap<PatternFingerprint, Slot>,
    tick: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    peak_bytes: u64,
}

/// The handle cache. All methods take `&self`; one `Mutex` guards the
/// map and counters, and analyses run *outside* it.
pub struct HandleCache {
    budget: u64,
    inner: Mutex<Inner>,
}

/// Removes the `Building` slot and fails the waiters if the builder
/// unwinds (panic inside the analysis closure).
struct BuildGuard<'a> {
    cache: &'a HandleCache,
    key: PatternFingerprint,
    build: &'a Arc<Build>,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = self.cache.inner.lock().unwrap();
        if matches!(st.map.get(&self.key), Some(Slot::Building(_))) {
            st.map.remove(&self.key);
        }
        drop(st);
        self.build.complete(None);
    }
}

impl HandleCache {
    /// A cache charging entries against `budget_bytes`.
    pub fn new(budget_bytes: u64) -> Self {
        HandleCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// True when `key` maps to a *ready* handle right now (test hook).
    pub fn contains(&self, key: &PatternFingerprint) -> bool {
        matches!(
            self.inner.lock().unwrap().map.get(key),
            Some(Slot::Ready(_))
        )
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let st = self.inner.lock().unwrap();
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            coalesced: st.coalesced,
            evictions: st.evictions,
            entries: st
                .map
                .values()
                .filter(|s| matches!(s, Slot::Ready(_)))
                .count(),
            bytes: st.bytes,
            peak_bytes: st.peak_bytes,
            budget_bytes: self.budget,
        }
    }

    /// Returns the handle for `key`, running `build` at most once per
    /// concurrent miss group. `build` runs outside the cache lock.
    pub fn get_or_analyze<F>(
        &self,
        key: PatternFingerprint,
        build: F,
    ) -> (Arc<SymbolicCholesky>, CacheOutcome)
    where
        F: FnOnce() -> SymbolicCholesky,
    {
        enum Action {
            Hit(Arc<SymbolicCholesky>),
            Wait(Arc<Build>),
            Build(Arc<Build>),
        }
        let mut build = Some(build);
        loop {
            let action = {
                let mut st = self.inner.lock().unwrap();
                st.tick += 1;
                let tick = st.tick;
                let action = match st.map.get_mut(&key) {
                    Some(Slot::Ready(e)) => {
                        e.last_used = tick;
                        Action::Hit(e.handle.clone())
                    }
                    Some(Slot::Building(b)) => Action::Wait(b.clone()),
                    None => {
                        let b = Arc::new(Build::default());
                        st.map.insert(key, Slot::Building(b.clone()));
                        Action::Build(b)
                    }
                };
                match &action {
                    Action::Hit(_) => st.hits += 1,
                    Action::Wait(_) => st.coalesced += 1,
                    Action::Build(_) => st.misses += 1,
                }
                action
            };
            match action {
                Action::Hit(handle) => return (handle, CacheOutcome::Hit),
                Action::Wait(in_flight) => match in_flight.wait() {
                    Some(handle) => return (handle, CacheOutcome::CoalescedMiss),
                    // The builder panicked; loop and try to become the
                    // builder ourselves (our closure is still unconsumed).
                    None => continue,
                },
                Action::Build(b) => {
                    let mut guard = BuildGuard {
                        cache: self,
                        key,
                        build: &b,
                        armed: true,
                    };
                    let handle = Arc::new((build.take().expect(
                        "the builder closure is consumed at most once: a retry loops \
                         back only after *another* thread's build failed",
                    ))());
                    guard.armed = false;
                    self.finish_build(key, &handle);
                    b.complete(Some(handle.clone()));
                    return (handle, CacheOutcome::Miss);
                }
            }
        }
    }

    /// Installs the finished handle, charges its bytes and evicts LRU
    /// ready entries (never `key` itself) until the budget fits.
    fn finish_build(&self, key: PatternFingerprint, handle: &Arc<SymbolicCholesky>) {
        let bytes = handle.memory_bytes();
        let mut st = self.inner.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        st.map.insert(
            key,
            Slot::Ready(Entry {
                handle: handle.clone(),
                bytes,
                last_used: tick,
            }),
        );
        st.bytes += bytes;
        while st.bytes > self.budget {
            let victim = st
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(e) if *k != key => Some((*k, e.last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, used)| used)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    if let Some(Slot::Ready(e)) = st.map.remove(&k) {
                        st.bytes -= e.bytes;
                        st.evictions += 1;
                    }
                }
                None => break, // only the new entry (or builds) remain
            }
        }
        st.peak_bytes = st.peak_bytes.max(st.bytes);
    }
}
