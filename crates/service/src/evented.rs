//! Evented TCP front end: one readiness-polled event loop multiplexing
//! every connection over a **fixed worker pool**, replacing the seed's
//! thread-per-connection accept loop.
//!
//! # Architecture
//!
//! ```text
//!            ┌─────────────── poller thread ────────────────┐
//!  accept ──▶│ nonblocking listener + connection registry   │
//!            │ poll(2) over {waker, listener, idle conns}   │
//!            └──┬─────────────────────────────────▲─────────┘
//!               │ ready conns (jobs)              │ completions + wake
//!            ┌──▼──────────────────────────────────┴────────┐
//!            │ RLCHOL_NET_WORKERS worker threads:           │
//!            │ drain socket → assemble frames → decode →    │
//!            │ Service::submit → queue + flush responses    │
//!            └──────────────────────────────────────────────┘
//! ```
//!
//! * The **poller** (the [`serve_evented`] caller's thread) owns the
//!   listener and a slab of connections. It never reads or writes a
//!   socket; it only waits for readiness — via the [`polling`] shim's
//!   `poll(2)` — and moves ready connections to the worker queue. A
//!   [`polling::Waker`] interrupts the wait when a worker finishes.
//! * **Workers** are the only threads that touch connection sockets and
//!   the only threads that run requests. A connection in flight is out
//!   of the poll set, so one socket is never driven by two threads.
//! * **Per-connection buffers** assemble frames incrementally: a client
//!   may deliver a request in arbitrarily small pieces (or several
//!   pipelined requests in one burst) and the worker consumes exactly
//!   the complete frames, leaving the tail buffered.
//! * **Deadlines**: a connection that produces no bytes (and accepts no
//!   pending response bytes) for `conn_timeout` is closed by the
//!   poller and counted in [`NetStats::timed_out`]. A slow-loris client
//!   that trickles a partial frame and stalls therefore costs one
//!   registry slot for the timeout, not a handler thread forever.
//! * **Accept errors never kill the server**: transient failures
//!   (`ECONNABORTED`, `EMFILE`, …) are counted, logged, and retried
//!   with exponential backoff (1 ms doubling to 100 ms, reset on the
//!   next success).
//!
//! # Knobs (explicit [`ServeOptions`] field > env > default)
//!
//! | knob | env | default |
//! |------|-----|---------|
//! | worker threads | `RLCHOL_NET_WORKERS` | 4 |
//! | idle/read deadline | `RLCHOL_CONN_TIMEOUT_MS` | 30 000 ms |
//!
//! Cross-request batching is a [`Service`](crate::Service)-level knob
//! (`RLCHOL_BATCH_WINDOW_US`, see [`crate::service`]); the evented loop
//! simply delivers concurrent requests to enough workers for the
//! coalescing window to see them together.

use crate::protocol::{
    decode_request, encode_response, error_json, handle_request, MAX_FRAME_BYTES,
};
use crate::service::Service;
use crate::ServiceError;
use polling::{PollFd, Waker, POLLIN, POLLOUT};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default worker-pool width when neither config nor env specify one.
pub const DEFAULT_NET_WORKERS: usize = 4;
/// Default per-connection idle/read deadline.
pub const DEFAULT_CONN_TIMEOUT_MS: u64 = 30_000;

/// Ceiling of the accept-error backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);
/// Upper bound on one poll wait — the loop re-checks shutdown and
/// deadlines at least this often.
const POLL_CAP: Duration = Duration::from_millis(100);

fn env_positive(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
}

/// Evented-server construction knobs. `0` means "resolve from the
/// environment, then the default" (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Fixed worker-pool width (`0` → `RLCHOL_NET_WORKERS` → 4).
    pub workers: usize,
    /// Per-connection idle/read deadline in milliseconds
    /// (`0` → `RLCHOL_CONN_TIMEOUT_MS` → 30 000).
    pub conn_timeout_ms: u64,
    /// Test hook: accept-*attempt* ordinals (0-based) that fail with an
    /// injected transient error instead of accepting — exercises the
    /// backoff/retry path deterministically.
    pub accept_faults: Vec<u64>,
    /// Server-side counters, shared with the caller for observability
    /// and tests; allocated internally when `None`.
    pub stats: Option<Arc<NetStats>>,
}

impl ServeOptions {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            env_positive("RLCHOL_NET_WORKERS")
                .map(|v| v as usize)
                .unwrap_or(DEFAULT_NET_WORKERS)
        }
    }

    fn resolved_conn_timeout(&self) -> Duration {
        let ms = if self.conn_timeout_ms > 0 {
            self.conn_timeout_ms
        } else {
            env_positive("RLCHOL_CONN_TIMEOUT_MS").unwrap_or(DEFAULT_CONN_TIMEOUT_MS)
        };
        Duration::from_millis(ms)
    }
}

/// Event-loop counters — all monotonic, readable while the server runs.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Transient accept failures survived (injected or real).
    pub accept_errors: AtomicU64,
    /// Connections closed by the idle/read deadline.
    pub timed_out: AtomicU64,
    /// Connections fully closed (any reason, including timeouts).
    pub closed: AtomicU64,
    /// Complete request frames processed.
    pub frames: AtomicU64,
}

impl NetStats {
    fn bump(field: &AtomicU64) -> u64 {
        field.fetch_add(1, Ordering::Relaxed) + 1
    }
}

// ---------------------------------------------------------------------
// Connection state
// ---------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet consumed as complete frames.
    rdbuf: Vec<u8>,
    /// Encoded responses not yet accepted by the socket.
    wrbuf: Vec<u8>,
    wr_pos: usize,
    /// Last byte-level progress in either direction — the deadline
    /// clock.
    last_activity: Instant,
    /// Peer closed its write half; serve buffered requests, flush, then
    /// close.
    eof: bool,
    /// A framing violation was answered; close once the answer drains.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rdbuf: Vec::new(),
            wrbuf: Vec::new(),
            wr_pos: 0,
            last_activity: Instant::now(),
            eof: false,
            close_after_flush: false,
        }
    }

    fn has_pending_write(&self) -> bool {
        self.wr_pos < self.wrbuf.len()
    }
}

enum Slot {
    Empty,
    Idle(Conn),
    InWorker,
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

struct Job {
    slot: usize,
    conn: Conn,
}

struct Shared {
    service: Arc<Service>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    done: AtomicBool,
    /// `(slot, Some(conn))` to re-register, `(slot, None)` when the
    /// worker closed the connection.
    completions: Mutex<Vec<(usize, Option<Conn>)>>,
    waker: Waker,
    stats: Arc<NetStats>,
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.done.load(Ordering::SeqCst) {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap();
            }
        };
        let mut conn = job.conn;
        let keep = drive_conn(&mut conn, &shared.service, &shared.stats);
        shared
            .completions
            .lock()
            .unwrap()
            .push((job.slot, keep.then_some(conn)));
        shared.waker.wake();
    }
}

/// Flushes as much of the write buffer as the socket accepts right now.
/// `Err` means the connection is dead.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.has_pending_write() {
        match conn.stream.write(&conn.wrbuf[conn.wr_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.wr_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.wrbuf.clear();
    conn.wr_pos = 0;
    Ok(())
}

fn queue_response(conn: &mut Conn, json: &str, payload: &[f64]) {
    let body = encode_response(json, payload);
    conn.wrbuf
        .extend_from_slice(&(body.len() as u32).to_le_bytes());
    conn.wrbuf.extend_from_slice(&body);
}

enum FrameScan {
    /// Not enough buffered bytes yet.
    Need,
    /// Header announces a body over [`MAX_FRAME_BYTES`].
    TooBig(u32),
    /// A complete frame: total length including the 4-byte header.
    Complete(usize),
}

fn scan_frame(buf: &[u8]) -> FrameScan {
    if buf.len() < 4 {
        return FrameScan::Need;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes checked"));
    if len > MAX_FRAME_BYTES {
        return FrameScan::TooBig(len);
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        FrameScan::Need
    } else {
        FrameScan::Complete(total)
    }
}

/// One worker pass over a ready connection: flush, drain the socket,
/// serve every complete frame, flush again. Returns `false` when the
/// connection is finished (dead, EOF served out, or poisoned by a
/// framing violation with its answer drained).
fn drive_conn(conn: &mut Conn, service: &Service, stats: &NetStats) -> bool {
    if flush(conn).is_err() {
        return false;
    }
    if !conn.eof && !conn.close_after_flush {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rdbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
    // Serve every complete frame currently buffered. The buffer is
    // taken out of the connection so responses can be queued while the
    // frame bytes are borrowed; the unconsumed tail goes back after.
    let rdbuf = std::mem::take(&mut conn.rdbuf);
    let mut consumed = 0;
    while !conn.close_after_flush {
        match scan_frame(&rdbuf[consumed..]) {
            FrameScan::Need => break,
            FrameScan::TooBig(len) => {
                let e = ServiceError::Protocol(format!(
                    "frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"
                ));
                queue_response(conn, &error_json(&e), &[]);
                conn.close_after_flush = true;
            }
            FrameScan::Complete(total) => {
                NetStats::bump(&stats.frames);
                let body = &rdbuf[consumed + 4..consumed + total];
                match decode_request(body) {
                    Ok(wire) => {
                        let (json, payload) = handle_request(service, wire);
                        queue_response(conn, &json, &payload);
                    }
                    Err(e) => {
                        // Framing is broken — answer once, then close
                        // (same contract as the legacy loop).
                        queue_response(conn, &error_json(&e), &[]);
                        conn.close_after_flush = true;
                    }
                }
                consumed += total;
            }
        }
    }
    conn.rdbuf = rdbuf;
    if consumed > 0 {
        conn.rdbuf.drain(..consumed);
    }
    if flush(conn).is_err() {
        return false;
    }
    let drained = !conn.has_pending_write();
    if (conn.eof || conn.close_after_flush) && drained {
        return false;
    }
    true
}

// ---------------------------------------------------------------------
// Poller side
// ---------------------------------------------------------------------

fn alloc_slot(slots: &mut Vec<Slot>) -> usize {
    for (i, s) in slots.iter().enumerate() {
        if matches!(s, Slot::Empty) {
            return i;
        }
    }
    slots.push(Slot::Empty);
    slots.len() - 1
}

/// Runs the evented accept/dispatch loop until [`Service::shutdown`].
/// The calling thread becomes the poller; `workers` request threads are
/// spawned and joined internally.
pub fn serve_evented(
    listener: TcpListener,
    service: Arc<Service>,
    opts: ServeOptions,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let workers = opts.resolved_workers();
    let conn_timeout = opts.resolved_conn_timeout();
    let stats = opts
        .stats
        .clone()
        .unwrap_or_else(|| Arc::new(NetStats::default()));
    let shared = Arc::new(Shared {
        service: Arc::clone(&service),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        done: AtomicBool::new(false),
        completions: Mutex::new(Vec::new()),
        waker: Waker::new()?,
        stats: Arc::clone(&stats),
    });
    let worker_handles: Vec<_> = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rlchol-net-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn net worker")
        })
        .collect();

    let mut slots: Vec<Slot> = Vec::new();
    let mut in_worker = 0usize;
    let mut accept_attempts = 0u64;
    let mut accept_backoff = Duration::ZERO;
    let mut backoff_until: Option<Instant> = None;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_slots: Vec<usize> = Vec::new();

    loop {
        if shared.service.is_shutdown() && in_worker == 0 {
            break;
        }
        let now = Instant::now();
        if backoff_until.is_some_and(|t| now >= t) {
            backoff_until = None;
        }

        // Build this iteration's poll set: waker, listener (unless
        // backing off or shutting down), every idle connection.
        fds.clear();
        fd_slots.clear();
        fds.push(PollFd::new(shared.waker.read_fd(), POLLIN));
        let accepting = !shared.service.is_shutdown() && backoff_until.is_none();
        if accepting {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        }
        let conn_base = fds.len();
        let mut timeout = POLL_CAP;
        for (i, s) in slots.iter().enumerate() {
            if let Slot::Idle(c) = s {
                let mut events = 0i16;
                if !c.eof && !c.close_after_flush {
                    events |= POLLIN;
                }
                if c.has_pending_write() {
                    events |= POLLOUT;
                }
                fd_slots.push(i);
                fds.push(PollFd::new(c.stream.as_raw_fd(), events));
                let deadline = c.last_activity + conn_timeout;
                timeout = timeout.min(deadline.saturating_duration_since(now));
            }
        }
        if let Some(t) = backoff_until {
            timeout = timeout.min(t.saturating_duration_since(now));
        }
        polling::poll(&mut fds, Some(timeout))?;

        if fds[0].readable() {
            shared.waker.drain();
        }

        // Re-register (or retire) connections the workers finished.
        for (slot, conn) in shared.completions.lock().unwrap().drain(..) {
            in_worker -= 1;
            match conn {
                Some(c) => slots[slot] = Slot::Idle(c),
                None => {
                    slots[slot] = Slot::Empty;
                    NetStats::bump(&stats.closed);
                }
            }
        }

        // Accept every pending connection. A failed accept is always
        // transient from the server's point of view: count it, back
        // off, keep serving — one bad handshake (or a file-descriptor
        // ceiling) must not tear down every healthy connection.
        if accepting && fds[1].readable() {
            loop {
                let injected = opts.accept_faults.contains(&accept_attempts);
                accept_attempts += 1;
                let result = if injected {
                    Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected transient accept failure",
                    ))
                } else {
                    listener.accept()
                };
                match result {
                    Ok((stream, _peer)) => {
                        accept_backoff = Duration::ZERO;
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        NetStats::bump(&stats.accepted);
                        let slot = alloc_slot(&mut slots);
                        slots[slot] = Slot::Idle(Conn::new(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => {
                        let n = NetStats::bump(&stats.accept_errors);
                        if n == 1 || n.is_power_of_two() {
                            eprintln!("rlchol-serve: transient accept error #{n}: {e}");
                        }
                        accept_backoff = if accept_backoff.is_zero() {
                            Duration::from_millis(1)
                        } else {
                            (accept_backoff * 2).min(ACCEPT_BACKOFF_MAX)
                        };
                        backoff_until = Some(Instant::now() + accept_backoff);
                        break;
                    }
                }
            }
        }

        // Hand every ready connection to the workers.
        let mut dispatched = false;
        for (k, &slot) in fd_slots.iter().enumerate() {
            if fds[conn_base + k].ready() {
                if let Slot::Idle(conn) = std::mem::replace(&mut slots[slot], Slot::InWorker) {
                    shared.queue.lock().unwrap().push_back(Job { slot, conn });
                    in_worker += 1;
                    dispatched = true;
                } else {
                    unreachable!("only idle slots are polled");
                }
            }
        }
        if dispatched {
            shared.queue_cv.notify_all();
        }

        // Idle/read deadlines: a connection with no byte-level progress
        // for the timeout is dropped — slow-loris costs a slot, not a
        // thread.
        let now = Instant::now();
        for s in slots.iter_mut() {
            if let Slot::Idle(c) = s {
                if now.duration_since(c.last_activity) >= conn_timeout {
                    NetStats::bump(&stats.timed_out);
                    NetStats::bump(&stats.closed);
                    *s = Slot::Empty;
                }
            }
        }
    }

    // Shutdown: best-effort flush of any response bytes still queued on
    // idle connections (the shutdown ack itself was flushed by the
    // worker that served it), then stop the pool.
    for s in slots.iter_mut() {
        if let Slot::Idle(c) = s {
            let _ = flush(c);
        }
    }
    shared.done.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    for h in worker_handles {
        let _ = h.join();
    }
    Ok(())
}
