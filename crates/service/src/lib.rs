//! # rlchol-service — solver-as-a-service front end
//!
//! Long-running request-serving layer over the staged solver API of
//! `rlchol-core`: many clients submit factor/solve work for matrices
//! that mostly share a handful of sparsity patterns, and the service
//! amortizes the expensive symbolic analysis across all of them.
//!
//! Three pieces:
//!
//! * [`HandleCache`] — pattern fingerprint → `Arc<SymbolicCholesky>`
//!   with LRU eviction against a byte budget and single-flight miss
//!   coalescing ([`cache`]).
//! * [`Service`] — in-process submission API with admission control
//!   (bounded in-flight gate, typed [`ServiceError::Overloaded`]
//!   sheds), per-request deadlines threaded into the engine's
//!   `Deadline`/`CancelToken` machinery, and per-request metrics
//!   ([`service`]).
//! * [`protocol`] — a framed length-prefixed protocol over
//!   `std::net::TcpListener` plus a blocking [`Client`];
//!   `rlchol-serve` is the binary, `rlchol serve` the CLI alias.
//! * [`evented`] (Unix) — the readiness-polled server front end behind
//!   [`serve`]: non-blocking accept with transient-error backoff, a
//!   fixed worker pool (`RLCHOL_NET_WORKERS`), incremental frame
//!   assembly, and per-connection idle deadlines
//!   (`RLCHOL_CONN_TIMEOUT_MS`).
//!
//! Requests whose pattern fingerprints collide within
//! `RLCHOL_BATCH_WINDOW_US` can additionally coalesce into one batched
//! numeric factorization — see the "Cross-request batching" notes in
//! [`service`].
//!
//! ## Quick start (in-process)
//!
//! ```
//! use rlchol_matgen::{grid3d, Stencil};
//! use rlchol_service::{Request, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig::default());
//! let a = grid3d(3, 3, 3, Stencil::Star7, 1, 7);
//! let b = vec![1.0; a.n()];
//!
//! // First request analyzes (cache miss)…
//! let r1 = service.submit(Request::solve(a.clone(), b.clone())).unwrap();
//! // …repeat traffic on the same pattern hits the cache.
//! let r2 = service.submit(Request::solve(a, b)).unwrap();
//! assert_eq!(service.cache().stats().hits, 1);
//! # let _ = (r1, r2);
//! ```
//!
//! ## Quick start (over TCP)
//!
//! ```no_run
//! use std::sync::Arc;
//! use rlchol_service::{protocol, Service, ServiceConfig};
//!
//! let service = Arc::new(Service::new(ServiceConfig::default()));
//! let (addr, server) = protocol::spawn_server("127.0.0.1:0", service).unwrap();
//! let mut client = protocol::Client::connect(addr).unwrap();
//! // … client.analyze / factor / solve / batch / stats / shutdown …
//! # let _ = server;
//! ```

pub mod cache;
pub mod error;
#[cfg(unix)]
pub mod evented;
pub mod fingerprint;
pub mod protocol;
pub mod service;

pub use cache::{CacheOutcome, CacheStats, HandleCache};
pub use error::ServiceError;
#[cfg(unix)]
pub use evented::{serve_evented, NetStats, ServeOptions};
pub use fingerprint::PatternFingerprint;
#[cfg(unix)]
pub use protocol::spawn_server_with;
pub use protocol::{serve, serve_blocking, spawn_server, Client, ClientOptions, WireResponse};
pub use service::{
    stats_json, Request, RequestMetrics, RequestOp, Response, ResponsePayload, Service,
    ServiceConfig, ServiceStats, DEFAULT_CACHE_BYTES,
};

/// Binds `addr` and serves requests until a client sends `shutdown`.
/// The convenience entry point shared by `rlchol-serve` and the CLI's
/// `serve` subcommand.
pub fn run_server(addr: &str, cfg: ServiceConfig) -> std::io::Result<()> {
    let service = std::sync::Arc::new(Service::new(cfg));
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!(
        "rlchol-serve listening on {} (queue depth {}, cache budget {} MiB)",
        listener.local_addr()?,
        service.queue_depth(),
        service.cache().budget_bytes() >> 20,
    );
    protocol::serve(listener, service)
}
