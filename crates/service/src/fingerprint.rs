//! Pattern fingerprinting — the cache key for symbolic handles.
//!
//! Two requests share a [`SymbolicCholesky`](rlchol_core::SymbolicCholesky)
//! handle exactly when they have the same sparsity pattern (dimension,
//! column pointers, row indices — values are irrelevant to analysis) and
//! the same analysis-shaping options (engine method and fill-reducing
//! ordering). The fingerprint stores `n` and `nnz` verbatim plus a
//! 128-bit pattern digest (two FNV-1a-64 streams with independent
//! seeds), so accidental collisions need simultaneous agreement of both
//! hashes *and* the explicit fields. Even then a collision is contained:
//! `factor_with` re-walks the pattern and rejects a foreign matrix with
//! a typed `PatternMismatch` — a wrong cache hit can never silently
//! corrupt numerics.

use rlchol_core::solver::SolverOptions;
use rlchol_core::Method;
use rlchol_ordering::OrderingMethod;
use rlchol_sparse::SymCsc;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const SEED_A: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
const SEED_B: u64 = 0x9e37_79b9_7f4a_7c15; // golden-ratio increment

/// Identity of one (pattern, method, ordering) analysis product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternFingerprint {
    /// Matrix dimension.
    pub n: u64,
    /// Stored lower-triangle nonzeros.
    pub nnz: u64,
    /// Engine index into [`Method::ALL`].
    method: u8,
    /// Ordering tag.
    ordering: u8,
    /// 128-bit pattern digest.
    hash: [u64; 2],
}

fn fnv1a(seed: u64, words: impl Iterator<Item = u64>) -> u64 {
    let mut h = seed;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

fn ordering_tag(o: OrderingMethod) -> u8 {
    match o {
        OrderingMethod::Natural => 0,
        OrderingMethod::MinDegree => 1,
        OrderingMethod::Rcm => 2,
        OrderingMethod::NestedDissection => 3,
    }
}

impl PatternFingerprint {
    /// Fingerprints `a`'s pattern under the analysis-shaping options
    /// (engine `method`, fill-reducing `ordering`).
    pub fn of(a: &SymCsc, method: Method, ordering: OrderingMethod) -> Self {
        let method_idx = Method::ALL
            .iter()
            .position(|m| *m == method)
            .expect("Method::ALL enumerates every engine") as u8;
        let words = || {
            std::iter::once(a.n() as u64)
                .chain(a.colptr().iter().map(|&p| p as u64))
                .chain(a.rowind().iter().map(|&r| r as u64))
        };
        PatternFingerprint {
            n: a.n() as u64,
            nnz: a.rowind().len() as u64,
            method: method_idx,
            ordering: ordering_tag(ordering),
            hash: [fnv1a(SEED_A, words()), fnv1a(SEED_B, words())],
        }
    }

    /// Fingerprint under a full option set (the fields that shape
    /// analysis: method + ordering).
    pub fn of_request(a: &SymCsc, opts: &SolverOptions) -> Self {
        Self::of(a, opts.method, opts.ordering)
    }

    /// Short hex digest for logs and metrics.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hash[0], self.hash[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};

    #[test]
    fn same_pattern_same_key_values_ignored() {
        let a = grid3d(3, 3, 3, Stencil::Star7, 1, 7);
        let b = grid3d(3, 3, 3, Stencil::Star7, 1, 99); // same pattern, new values
        let ka = PatternFingerprint::of(&a, Method::RlbCpu, OrderingMethod::MinDegree);
        let kb = PatternFingerprint::of(&b, Method::RlbCpu, OrderingMethod::MinDegree);
        assert_eq!(ka, kb, "values must not affect the fingerprint");
        assert_eq!(ka.hex().len(), 32);
    }

    #[test]
    fn pattern_method_and_ordering_all_discriminate() {
        let a = grid3d(3, 3, 3, Stencil::Star7, 1, 7);
        let c = laplace2d(5, 7);
        let base = PatternFingerprint::of(&a, Method::RlbCpu, OrderingMethod::MinDegree);
        assert_ne!(
            base,
            PatternFingerprint::of(&c, Method::RlbCpu, OrderingMethod::MinDegree),
            "different patterns"
        );
        assert_ne!(
            base,
            PatternFingerprint::of(&a, Method::RlCpu, OrderingMethod::MinDegree),
            "different engine"
        );
        assert_ne!(
            base,
            PatternFingerprint::of(&a, Method::RlbCpu, OrderingMethod::Natural),
            "different ordering"
        );
    }
}
