//! Framed wire protocol over `std::net::TcpStream` — no external
//! crates. [`serve`] runs the evented front end ([`crate::evented`]):
//! a readiness-polled accept loop and a fixed worker pool multiplexing
//! every connection, with per-connection deadlines. The seed's
//! thread-per-connection loop survives as [`serve_blocking`] (the
//! non-Unix fallback, or `RLCHOL_NET_LEGACY=1`), hardened against
//! transient accept errors and handler leaks.
//!
//! # Framing
//!
//! Every message is a little-endian `u32` body length followed by the
//! body. Request bodies:
//!
//! ```text
//! u8  op          1=analyze 2=factor 3=solve 4=batch 5=stats 6=shutdown
//! --- stats/shutdown bodies end here ---
//! u8  method      index into Method::ALL, 0xFF = service default
//! u32 deadline_ms 0 = none (service default applies)
//! u64 n, u64 nnz
//! (n+1) × u64     column pointers
//! nnz × u64       row indices
//! nnz × f64       values
//! solve: n × f64  right-hand side
//! batch: u32 k, then k × (nnz × f64) value sets
//! ```
//!
//! Response bodies: `u32 json_len`, the JSON report (UTF-8), `u64
//! payload_len`, then `payload_len × f64` (the solution vector for
//! `solve`, empty otherwise). The JSON always carries `"ok"`; failures
//! add `"kind"` (the [`ServiceError::kind`] tag) and `"error"`.
//!
//! Framing violations (oversized frames, truncated bodies, inconsistent
//! counts) poison the stream and close the connection; *semantic*
//! errors (bad matrix, overload, deadline) are answered in-band and the
//! connection keeps serving.

use crate::error::ServiceError;
use crate::service::{stats_json, Request, RequestOp, Response, ResponsePayload, Service};
use rlchol_core::json::{array, escape, JsonObj};
use rlchol_core::Method;
use rlchol_sparse::SymCsc;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Hard ceiling on one frame body — rejects absurd lengths before any
/// allocation happens.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

const OP_ANALYZE: u8 = 1;
const OP_FACTOR: u8 = 2;
const OP_SOLVE: u8 = 3;
const OP_BATCH: u8 = 4;
const OP_STATS: u8 = 5;
const OP_SHUTDOWN: u8 = 6;

// ---------------------------------------------------------------------
// Byte-level helpers
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ServiceError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ServiceError::Protocol(format!(
                "truncated frame: wanted {len} bytes at offset {}, body has {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, ServiceError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServiceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServiceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize_vec(&mut self, count: usize) -> Result<Vec<usize>, ServiceError> {
        let bytes = self.take(count.checked_mul(8).ok_or_else(overflow)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect())
    }

    fn f64_vec(&mut self, count: usize) -> Result<Vec<f64>, ServiceError> {
        let bytes = self.take(count.checked_mul(8).ok_or_else(overflow)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn overflow() -> ServiceError {
    ServiceError::Protocol("frame length overflow".into())
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Request decode (server) / encode (client)
// ---------------------------------------------------------------------

pub(crate) enum WireRequest {
    Op(Request),
    Stats,
    Shutdown,
}

pub(crate) fn decode_request(body: &[u8]) -> Result<WireRequest, ServiceError> {
    let mut c = Cursor::new(body);
    let op = c.u8()?;
    match op {
        OP_STATS => return Ok(WireRequest::Stats),
        OP_SHUTDOWN => return Ok(WireRequest::Shutdown),
        OP_ANALYZE | OP_FACTOR | OP_SOLVE | OP_BATCH => {}
        other => {
            return Err(ServiceError::Protocol(format!("unknown op byte {other}")));
        }
    }
    let method_idx = c.u8()?;
    let method = match method_idx {
        0xFF => None,
        i if (i as usize) < Method::ALL.len() => Some(Method::ALL[i as usize]),
        i => {
            return Err(ServiceError::Protocol(format!(
                "method index {i} out of range (engines: {})",
                Method::ALL.len()
            )));
        }
    };
    let deadline_ms = c.u32()?;
    let n = c.u64()? as usize;
    let nnz = c.u64()? as usize;
    let colptr = c.usize_vec(n + 1)?;
    let rowind = c.usize_vec(nnz)?;
    let values = c.f64_vec(nnz)?;
    let matrix = SymCsc::from_parts(n, colptr, rowind, values)
        .map_err(|e| ServiceError::Protocol(format!("invalid matrix: {e}")))?;
    let op = match op {
        OP_ANALYZE => RequestOp::Analyze,
        OP_FACTOR => RequestOp::Factor,
        OP_SOLVE => RequestOp::Solve(c.f64_vec(n)?),
        OP_BATCH => {
            let k = c.u32()? as usize;
            let mut sets = Vec::with_capacity(k);
            for _ in 0..k {
                sets.push(c.f64_vec(nnz)?);
            }
            RequestOp::Batch(sets)
        }
        _ => unreachable!(),
    };
    if c.pos != body.len() {
        return Err(ServiceError::Protocol(format!(
            "{} trailing bytes after request body",
            body.len() - c.pos
        )));
    }
    Ok(WireRequest::Op(Request {
        matrix,
        op,
        method,
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms as u64)),
    }))
}

fn encode_request(
    op: u8,
    matrix: &SymCsc,
    method: Option<Method>,
    deadline_ms: u32,
    rhs: &[f64],
    sets: &[Vec<f64>],
) -> Vec<u8> {
    let mut body = Vec::new();
    body.push(op);
    let method_idx = method
        .map(|m| Method::ALL.iter().position(|x| *x == m).unwrap() as u8)
        .unwrap_or(0xFF);
    body.push(method_idx);
    put_u32(&mut body, deadline_ms);
    put_u64(&mut body, matrix.n() as u64);
    put_u64(&mut body, matrix.nnz_lower() as u64);
    for &p in matrix.colptr() {
        put_u64(&mut body, p as u64);
    }
    for &r in matrix.rowind() {
        put_u64(&mut body, r as u64);
    }
    put_f64s(&mut body, matrix.values());
    if op == OP_SOLVE {
        put_f64s(&mut body, rhs);
    }
    if op == OP_BATCH {
        put_u32(&mut body, sets.len() as u32);
        for set in sets {
            put_f64s(&mut body, set);
        }
    }
    body
}

// ---------------------------------------------------------------------
// Response encode (server) / decode (client)
// ---------------------------------------------------------------------

fn response_json(op_name: &str, resp: &Response) -> (String, Vec<f64>) {
    let m = &resp.metrics;
    let cache = match m.cache {
        crate::cache::CacheOutcome::Hit => "hit",
        crate::cache::CacheOutcome::Miss => "miss",
        crate::cache::CacheOutcome::CoalescedMiss => "coalesced",
    };
    let obj = JsonObj::new()
        .bool("ok", true)
        .str("op", op_name)
        .str("cache", cache)
        .f64("queue_wait_ms", m.queue_wait.as_secs_f64() * 1e3)
        .f64("analyze_ms", m.analyze_wall.as_secs_f64() * 1e3)
        .f64("factor_ms", m.factor_wall.as_secs_f64() * 1e3)
        .f64("solve_ms", m.solve_wall.as_secs_f64() * 1e3)
        .u64("recovery_events", m.recovery_events as u64)
        .u64("batch_size", m.batch_size as u64)
        .f64("coalesce_wait_ms", m.coalesce_wait.as_secs_f64() * 1e3);
    match &resp.payload {
        ResponsePayload::Analyzed {
            n,
            factor_nnz,
            supernodes,
            memory_bytes,
        } => (
            obj.u64("n", *n as u64)
                .u64("factor_nnz", *factor_nnz)
                .u64("supernodes", *supernodes as u64)
                .u64("memory_bytes", *memory_bytes)
                .finish(),
            Vec::new(),
        ),
        ResponsePayload::Factored {
            factor_nnz,
            info_json,
        } => (
            obj.u64("factor_nnz", *factor_nnz)
                .raw("info", info_json)
                .finish(),
            Vec::new(),
        ),
        ResponsePayload::Solved { x, info_json } => (
            obj.u64("solution_len", x.len() as u64)
                .raw("info", info_json)
                .finish(),
            x.clone(),
        ),
        ResponsePayload::Batched { outcomes } => {
            let oks = array(
                outcomes
                    .iter()
                    .map(|r| if r.is_ok() { "true" } else { "false" }.to_string()),
            );
            let errs = array(outcomes.iter().filter_map(|r| {
                r.as_ref()
                    .err()
                    .map(|e| format!("\"{}\"", escape(&e.to_string())))
            }));
            (
                obj.raw("batch", &oks).raw("batch_errors", &errs).finish(),
                Vec::new(),
            )
        }
    }
}

pub(crate) fn error_json(e: &ServiceError) -> String {
    JsonObj::new()
        .bool("ok", false)
        .str("kind", e.kind())
        .str("error", &e.to_string())
        .finish()
}

pub(crate) fn encode_response(json: &str, payload: &[f64]) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + json.len() + 8 + payload.len() * 8);
    put_u32(&mut body, json.len() as u32);
    body.extend_from_slice(json.as_bytes());
    put_u64(&mut body, payload.len() as u64);
    put_f64s(&mut body, payload);
    body
}

/// One decoded response frame.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// The JSON report.
    pub json: String,
    /// The numeric payload (solution vector for `solve`).
    pub payload: Vec<f64>,
}

impl WireResponse {
    fn decode(body: &[u8]) -> Result<Self, ServiceError> {
        let mut c = Cursor::new(body);
        let json_len = c.u32()? as usize;
        let json = String::from_utf8(c.take(json_len)?.to_vec())
            .map_err(|_| ServiceError::Protocol("response JSON is not UTF-8".into()))?;
        let payload_len = c.u64()? as usize;
        let payload = c.f64_vec(payload_len)?;
        Ok(WireResponse { json, payload })
    }

    /// Whether the request succeeded.
    pub fn ok(&self) -> bool {
        self.bool_field("ok").unwrap_or(false)
    }

    /// Scans the top-level JSON for `"key":"string"`.
    pub fn str_field(&self, key: &str) -> Option<String> {
        let rest = self.raw_field(key)?;
        let rest = rest.strip_prefix('"')?;
        let mut out = String::new();
        let mut chars = rest.chars();
        while let Some(ch) = chars.next() {
            match ch {
                '"' => return Some(out),
                '\\' => match chars.next()? {
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    other => out.push(other),
                },
                other => out.push(other),
            }
        }
        None
    }

    /// Scans the top-level JSON for a numeric field.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        let rest = self.raw_field(key)?;
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// Scans the top-level JSON for a boolean field.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        let rest = self.raw_field(key)?;
        if rest.starts_with("true") {
            Some(true)
        } else if rest.starts_with("false") {
            Some(false)
        } else {
            None
        }
    }

    fn raw_field(&self, key: &str) -> Option<&str> {
        // Top-level keys in our schema are unique across nesting levels
        // for everything callers scan for, so a plain search suffices.
        let needle = format!("\"{key}\":");
        let at = self.json.find(&needle)?;
        Some(&self.json[at + needle.len()..])
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

pub(crate) fn handle_request(service: &Service, wire: WireRequest) -> (String, Vec<f64>) {
    match wire {
        WireRequest::Stats => (
            {
                let stats = stats_json(&service.stats());
                JsonObj::new()
                    .bool("ok", true)
                    .str("op", "stats")
                    .raw("stats", &stats)
                    .finish()
            },
            Vec::new(),
        ),
        WireRequest::Shutdown => {
            service.shutdown();
            (
                JsonObj::new()
                    .bool("ok", true)
                    .str("op", "shutdown")
                    .finish(),
                Vec::new(),
            )
        }
        WireRequest::Op(req) => {
            let op_name = match req.op {
                RequestOp::Analyze => "analyze",
                RequestOp::Factor => "factor",
                RequestOp::Solve(_) => "solve",
                RequestOp::Batch(_) => "batch",
            };
            match service.submit(req) {
                Ok(resp) => response_json(op_name, &resp),
                Err(e) => (error_json(&e), Vec::new()),
            }
        }
    }
}

fn handle_conn(mut stream: TcpStream, service: &Service) -> io::Result<()> {
    while let Some(body) = read_frame(&mut stream)? {
        let (json, payload) = match decode_request(&body) {
            Ok(wire) => handle_request(service, wire),
            Err(e) => {
                // Framing is broken — answer once, then close.
                let frame = encode_response(&error_json(&e), &[]);
                write_frame(&mut stream, &frame)?;
                return Ok(());
            }
        };
        write_frame(&mut stream, &encode_response(&json, &payload))?;
        if service.is_shutdown() {
            break;
        }
    }
    Ok(())
}

/// Whether an accept error is transient — the listener itself is fine
/// and a retry will make progress once in-flight connections settle.
pub(crate) fn accept_error_is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    ) || {
        // EMFILE/ENFILE/ENOBUFS/ENOMEM have no stable ErrorKind mapping;
        // match the raw errno values (resource exhaustion clears up when
        // connections close).
        matches!(e.raw_os_error(), Some(23 | 24 | 105 | 12))
    }
}

/// Serves `listener` until [`Service::shutdown`].
///
/// On Unix this runs the evented front end ([`crate::evented::serve_evented`]
/// with default [`crate::evented::ServeOptions`]): non-blocking accept, a
/// fixed worker pool (`RLCHOL_NET_WORKERS`), per-connection idle deadlines
/// (`RLCHOL_CONN_TIMEOUT_MS`). Set `RLCHOL_NET_LEGACY=1` to fall back to
/// the thread-per-connection loop ([`serve_blocking`]), which is also the
/// non-Unix default.
pub fn serve(listener: TcpListener, service: Arc<Service>) -> io::Result<()> {
    #[cfg(unix)]
    {
        let legacy = std::env::var("RLCHOL_NET_LEGACY")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if !legacy {
            return crate::evented::serve_evented(
                listener,
                service,
                crate::evented::ServeOptions::default(),
            );
        }
    }
    serve_blocking(listener, service)
}

/// Thread-per-connection accept loop, until [`Service::shutdown`] (a
/// `shutdown` op wakes the accept call by self-connecting). Transient
/// accept errors (aborted handshakes, fd exhaustion) are retried with
/// exponential backoff instead of killing the server; finished handler
/// threads are reaped each iteration so a long-lived server does not
/// accumulate one [`JoinHandle`] per connection it ever served.
pub fn serve_blocking(listener: TcpListener, service: Arc<Service>) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = Duration::from_millis(1);
    let mut accept_errors: u64 = 0;
    loop {
        if service.is_shutdown() {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                stream
            }
            Err(e) if accept_error_is_transient(&e) => {
                accept_errors += 1;
                if accept_errors.is_power_of_two() {
                    eprintln!("rlchol-serve: transient accept error (#{accept_errors}): {e}");
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
                continue;
            }
            Err(e) => return Err(e),
        };
        if service.is_shutdown() {
            break;
        }
        let svc = Arc::clone(&service);
        handlers.push(std::thread::spawn(move || {
            let _ = handle_conn(stream, &svc);
            // Wake the accept loop so it observes shutdown promptly.
            if svc.is_shutdown() {
                let _ = TcpStream::connect(addr);
            }
        }));
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and runs [`serve`] on a new
/// thread; returns the bound address and the server's join handle.
pub fn spawn_server(
    addr: &str,
    service: Arc<Service>,
) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || serve(listener, service));
    Ok((local, handle))
}

/// Like [`spawn_server`], but always evented and with explicit
/// [`crate::evented::ServeOptions`] (worker count, connection timeout,
/// fault injection, shared [`crate::evented::NetStats`]).
#[cfg(unix)]
pub fn spawn_server_with(
    addr: &str,
    service: Arc<Service>,
    opts: crate::evented::ServeOptions,
) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || crate::evented::serve_evented(listener, service, opts));
    Ok((local, handle))
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Connection knobs for [`Client::connect_with`].
#[derive(Debug, Clone, Default)]
pub struct ClientOptions {
    /// Abort [`Client::connect_with`] if the TCP handshake takes longer
    /// than this. `None` blocks indefinitely (OS default).
    pub connect_timeout: Option<Duration>,
    /// Fail any read (response wait) that stalls longer than this with
    /// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`] instead
    /// of hanging on a wedged server. `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
}

/// Blocking client for the framed protocol. One request in flight per
/// client; clone connections for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server with no timeouts (blocking reads).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit connect/read timeouts.
    pub fn connect_with(addr: SocketAddr, opts: ClientOptions) -> io::Result<Self> {
        let stream = match opts.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(opts.read_timeout)?;
        Ok(Client { stream })
    }

    /// Changes the read timeout on the live connection.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn roundtrip(&mut self, body: &[u8]) -> io::Result<WireResponse> {
        write_frame(&mut self.stream, body)?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        WireResponse::decode(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Symbolic analysis of `matrix` (warms the server cache).
    pub fn analyze(&mut self, matrix: &SymCsc) -> io::Result<WireResponse> {
        self.roundtrip(&encode_request(OP_ANALYZE, matrix, None, 0, &[], &[]))
    }

    /// Numeric factorization.
    pub fn factor(
        &mut self,
        matrix: &SymCsc,
        method: Option<Method>,
        deadline_ms: u32,
    ) -> io::Result<WireResponse> {
        self.roundtrip(&encode_request(
            OP_FACTOR,
            matrix,
            method,
            deadline_ms,
            &[],
            &[],
        ))
    }

    /// Factor + solve; the solution arrives in
    /// [`WireResponse::payload`].
    pub fn solve(
        &mut self,
        matrix: &SymCsc,
        rhs: &[f64],
        method: Option<Method>,
        deadline_ms: u32,
    ) -> io::Result<WireResponse> {
        self.roundtrip(&encode_request(
            OP_SOLVE,
            matrix,
            method,
            deadline_ms,
            rhs,
            &[],
        ))
    }

    /// Batched refactorization of `value_sets` over one pattern.
    pub fn batch(
        &mut self,
        matrix: &SymCsc,
        value_sets: &[Vec<f64>],
        method: Option<Method>,
        deadline_ms: u32,
    ) -> io::Result<WireResponse> {
        self.roundtrip(&encode_request(
            OP_BATCH,
            matrix,
            method,
            deadline_ms,
            &[],
            value_sets,
        ))
    }

    /// Server counters as JSON.
    pub fn stats(&mut self) -> io::Result<WireResponse> {
        self.roundtrip(&[OP_STATS])
    }

    /// Asks the server to stop accepting work.
    pub fn shutdown(&mut self) -> io::Result<WireResponse> {
        self.roundtrip(&[OP_SHUTDOWN])
    }
}
