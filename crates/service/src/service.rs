//! The in-process service: admission control, handle cache, and request
//! dispatch onto the staged-solver API.
//!
//! [`Service::submit`] is the whole contract: it never queues
//! unboundedly (the admission gate sheds with a typed
//! [`ServiceError::Overloaded`] once `queue_depth` requests are in
//! flight), never runs past a request deadline silently (the remaining
//! budget is threaded into the engine's `Deadline` machinery), and
//! reports per-request [`RequestMetrics`] alongside every payload.
//!
//! # Cross-request batching
//!
//! Real service traffic is many small same-pattern systems (MPC /
//! time-stepping clients re-factoring one structure with fresh values).
//! With a batch window configured, deadline-free factor and solve
//! requests whose pattern fingerprints match and that arrive within
//! `batch_window_us` of each other are **coalesced into one
//! [`SymbolicCholesky::batch_factor_ctl`] fan-out** across the handle's
//! workspace lanes: the first request in becomes the group leader,
//! collects joiners for the window, then factors every member's values
//! in one batch call. Results are bit-identical to individual
//! submission (the batch runs the same per-matrix engine under the same
//! options), and every member's [`RequestMetrics`] records the realized
//! [`batch_size`](RequestMetrics::batch_size) and
//! [`coalesce_wait`](RequestMetrics::coalesce_wait). Requests carrying
//! an explicit deadline (or running under a service default deadline)
//! bypass the window — a latency budget is a promise not to sit in a
//! coalescing buffer.
//!
//! # Configuration precedence
//!
//! Explicit [`ServiceConfig`] field > `RLCHOL_*` environment variable >
//! built-in default, resolved **once** in [`Service::new`]:
//!
//! | knob | explicit | env | default |
//! |------|----------|-----|---------|
//! | cache budget | `cache_bytes > 0` | `RLCHOL_CACHE_BYTES` | 256 MiB |
//! | admission depth | `queue_depth > 0` | `RLCHOL_QUEUE_DEPTH` | 2 × factor lanes |
//! | batch window | `batch_window_us > 0` | `RLCHOL_BATCH_WINDOW_US` | 0 (off) |
//!
//! (factor lanes themselves resolve `options.factor_lanes` >
//! `RLCHOL_FACTOR_LANES` > pool width, mirroring the staged API.)

use crate::cache::{CacheOutcome, CacheStats, HandleCache};
use crate::error::ServiceError;
use crate::fingerprint::PatternFingerprint;
use rlchol_core::json::{factor_info_json, JsonObj};
use rlchol_core::solver::SolverOptions;
use rlchol_core::{
    CancelToken, Deadline, FactorError, Factorization, Method, SolveWorkspace, SymbolicCholesky,
};
use rlchol_sparse::SymCsc;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default cache budget when neither config nor env specify one.
pub const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

fn env_positive(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
}

/// Resolved factor-lane count for sizing the admission gate — the same
/// precedence the staged handle applies (explicit > `RLCHOL_FACTOR_LANES`
/// > pool width).
fn resolved_lanes(opts: &SolverOptions) -> usize {
    if opts.factor_lanes > 0 {
        opts.factor_lanes
    } else {
        env_positive("RLCHOL_FACTOR_LANES")
            .map(|v| v as usize)
            .unwrap_or_else(rlchol_dense::pool::default_threads)
    }
}

/// Service construction knobs. `0` / `None` means "resolve from the
/// environment, then the default" (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Solver options shared by every request (a request may override
    /// the engine method).
    pub options: SolverOptions,
    /// Symbolic-handle cache budget in bytes (`0` → env → 256 MiB).
    pub cache_bytes: u64,
    /// Admission limit: max requests in flight (`0` → env → 2 × lanes).
    pub queue_depth: usize,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline: Option<Duration>,
    /// Cross-request batching window in microseconds (`0` → env → off):
    /// deadline-free factor/solve requests on one pattern arriving
    /// within this window are factored in a single
    /// [`SymbolicCholesky::batch_factor_ctl`] fan-out.
    pub batch_window_us: u64,
}

/// What one request asks for.
#[derive(Debug, Clone)]
pub enum RequestOp {
    /// Symbolic analysis only — warms the cache, reports sizes.
    Analyze,
    /// Numeric factorization; the factor is recycled after reporting.
    Factor,
    /// Factor + triangular solve for one right-hand side.
    Solve(Vec<f64>),
    /// Factor many value sets of the same pattern across the lanes.
    Batch(Vec<Vec<f64>>),
}

/// One service request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The matrix (pattern + values, lower triangle).
    pub matrix: SymCsc,
    /// The operation.
    pub op: RequestOp,
    /// Engine override; `None` uses the service's configured method.
    pub method: Option<Method>,
    /// Wall-clock budget; `None` uses the service default (if any).
    pub deadline: Option<Duration>,
}

impl Request {
    /// An analyze request with service-default method and deadline.
    pub fn analyze(matrix: SymCsc) -> Self {
        Request {
            matrix,
            op: RequestOp::Analyze,
            method: None,
            deadline: None,
        }
    }

    /// A factor request.
    pub fn factor(matrix: SymCsc) -> Self {
        Request {
            op: RequestOp::Factor,
            ..Request::analyze(matrix)
        }
    }

    /// A factor-and-solve request.
    pub fn solve(matrix: SymCsc, rhs: Vec<f64>) -> Self {
        Request {
            op: RequestOp::Solve(rhs),
            ..Request::analyze(matrix)
        }
    }

    /// A batched refactorization request.
    pub fn batch(matrix: SymCsc, value_sets: Vec<Vec<f64>>) -> Self {
        Request {
            op: RequestOp::Batch(value_sets),
            ..Request::analyze(matrix)
        }
    }
}

/// Timings and provenance for one completed request.
#[derive(Debug, Clone, Copy)]
pub struct RequestMetrics {
    /// Time from submit to the start of numeric work, excluding any
    /// analysis this request ran itself (admission + coalesce wait).
    pub queue_wait: Duration,
    /// How the handle lookup resolved.
    pub cache: CacheOutcome,
    /// Symbolic-analysis wall time (zero on hits and coalesced misses).
    pub analyze_wall: Duration,
    /// Numeric factorization wall time (zero for `Analyze`).
    pub factor_wall: Duration,
    /// Triangular-solve wall time (zero unless `Solve`).
    pub solve_wall: Duration,
    /// Recovery events (retries/fallbacks) the engine logged.
    pub recovery_events: usize,
    /// Members in the coalesced factor fan-out this request rode
    /// (1 = it ran alone; >1 = cross-request batching kicked in).
    pub batch_size: usize,
    /// Time spent in the coalescing buffer before the batch launched
    /// (zero when batching is off or the request was ineligible).
    pub coalesce_wait: Duration,
    /// Per-stage breakdown of the analysis this request ran itself
    /// (`None` on hits and coalesced misses — those paid no analysis).
    /// Same schema as the CLI's `analyze` report, so a service operator
    /// can see *which* symbolic stage a cache-miss spike is spending its
    /// wall in and whether `RLCHOL_ANALYZE_THREADS` is taking effect.
    pub analyze_stages: Option<rlchol_core::AnalyzeBreakdown>,
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub enum ResponsePayload {
    /// Sizes of the analyzed pattern.
    Analyzed {
        /// Matrix dimension.
        n: usize,
        /// Factor nonzeros (lower triangle).
        factor_nnz: u64,
        /// Supernodes after amalgamation.
        supernodes: usize,
        /// Resident bytes the handle is charged in the cache.
        memory_bytes: u64,
    },
    /// Factorization report (the factor itself was recycled).
    Factored {
        /// Factor nonzeros.
        factor_nnz: u64,
        /// [`factor_info_json`] report.
        info_json: String,
    },
    /// Solution vector plus the factorization report.
    Solved {
        /// `x` solving `A x = b`, original ordering.
        x: Vec<f64>,
        /// [`factor_info_json`] report.
        info_json: String,
    },
    /// Per-slot outcomes of a batched refactorization.
    Batched {
        /// `Ok(())` per factored value set, typed error otherwise.
        outcomes: Vec<Result<(), FactorError>>,
    },
}

/// Payload + metrics for one completed request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The operation's result.
    pub payload: ResponsePayload,
    /// Per-request timings.
    pub metrics: RequestMetrics,
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests submitted (including sheds).
    pub submitted: u64,
    /// Requests that returned a payload.
    pub completed: u64,
    /// Requests shed by the admission gate.
    pub shed_overload: u64,
    /// Requests shed by deadline expiry (before or during work).
    pub shed_deadline: u64,
    /// Requests that failed with a non-shed error.
    pub failed: u64,
    /// Requests currently inside the admission gate.
    pub in_flight: usize,
    /// The admission limit.
    pub queue_depth: usize,
    /// Coalesced factor fan-outs executed with ≥ 2 members.
    pub coalesced_batches: u64,
    /// Requests that rode those fan-outs (sum of their batch sizes).
    pub coalesced_requests: u64,
    /// Cache counters.
    pub cache: CacheStats,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    shed_overload: u64,
    shed_deadline: u64,
    failed: u64,
    coalesced_batches: u64,
    coalesced_requests: u64,
}

/// The solver service. Cheap to share (`Arc<Service>`); every method
/// takes `&self` and is safe to call from many threads.
pub struct Service {
    options: SolverOptions,
    queue_depth: usize,
    default_deadline: Option<Duration>,
    batch_window: Option<Duration>,
    cache: HandleCache,
    coalescer: Coalescer,
    in_flight: Mutex<usize>,
    counters: Mutex<Counters>,
    cancel: CancelToken,
    shutdown: AtomicBool,
}

// ---------------------------------------------------------------------
// Cross-request factor coalescing
// ---------------------------------------------------------------------

/// Open coalescing groups, keyed by pattern fingerprint. A group exists
/// only while its leader is collecting joiners; the leader removes it
/// from the map (and closes it) before launching the batch, so a
/// request can never join a batch that already launched.
#[derive(Default)]
struct Coalescer {
    groups: Mutex<HashMap<PatternFingerprint, Arc<Group>>>,
}

#[derive(Default)]
struct Group {
    state: Mutex<GroupState>,
    cv: Condvar,
}

#[derive(Default)]
struct GroupState {
    /// Set (under the map lock) when the leader stops accepting
    /// joiners; a would-be joiner observing it retries the map.
    closed: bool,
    /// Member matrices in join order; index 0 is the leader's.
    matrices: Vec<SymCsc>,
    outcome: Option<GroupOutcome>,
}

/// What the leader publishes to every member once the batch ran.
struct GroupOutcome {
    /// When the batch launched — members derive their coalesce wait
    /// from it.
    exec_start: Instant,
    batch_size: usize,
    /// Per-member factorization results; each member takes its own slot
    /// (`None` once taken, or if the leader died before publishing).
    facts: Vec<Option<Result<Factorization, FactorError>>>,
}

/// Publishes an empty outcome on unwind so a panicking leader can never
/// strand its members on the condvar.
struct PublishGuard<'a> {
    group: &'a Group,
    members: usize,
    published: bool,
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            let mut st = self.group.state.lock().unwrap();
            st.outcome = Some(GroupOutcome {
                exec_start: Instant::now(),
                batch_size: self.members,
                facts: (0..self.members).map(|_| None).collect(),
            });
            drop(st);
            self.group.cv.notify_all();
        }
    }
}

/// Admission-gate slot; decrements `in_flight` on drop (including
/// unwind), so a panicking request cannot leak capacity.
struct AdmissionSlot<'a> {
    service: &'a Service,
}

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        *self.service.in_flight.lock().unwrap() -= 1;
    }
}

thread_local! {
    static SOLVE_WS: RefCell<SolveWorkspace> = RefCell::new(SolveWorkspace::new());
}

impl Service {
    /// Builds a service, resolving every knob once (see module docs).
    pub fn new(cfg: ServiceConfig) -> Self {
        let cache_bytes = if cfg.cache_bytes > 0 {
            cfg.cache_bytes
        } else {
            env_positive("RLCHOL_CACHE_BYTES").unwrap_or(DEFAULT_CACHE_BYTES)
        };
        let queue_depth = if cfg.queue_depth > 0 {
            cfg.queue_depth
        } else {
            env_positive("RLCHOL_QUEUE_DEPTH")
                .map(|v| v as usize)
                .unwrap_or_else(|| 2 * resolved_lanes(&cfg.options))
        };
        let batch_window_us = if cfg.batch_window_us > 0 {
            cfg.batch_window_us
        } else {
            env_positive("RLCHOL_BATCH_WINDOW_US").unwrap_or(0)
        };
        Service {
            options: cfg.options,
            queue_depth,
            default_deadline: cfg.default_deadline,
            batch_window: (batch_window_us > 0).then(|| Duration::from_micros(batch_window_us)),
            cache: HandleCache::new(cache_bytes),
            coalescer: Coalescer::default(),
            in_flight: Mutex::new(0),
            counters: Mutex::new(Counters::default()),
            cancel: CancelToken::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The resolved admission limit.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// The resolved cross-request batching window (`None` = batching
    /// off).
    pub fn batch_window(&self) -> Option<Duration> {
        self.batch_window
    }

    /// The solver options every request starts from.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// The handle cache (stats and test hooks).
    pub fn cache(&self) -> &HandleCache {
        &self.cache
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let c = self.counters.lock().unwrap();
        ServiceStats {
            submitted: c.submitted,
            completed: c.completed,
            shed_overload: c.shed_overload,
            shed_deadline: c.shed_deadline,
            failed: c.failed,
            in_flight: *self.in_flight.lock().unwrap(),
            queue_depth: self.queue_depth,
            coalesced_batches: c.coalesced_batches,
            coalesced_requests: c.coalesced_requests,
            cache: self.cache.stats(),
        }
    }

    /// Stops accepting requests and cancels in-flight engine work.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cancel.cancel();
    }

    /// True once [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Runs one request to completion (or a typed error). Never blocks
    /// behind more than `queue_depth - 1` other requests; never exceeds
    /// the request's deadline without saying so.
    pub fn submit(&self, req: Request) -> Result<Response, ServiceError> {
        let t0 = Instant::now();
        self.counters.lock().unwrap().submitted += 1;
        let result = self.run(req, t0);
        let mut c = self.counters.lock().unwrap();
        match &result {
            Ok(_) => c.completed += 1,
            Err(ServiceError::Overloaded { .. }) => c.shed_overload += 1,
            Err(e) if e.is_shed() => c.shed_deadline += 1,
            Err(_) => c.failed += 1,
        }
        result
    }

    fn admit(&self) -> Result<AdmissionSlot<'_>, ServiceError> {
        let mut n = self.in_flight.lock().unwrap();
        if *n >= self.queue_depth {
            return Err(ServiceError::Overloaded {
                in_flight: *n,
                limit: self.queue_depth,
            });
        }
        *n += 1;
        Ok(AdmissionSlot { service: self })
    }

    fn run(&self, req: Request, t0: Instant) -> Result<Response, ServiceError> {
        if self.is_shutdown() {
            return Err(ServiceError::ShuttingDown);
        }
        let _slot = self.admit()?;

        let mut opts = self.options.clone();
        if let Some(m) = req.method {
            opts.method = m;
        }
        let key = PatternFingerprint::of_request(&req.matrix, &opts);

        let mut analyze_wall = Duration::ZERO;
        let (handle, outcome) = self.cache.get_or_analyze(key, || {
            let t = Instant::now();
            let h = SymbolicCholesky::new(&req.matrix, &opts);
            analyze_wall = t.elapsed();
            h
        });
        let queue_wait = t0.elapsed().saturating_sub(analyze_wall);

        // Remaining wall budget after admission + analysis; an already
        // expired budget sheds before any numeric work starts.
        let budget = req.deadline.or(self.default_deadline);
        let deadline = match budget {
            Some(b) => {
                let spent = t0.elapsed();
                if spent >= b {
                    return Err(ServiceError::DeadlineExceeded { waited: spent });
                }
                Deadline::wall(b - spent)
            }
            None => opts.deadline,
        };

        let mut metrics = RequestMetrics {
            queue_wait,
            cache: outcome,
            analyze_wall,
            factor_wall: Duration::ZERO,
            solve_wall: Duration::ZERO,
            recovery_events: 0,
            batch_size: 1,
            coalesce_wait: Duration::ZERO,
            // Only the request that actually ran the analysis reports
            // the stage breakdown; hits and coalesced misses paid
            // nothing and claim nothing.
            analyze_stages: (analyze_wall > Duration::ZERO).then(|| handle.analyze_breakdown()),
        };

        // Deadline-free factor/solve traffic goes through the
        // cross-request coalescing window when one is configured; a
        // request with a latency budget never sits in the buffer.
        let coalesce = self.batch_window.is_some()
            && req.deadline.is_none()
            && self.default_deadline.is_none()
            && matches!(req.op, RequestOp::Factor | RequestOp::Solve(_));

        let payload = match req.op {
            RequestOp::Analyze => ResponsePayload::Analyzed {
                n: handle.n(),
                factor_nnz: handle.factor_nnz(),
                supernodes: handle.symbolic().nsup(),
                memory_bytes: handle.memory_bytes(),
            },
            RequestOp::Factor if coalesce => {
                self.run_coalesced(key, req.matrix, None, &handle, deadline, &mut metrics)?
            }
            RequestOp::Solve(rhs) if coalesce => {
                self.run_coalesced(key, req.matrix, Some(rhs), &handle, deadline, &mut metrics)?
            }
            RequestOp::Factor => {
                let fact = handle.factor_with_ctl(&req.matrix, deadline, &self.cancel)?;
                metrics.factor_wall = fact.info().wall;
                metrics.recovery_events = fact.info().recovery.len();
                let info_json = factor_info_json(fact.info());
                handle.recycle(fact);
                ResponsePayload::Factored {
                    factor_nnz: handle.factor_nnz(),
                    info_json,
                }
            }
            RequestOp::Solve(rhs) => {
                let fact = handle.factor_with_ctl(&req.matrix, deadline, &self.cancel)?;
                metrics.factor_wall = fact.info().wall;
                metrics.recovery_events = fact.info().recovery.len();
                let mut x = vec![0.0; rhs.len()];
                let t = Instant::now();
                let solved = SOLVE_WS
                    .with(|ws| handle.solve_into(&fact, &rhs, &mut x, &mut ws.borrow_mut()));
                metrics.solve_wall = t.elapsed();
                let info_json = factor_info_json(fact.info());
                handle.recycle(fact);
                solved?;
                ResponsePayload::Solved { x, info_json }
            }
            RequestOp::Batch(value_sets) => {
                let nnz = req.matrix.nnz_lower();
                for (i, set) in value_sets.iter().enumerate() {
                    if set.len() != nnz {
                        return Err(ServiceError::BadRequest(format!(
                            "batch value set {i} has {} values, pattern has {nnz}",
                            set.len()
                        )));
                    }
                }
                let mats: Vec<SymCsc> = value_sets
                    .iter()
                    .map(|set| {
                        let mut m = req.matrix.clone();
                        m.values_mut().copy_from_slice(set);
                        m
                    })
                    .collect();
                let refs: Vec<&SymCsc> = mats.iter().collect();
                let t = Instant::now();
                let results = handle.batch_factor_ctl(&refs, deadline, &self.cancel);
                metrics.factor_wall = t.elapsed();
                let outcomes = results
                    .into_iter()
                    .map(|r| {
                        r.map(|fact| {
                            metrics.recovery_events += fact.info().recovery.len();
                            handle.recycle(fact);
                        })
                    })
                    .collect();
                ResponsePayload::Batched { outcomes }
            }
        };

        Ok(Response { payload, metrics })
    }

    /// Runs one factor/solve request through the coalescing window: the
    /// first request on a pattern becomes the group leader, sleeps the
    /// window collecting joiners, then factors every member's values in
    /// one [`SymbolicCholesky::batch_factor_ctl`] fan-out and hands each
    /// member its own [`Factorization`]. Followers block until the
    /// leader publishes; each member then reports, solves (if asked),
    /// and recycles its factor on its own thread. Bit-identical to solo
    /// submission: the batch runs the same per-matrix engine under the
    /// same options and deadline.
    fn run_coalesced(
        &self,
        key: PatternFingerprint,
        matrix: SymCsc,
        rhs: Option<Vec<f64>>,
        handle: &SymbolicCholesky,
        deadline: Deadline,
        metrics: &mut RequestMetrics,
    ) -> Result<ResponsePayload, ServiceError> {
        let window = self.batch_window.expect("caller checked eligibility");
        let t_join = Instant::now();
        enum Role {
            Leader(Arc<Group>),
            Follower(Arc<Group>, usize),
        }
        let mut matrix = Some(matrix);
        let role = loop {
            let mut groups = self.coalescer.groups.lock().unwrap();
            match groups.get(&key) {
                Some(g) => {
                    let g = Arc::clone(g);
                    drop(groups);
                    let mut st = g.state.lock().unwrap();
                    if st.closed {
                        // The leader is draining this group; it is about
                        // to leave the map — retry and start a new one.
                        continue;
                    }
                    st.matrices.push(matrix.take().expect("joined once"));
                    let idx = st.matrices.len() - 1;
                    drop(st);
                    break Role::Follower(g, idx);
                }
                None => {
                    let g = Arc::new(Group::default());
                    g.state
                        .lock()
                        .unwrap()
                        .matrices
                        .push(matrix.take().expect("led once"));
                    groups.insert(key, Arc::clone(&g));
                    break Role::Leader(g);
                }
            }
        };
        match role {
            Role::Leader(g) => {
                std::thread::sleep(window);
                // Close the window: out of the map first, then `closed`
                // under the state lock, so no joiner can slip into a
                // batch that already launched.
                let matrices = {
                    let mut groups = self.coalescer.groups.lock().unwrap();
                    groups.remove(&key);
                    let mut st = g.state.lock().unwrap();
                    st.closed = true;
                    std::mem::take(&mut st.matrices)
                };
                let mut publish = PublishGuard {
                    group: &g,
                    members: matrices.len(),
                    published: false,
                };
                let exec_start = Instant::now();
                metrics.coalesce_wait = exec_start.saturating_duration_since(t_join);
                metrics.batch_size = matrices.len();
                let refs: Vec<&SymCsc> = matrices.iter().collect();
                let results = handle.batch_factor_ctl(&refs, deadline, &self.cancel);
                let mut facts: Vec<Option<Result<Factorization, FactorError>>> =
                    results.into_iter().map(Some).collect();
                let mine = facts[0].take().expect("leader owns slot 0");
                if matrices.len() > 1 {
                    let mut c = self.counters.lock().unwrap();
                    c.coalesced_batches += 1;
                    c.coalesced_requests += matrices.len() as u64;
                }
                {
                    let mut st = g.state.lock().unwrap();
                    st.outcome = Some(GroupOutcome {
                        exec_start,
                        batch_size: facts.len(),
                        facts,
                    });
                }
                publish.published = true;
                g.cv.notify_all();
                self.finish_member(handle, mine, rhs, metrics)
            }
            Role::Follower(g, idx) => {
                let (fact, exec_start, batch_size) = {
                    let mut st = g.state.lock().unwrap();
                    while st.outcome.is_none() {
                        st = g.cv.wait(st).unwrap();
                    }
                    let o = st.outcome.as_mut().expect("loop exited on Some");
                    (o.facts[idx].take(), o.exec_start, o.batch_size)
                };
                metrics.batch_size = batch_size;
                metrics.coalesce_wait = exec_start.saturating_duration_since(t_join);
                // A `None` slot means the leader unwound before
                // publishing real results; surface it as a cancelled
                // factorization (typed, shed-classified) rather than
                // hanging or panicking a second thread.
                let fact = fact.ok_or(FactorError::Cancelled)?;
                self.finish_member(handle, fact, rhs, metrics)
            }
        }
    }

    /// Post-batch per-member work: report, optional solve against the
    /// member's own right-hand side, recycle the factor storage.
    fn finish_member(
        &self,
        handle: &SymbolicCholesky,
        fact: Result<Factorization, FactorError>,
        rhs: Option<Vec<f64>>,
        metrics: &mut RequestMetrics,
    ) -> Result<ResponsePayload, ServiceError> {
        let fact = fact?;
        metrics.factor_wall = fact.info().wall;
        metrics.recovery_events = fact.info().recovery.len();
        let info_json = factor_info_json(fact.info());
        match rhs {
            None => {
                handle.recycle(fact);
                Ok(ResponsePayload::Factored {
                    factor_nnz: handle.factor_nnz(),
                    info_json,
                })
            }
            Some(rhs) => {
                let mut x = vec![0.0; rhs.len()];
                let t = Instant::now();
                let solved = SOLVE_WS
                    .with(|ws| handle.solve_into(&fact, &rhs, &mut x, &mut ws.borrow_mut()));
                metrics.solve_wall = t.elapsed();
                handle.recycle(fact);
                solved?;
                Ok(ResponsePayload::Solved { x, info_json })
            }
        }
    }
}

/// JSON rendering of [`ServiceStats`] — shared by the wire protocol's
/// `stats` op and the bench report.
pub fn stats_json(stats: &ServiceStats) -> String {
    let cache = JsonObj::new()
        .u64("hits", stats.cache.hits)
        .u64("misses", stats.cache.misses)
        .u64("coalesced", stats.cache.coalesced)
        .u64("evictions", stats.cache.evictions)
        .u64("entries", stats.cache.entries as u64)
        .u64("bytes", stats.cache.bytes)
        .u64("peak_bytes", stats.cache.peak_bytes)
        .u64("budget_bytes", stats.cache.budget_bytes)
        .finish();
    JsonObj::new()
        .u64("submitted", stats.submitted)
        .u64("completed", stats.completed)
        .u64("shed_overload", stats.shed_overload)
        .u64("shed_deadline", stats.shed_deadline)
        .u64("failed", stats.failed)
        .u64("in_flight", stats.in_flight as u64)
        .u64("queue_depth", stats.queue_depth as u64)
        .u64("coalesced_batches", stats.coalesced_batches)
        .u64("coalesced_requests", stats.coalesced_requests)
        .raw("cache", &cache)
        .finish()
}
