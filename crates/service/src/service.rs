//! The in-process service: admission control, handle cache, and request
//! dispatch onto the staged-solver API.
//!
//! [`Service::submit`] is the whole contract: it never queues
//! unboundedly (the admission gate sheds with a typed
//! [`ServiceError::Overloaded`] once `queue_depth` requests are in
//! flight), never runs past a request deadline silently (the remaining
//! budget is threaded into the engine's `Deadline` machinery), and
//! reports per-request [`RequestMetrics`] alongside every payload.
//!
//! # Configuration precedence
//!
//! Explicit [`ServiceConfig`] field > `RLCHOL_*` environment variable >
//! built-in default, resolved **once** in [`Service::new`]:
//!
//! | knob | explicit | env | default |
//! |------|----------|-----|---------|
//! | cache budget | `cache_bytes > 0` | `RLCHOL_CACHE_BYTES` | 256 MiB |
//! | admission depth | `queue_depth > 0` | `RLCHOL_QUEUE_DEPTH` | 2 × factor lanes |
//!
//! (factor lanes themselves resolve `options.factor_lanes` >
//! `RLCHOL_FACTOR_LANES` > pool width, mirroring the staged API.)

use crate::cache::{CacheOutcome, CacheStats, HandleCache};
use crate::error::ServiceError;
use crate::fingerprint::PatternFingerprint;
use rlchol_core::json::{factor_info_json, JsonObj};
use rlchol_core::solver::SolverOptions;
use rlchol_core::{CancelToken, Deadline, FactorError, Method, SolveWorkspace, SymbolicCholesky};
use rlchol_sparse::SymCsc;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default cache budget when neither config nor env specify one.
pub const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

fn env_positive(name: &str) -> Option<u64> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
}

/// Resolved factor-lane count for sizing the admission gate — the same
/// precedence the staged handle applies (explicit > `RLCHOL_FACTOR_LANES`
/// > pool width).
fn resolved_lanes(opts: &SolverOptions) -> usize {
    if opts.factor_lanes > 0 {
        opts.factor_lanes
    } else {
        env_positive("RLCHOL_FACTOR_LANES")
            .map(|v| v as usize)
            .unwrap_or_else(rlchol_dense::pool::default_threads)
    }
}

/// Service construction knobs. `0` / `None` means "resolve from the
/// environment, then the default" (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ServiceConfig {
    /// Solver options shared by every request (a request may override
    /// the engine method).
    pub options: SolverOptions,
    /// Symbolic-handle cache budget in bytes (`0` → env → 256 MiB).
    pub cache_bytes: u64,
    /// Admission limit: max requests in flight (`0` → env → 2 × lanes).
    pub queue_depth: usize,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline: Option<Duration>,
}

/// What one request asks for.
#[derive(Debug, Clone)]
pub enum RequestOp {
    /// Symbolic analysis only — warms the cache, reports sizes.
    Analyze,
    /// Numeric factorization; the factor is recycled after reporting.
    Factor,
    /// Factor + triangular solve for one right-hand side.
    Solve(Vec<f64>),
    /// Factor many value sets of the same pattern across the lanes.
    Batch(Vec<Vec<f64>>),
}

/// One service request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The matrix (pattern + values, lower triangle).
    pub matrix: SymCsc,
    /// The operation.
    pub op: RequestOp,
    /// Engine override; `None` uses the service's configured method.
    pub method: Option<Method>,
    /// Wall-clock budget; `None` uses the service default (if any).
    pub deadline: Option<Duration>,
}

impl Request {
    /// An analyze request with service-default method and deadline.
    pub fn analyze(matrix: SymCsc) -> Self {
        Request {
            matrix,
            op: RequestOp::Analyze,
            method: None,
            deadline: None,
        }
    }

    /// A factor request.
    pub fn factor(matrix: SymCsc) -> Self {
        Request {
            op: RequestOp::Factor,
            ..Request::analyze(matrix)
        }
    }

    /// A factor-and-solve request.
    pub fn solve(matrix: SymCsc, rhs: Vec<f64>) -> Self {
        Request {
            op: RequestOp::Solve(rhs),
            ..Request::analyze(matrix)
        }
    }

    /// A batched refactorization request.
    pub fn batch(matrix: SymCsc, value_sets: Vec<Vec<f64>>) -> Self {
        Request {
            op: RequestOp::Batch(value_sets),
            ..Request::analyze(matrix)
        }
    }
}

/// Timings and provenance for one completed request.
#[derive(Debug, Clone, Copy)]
pub struct RequestMetrics {
    /// Time from submit to the start of numeric work, excluding any
    /// analysis this request ran itself (admission + coalesce wait).
    pub queue_wait: Duration,
    /// How the handle lookup resolved.
    pub cache: CacheOutcome,
    /// Symbolic-analysis wall time (zero on hits and coalesced misses).
    pub analyze_wall: Duration,
    /// Numeric factorization wall time (zero for `Analyze`).
    pub factor_wall: Duration,
    /// Triangular-solve wall time (zero unless `Solve`).
    pub solve_wall: Duration,
    /// Recovery events (retries/fallbacks) the engine logged.
    pub recovery_events: usize,
    /// Per-stage breakdown of the analysis this request ran itself
    /// (`None` on hits and coalesced misses — those paid no analysis).
    /// Same schema as the CLI's `analyze` report, so a service operator
    /// can see *which* symbolic stage a cache-miss spike is spending its
    /// wall in and whether `RLCHOL_ANALYZE_THREADS` is taking effect.
    pub analyze_stages: Option<rlchol_core::AnalyzeBreakdown>,
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub enum ResponsePayload {
    /// Sizes of the analyzed pattern.
    Analyzed {
        /// Matrix dimension.
        n: usize,
        /// Factor nonzeros (lower triangle).
        factor_nnz: u64,
        /// Supernodes after amalgamation.
        supernodes: usize,
        /// Resident bytes the handle is charged in the cache.
        memory_bytes: u64,
    },
    /// Factorization report (the factor itself was recycled).
    Factored {
        /// Factor nonzeros.
        factor_nnz: u64,
        /// [`factor_info_json`] report.
        info_json: String,
    },
    /// Solution vector plus the factorization report.
    Solved {
        /// `x` solving `A x = b`, original ordering.
        x: Vec<f64>,
        /// [`factor_info_json`] report.
        info_json: String,
    },
    /// Per-slot outcomes of a batched refactorization.
    Batched {
        /// `Ok(())` per factored value set, typed error otherwise.
        outcomes: Vec<Result<(), FactorError>>,
    },
}

/// Payload + metrics for one completed request.
#[derive(Debug, Clone)]
pub struct Response {
    /// The operation's result.
    pub payload: ResponsePayload,
    /// Per-request timings.
    pub metrics: RequestMetrics,
}

/// Point-in-time service counters.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Requests submitted (including sheds).
    pub submitted: u64,
    /// Requests that returned a payload.
    pub completed: u64,
    /// Requests shed by the admission gate.
    pub shed_overload: u64,
    /// Requests shed by deadline expiry (before or during work).
    pub shed_deadline: u64,
    /// Requests that failed with a non-shed error.
    pub failed: u64,
    /// Requests currently inside the admission gate.
    pub in_flight: usize,
    /// The admission limit.
    pub queue_depth: usize,
    /// Cache counters.
    pub cache: CacheStats,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    shed_overload: u64,
    shed_deadline: u64,
    failed: u64,
}

/// The solver service. Cheap to share (`Arc<Service>`); every method
/// takes `&self` and is safe to call from many threads.
pub struct Service {
    options: SolverOptions,
    queue_depth: usize,
    default_deadline: Option<Duration>,
    cache: HandleCache,
    in_flight: Mutex<usize>,
    counters: Mutex<Counters>,
    cancel: CancelToken,
    shutdown: AtomicBool,
}

/// Admission-gate slot; decrements `in_flight` on drop (including
/// unwind), so a panicking request cannot leak capacity.
struct AdmissionSlot<'a> {
    service: &'a Service,
}

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        *self.service.in_flight.lock().unwrap() -= 1;
    }
}

thread_local! {
    static SOLVE_WS: RefCell<SolveWorkspace> = RefCell::new(SolveWorkspace::new());
}

impl Service {
    /// Builds a service, resolving every knob once (see module docs).
    pub fn new(cfg: ServiceConfig) -> Self {
        let cache_bytes = if cfg.cache_bytes > 0 {
            cfg.cache_bytes
        } else {
            env_positive("RLCHOL_CACHE_BYTES").unwrap_or(DEFAULT_CACHE_BYTES)
        };
        let queue_depth = if cfg.queue_depth > 0 {
            cfg.queue_depth
        } else {
            env_positive("RLCHOL_QUEUE_DEPTH")
                .map(|v| v as usize)
                .unwrap_or_else(|| 2 * resolved_lanes(&cfg.options))
        };
        Service {
            options: cfg.options,
            queue_depth,
            default_deadline: cfg.default_deadline,
            cache: HandleCache::new(cache_bytes),
            in_flight: Mutex::new(0),
            counters: Mutex::new(Counters::default()),
            cancel: CancelToken::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The resolved admission limit.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// The solver options every request starts from.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// The handle cache (stats and test hooks).
    pub fn cache(&self) -> &HandleCache {
        &self.cache
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        let c = self.counters.lock().unwrap();
        ServiceStats {
            submitted: c.submitted,
            completed: c.completed,
            shed_overload: c.shed_overload,
            shed_deadline: c.shed_deadline,
            failed: c.failed,
            in_flight: *self.in_flight.lock().unwrap(),
            queue_depth: self.queue_depth,
            cache: self.cache.stats(),
        }
    }

    /// Stops accepting requests and cancels in-flight engine work.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cancel.cancel();
    }

    /// True once [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Runs one request to completion (or a typed error). Never blocks
    /// behind more than `queue_depth - 1` other requests; never exceeds
    /// the request's deadline without saying so.
    pub fn submit(&self, req: Request) -> Result<Response, ServiceError> {
        let t0 = Instant::now();
        self.counters.lock().unwrap().submitted += 1;
        let result = self.run(req, t0);
        let mut c = self.counters.lock().unwrap();
        match &result {
            Ok(_) => c.completed += 1,
            Err(ServiceError::Overloaded { .. }) => c.shed_overload += 1,
            Err(e) if e.is_shed() => c.shed_deadline += 1,
            Err(_) => c.failed += 1,
        }
        result
    }

    fn admit(&self) -> Result<AdmissionSlot<'_>, ServiceError> {
        let mut n = self.in_flight.lock().unwrap();
        if *n >= self.queue_depth {
            return Err(ServiceError::Overloaded {
                in_flight: *n,
                limit: self.queue_depth,
            });
        }
        *n += 1;
        Ok(AdmissionSlot { service: self })
    }

    fn run(&self, req: Request, t0: Instant) -> Result<Response, ServiceError> {
        if self.is_shutdown() {
            return Err(ServiceError::ShuttingDown);
        }
        let _slot = self.admit()?;

        let mut opts = self.options.clone();
        if let Some(m) = req.method {
            opts.method = m;
        }
        let key = PatternFingerprint::of_request(&req.matrix, &opts);

        let mut analyze_wall = Duration::ZERO;
        let (handle, outcome) = self.cache.get_or_analyze(key, || {
            let t = Instant::now();
            let h = SymbolicCholesky::new(&req.matrix, &opts);
            analyze_wall = t.elapsed();
            h
        });
        let queue_wait = t0.elapsed().saturating_sub(analyze_wall);

        // Remaining wall budget after admission + analysis; an already
        // expired budget sheds before any numeric work starts.
        let budget = req.deadline.or(self.default_deadline);
        let deadline = match budget {
            Some(b) => {
                let spent = t0.elapsed();
                if spent >= b {
                    return Err(ServiceError::DeadlineExceeded { waited: spent });
                }
                Deadline::wall(b - spent)
            }
            None => opts.deadline,
        };

        let mut metrics = RequestMetrics {
            queue_wait,
            cache: outcome,
            analyze_wall,
            factor_wall: Duration::ZERO,
            solve_wall: Duration::ZERO,
            recovery_events: 0,
            // Only the request that actually ran the analysis reports
            // the stage breakdown; hits and coalesced misses paid
            // nothing and claim nothing.
            analyze_stages: (analyze_wall > Duration::ZERO).then(|| handle.analyze_breakdown()),
        };

        let payload = match req.op {
            RequestOp::Analyze => ResponsePayload::Analyzed {
                n: handle.n(),
                factor_nnz: handle.factor_nnz(),
                supernodes: handle.symbolic().nsup(),
                memory_bytes: handle.memory_bytes(),
            },
            RequestOp::Factor => {
                let fact = handle.factor_with_ctl(&req.matrix, deadline, &self.cancel)?;
                metrics.factor_wall = fact.info().wall;
                metrics.recovery_events = fact.info().recovery.len();
                let info_json = factor_info_json(fact.info());
                handle.recycle(fact);
                ResponsePayload::Factored {
                    factor_nnz: handle.factor_nnz(),
                    info_json,
                }
            }
            RequestOp::Solve(rhs) => {
                let fact = handle.factor_with_ctl(&req.matrix, deadline, &self.cancel)?;
                metrics.factor_wall = fact.info().wall;
                metrics.recovery_events = fact.info().recovery.len();
                let mut x = vec![0.0; rhs.len()];
                let t = Instant::now();
                let solved = SOLVE_WS
                    .with(|ws| handle.solve_into(&fact, &rhs, &mut x, &mut ws.borrow_mut()));
                metrics.solve_wall = t.elapsed();
                let info_json = factor_info_json(fact.info());
                handle.recycle(fact);
                solved?;
                ResponsePayload::Solved { x, info_json }
            }
            RequestOp::Batch(value_sets) => {
                let nnz = req.matrix.nnz_lower();
                for (i, set) in value_sets.iter().enumerate() {
                    if set.len() != nnz {
                        return Err(ServiceError::BadRequest(format!(
                            "batch value set {i} has {} values, pattern has {nnz}",
                            set.len()
                        )));
                    }
                }
                let mats: Vec<SymCsc> = value_sets
                    .iter()
                    .map(|set| {
                        let mut m = req.matrix.clone();
                        m.values_mut().copy_from_slice(set);
                        m
                    })
                    .collect();
                let refs: Vec<&SymCsc> = mats.iter().collect();
                let t = Instant::now();
                let results = handle.batch_factor_ctl(&refs, deadline, &self.cancel);
                metrics.factor_wall = t.elapsed();
                let outcomes = results
                    .into_iter()
                    .map(|r| {
                        r.map(|fact| {
                            metrics.recovery_events += fact.info().recovery.len();
                            handle.recycle(fact);
                        })
                    })
                    .collect();
                ResponsePayload::Batched { outcomes }
            }
        };

        Ok(Response { payload, metrics })
    }
}

/// JSON rendering of [`ServiceStats`] — shared by the wire protocol's
/// `stats` op and the bench report.
pub fn stats_json(stats: &ServiceStats) -> String {
    let cache = JsonObj::new()
        .u64("hits", stats.cache.hits)
        .u64("misses", stats.cache.misses)
        .u64("coalesced", stats.cache.coalesced)
        .u64("evictions", stats.cache.evictions)
        .u64("entries", stats.cache.entries as u64)
        .u64("bytes", stats.cache.bytes)
        .u64("peak_bytes", stats.cache.peak_bytes)
        .u64("budget_bytes", stats.cache.budget_bytes)
        .finish();
    JsonObj::new()
        .u64("submitted", stats.submitted)
        .u64("completed", stats.completed)
        .u64("shed_overload", stats.shed_overload)
        .u64("shed_deadline", stats.shed_deadline)
        .u64("failed", stats.failed)
        .u64("in_flight", stats.in_flight as u64)
        .u64("queue_depth", stats.queue_depth as u64)
        .raw("cache", &cache)
        .finish()
}
