//! `rlchol-serve` — the standalone solver-as-a-service daemon.
//!
//! ```text
//! rlchol-serve [addr]          default 127.0.0.1:7211
//! ```
//!
//! Environment (see `rlchol_service::service` docs for precedence):
//! `RLCHOL_CACHE_BYTES`, `RLCHOL_QUEUE_DEPTH`, `RLCHOL_FACTOR_LANES`,
//! plus every engine knob (`RLCHOL_THREADS`, `RLCHOL_STREAMS`, …).
//! The evented front end (Unix default) adds `RLCHOL_NET_WORKERS`
//! (fixed worker pool, default 4), `RLCHOL_CONN_TIMEOUT_MS`
//! (per-connection idle/read deadline, default 30 000) and
//! `RLCHOL_BATCH_WINDOW_US` (cross-request factor coalescing window,
//! default 0 = off); `RLCHOL_NET_LEGACY=1` restores the
//! thread-per-connection loop. Stop it by sending the protocol's
//! `shutdown` op (e.g. via `rlchol_service::Client::shutdown`).

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7211".to_string());
    if let Err(e) = rlchol_service::run_server(&addr, Default::default()) {
        eprintln!("rlchol-serve: {e}");
        std::process::exit(1);
    }
}
