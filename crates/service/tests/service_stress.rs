//! Mixed-traffic concurrency stress: 8 threads hammer one `Service`
//! with analyze/factor/solve/batch requests over three patterns, and
//! every solution is checked **bitwise** against the serial staged-API
//! oracle (the same policy as tests/shared_handle.rs — planned solves
//! are bit-identical to serial at any lane/thread count). One thread
//! injects an indefinite value set mid-stream: that request alone fails
//! with the typed error, everything else is unaffected.

use rlchol_core::solver::SolverOptions;
use rlchol_core::{CholeskySolver, SolveWorkspace};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_service::{Request, ResponsePayload, Service, ServiceConfig, ServiceError};
use rlchol_sparse::SymCsc;
use std::collections::HashMap;
use std::sync::Arc;

const THREADS: usize = 8;
const ITERS: usize = 12;
/// The (thread, iteration) that receives indefinite values.
const BAD_AT: (usize, usize) = (5, 6);

fn shapes() -> [(usize, usize, usize); 3] {
    [(4, 4, 3), (5, 4, 3), (5, 5, 4)]
}

fn matrix(pattern: usize, seed: u64) -> SymCsc {
    let (x, y, z) = shapes()[pattern % 3];
    grid3d(x, y, z, Stencil::Star7, 1, seed)
}

fn value_seed(thread: usize, iter: usize) -> u64 {
    3000 + (thread * ITERS + iter) as u64
}

fn options() -> SolverOptions {
    SolverOptions {
        factor_lanes: 4,
        ..SolverOptions::default()
    }
}

fn rhs_for(a: &SymCsc) -> Vec<f64> {
    let ones = vec![1.0; a.n()];
    let mut b = vec![0.0; a.n()];
    a.matvec(&ones, &mut b);
    b
}

#[test]
fn mixed_traffic_is_bitwise_identical_to_the_serial_oracle() {
    let opts = options();

    // Serial oracle: one handle per pattern, solved single-threaded.
    let mut oracle: HashMap<(usize, u64), Vec<f64>> = HashMap::new();
    for pattern in 0..3 {
        let a0 = matrix(pattern, 1);
        let handle = CholeskySolver::analyze(&a0, &opts);
        let mut ws = SolveWorkspace::new();
        for t in 0..THREADS {
            for i in 0..ITERS {
                let seed = value_seed(t, i);
                let a = matrix(pattern, seed);
                let fact = handle.factor_with(&a).expect("SPD oracle factor");
                let b = rhs_for(&a);
                let mut x = vec![0.0; a.n()];
                handle.solve_into(&fact, &b, &mut x, &mut ws).unwrap();
                handle.recycle(fact);
                oracle.insert((pattern, seed), x);
            }
        }
    }
    let oracle = Arc::new(oracle);

    let service = Arc::new(Service::new(ServiceConfig {
        options: opts,
        queue_depth: 2 * THREADS,
        cache_bytes: 1 << 30,
        default_deadline: None,
        batch_window_us: 0,
    }));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let pattern = (t + i) % 3;
                    let seed = value_seed(t, i);
                    let a = matrix(pattern, seed);
                    if (t, i) == BAD_AT {
                        // Indefinite values: typed failure, no fallout.
                        let mut bad = a.clone();
                        let mid = bad.n() / 2;
                        let dpos = bad.colptr()[mid];
                        bad.values_mut()[dpos] = -75.0;
                        match service.submit(Request::factor(bad)) {
                            Err(ServiceError::Factor(e)) => {
                                assert!(
                                    e.to_string().contains("positive definite"),
                                    "typed indefinite error, got: {e}"
                                );
                            }
                            other => panic!("bad values must fail typed: {other:?}"),
                        }
                        continue;
                    }
                    match i % 4 {
                        // Mostly solves (the bitwise observable), with
                        // analyze/factor/batch traffic mixed in.
                        0 => {
                            let resp = service
                                .submit(Request::analyze(a))
                                .expect("analyze succeeds");
                            match resp.payload {
                                ResponsePayload::Analyzed { n, .. } => {
                                    assert_eq!(n, matrix(pattern, 1).n())
                                }
                                other => panic!("wrong payload: {other:?}"),
                            }
                        }
                        1 => {
                            let sets = vec![
                                matrix(pattern, seed).values().to_vec(),
                                matrix(pattern, seed + 7000).values().to_vec(),
                            ];
                            let resp = service
                                .submit(Request::batch(a, sets))
                                .expect("batch succeeds");
                            match resp.payload {
                                ResponsePayload::Batched { outcomes } => {
                                    assert!(outcomes.iter().all(|r| r.is_ok()))
                                }
                                other => panic!("wrong payload: {other:?}"),
                            }
                        }
                        _ => {
                            let b = rhs_for(&a);
                            let resp = service
                                .submit(Request::solve(a, b))
                                .expect("solve succeeds");
                            match resp.payload {
                                ResponsePayload::Solved { x, .. } => {
                                    let want = &oracle[&(pattern, seed)];
                                    assert_eq!(
                                        &x, want,
                                        "thread {t} iter {i}: solution diverged \
                                         from the serial oracle (bitwise)"
                                    );
                                }
                                other => panic!("wrong payload: {other:?}"),
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("no worker panicked");
    }

    let stats = service.stats();
    assert_eq!(stats.submitted, (THREADS * ITERS) as u64);
    assert_eq!(stats.failed, 1, "exactly the injected indefinite request");
    assert_eq!(stats.completed, (THREADS * ITERS) as u64 - 1);
    assert_eq!(
        stats.shed_overload, 0,
        "queue depth covered the offered load"
    );
    assert_eq!(stats.in_flight, 0);
    let cache = stats.cache;
    assert_eq!(cache.misses, 3, "one analysis per pattern");
    assert_eq!(
        cache.hits + cache.coalesced,
        (THREADS * ITERS) as u64 - 3,
        "every other lookup reused a handle"
    );
    assert_eq!(cache.evictions, 0);
}
