//! Handle-cache semantics: LRU eviction order against the byte budget,
//! and a model-based property test of the accounting.

use proptest::prelude::*;
use rlchol_core::solver::SolverOptions;
use rlchol_core::SymbolicCholesky;
use rlchol_matgen::{grid3d, Stencil};
use rlchol_service::{CacheOutcome, HandleCache, PatternFingerprint};
use rlchol_sparse::SymCsc;

/// Distinct small patterns (different grid shapes → different
/// fingerprints), values irrelevant to the cache.
fn pattern(i: usize) -> SymCsc {
    let dims = [
        (3, 3, 2),
        (4, 3, 2),
        (4, 4, 2),
        (5, 4, 2),
        (5, 5, 2),
        (6, 5, 2),
    ];
    let (x, y, z) = dims[i % dims.len()];
    grid3d(x, y, z, Stencil::Star7, 1, 7)
}

fn key_and_handle(i: usize) -> (PatternFingerprint, SymbolicCholesky) {
    let a = pattern(i);
    let opts = SolverOptions::default();
    let key = PatternFingerprint::of_request(&a, &opts);
    (key, SymbolicCholesky::new(&a, &opts))
}

#[test]
fn lru_evicts_least_recently_used_ready_entry() {
    // Budget fits A, B, C exactly; inserting D must evict the LRU.
    // Budget admits {A,B,C} with no eviction AND {A,C,D} after exactly
    // one eviction (D may be larger than B).
    let handles: Vec<_> = (0..4).map(key_and_handle).collect();
    let sizes: Vec<u64> = handles.iter().map(|(_, h)| h.memory_bytes()).collect();
    let budget = (sizes[0] + sizes[1] + sizes[2]).max(sizes[0] + sizes[2] + sizes[3]);

    let cache = HandleCache::new(budget);
    let mut iter = handles.into_iter();
    let (ka, ha) = iter.next().unwrap();
    let (kb, hb) = iter.next().unwrap();
    let (kc, hc) = iter.next().unwrap();
    let (kd, hd) = iter.next().unwrap();

    assert_eq!(cache.get_or_analyze(ka, move || ha).1, CacheOutcome::Miss);
    assert_eq!(cache.get_or_analyze(kb, move || hb).1, CacheOutcome::Miss);
    assert_eq!(cache.get_or_analyze(kc, move || hc).1, CacheOutcome::Miss);
    assert_eq!(cache.stats().entries, 3);
    assert_eq!(cache.stats().bytes, sizes[0] + sizes[1] + sizes[2]);

    // Touch A so B becomes least recently used.
    let (_, outcome) = cache.get_or_analyze(ka, || panic!("A is cached"));
    assert_eq!(outcome, CacheOutcome::Hit);

    assert_eq!(cache.get_or_analyze(kd, move || hd).1, CacheOutcome::Miss);
    assert!(cache.contains(&ka), "recently touched entry survives");
    assert!(!cache.contains(&kb), "LRU entry was evicted");
    assert!(cache.contains(&kc));
    assert!(cache.contains(&kd));

    let stats = cache.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.entries, 3);
    assert_eq!(stats.bytes, sizes[0] + sizes[2] + sizes[3]);
    assert!(stats.bytes <= budget);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 4);
}

#[test]
fn an_entry_larger_than_the_budget_still_caches_alone() {
    let (key, handle) = key_and_handle(5);
    let bytes = handle.memory_bytes();
    let cache = HandleCache::new(bytes / 2);
    let (_, outcome) = cache.get_or_analyze(key, move || handle);
    assert_eq!(outcome, CacheOutcome::Miss);
    assert!(
        cache.contains(&key),
        "the just-built entry is never evicted, even over budget"
    );
    let (_, outcome) = cache.get_or_analyze(key, || panic!("cached"));
    assert_eq!(outcome, CacheOutcome::Hit);
    assert_eq!(cache.stats().bytes, bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Model-based accounting check: replay a random access sequence
    /// against a reference LRU and require identical residency, byte
    /// totals (always the exact sum of resident handles), and budget
    /// compliance whenever more than one entry is resident.
    #[test]
    fn byte_accounting_matches_a_model_lru(
        seed in any::<u64>(),
        budget_slots in 1usize..5,
        accesses in 8usize..40,
    ) {
        let rng = &mut TestRng::for_case(seed);
        let built: Vec<_> = (0..6).map(key_and_handle).collect();
        let sizes: Vec<u64> = built.iter().map(|(_, h)| h.memory_bytes()).collect();
        let max_size = *sizes.iter().max().unwrap();
        let budget = max_size * budget_slots as u64;
        let cache = HandleCache::new(budget);

        // Model: (index, last_used) of resident entries.
        let mut model: Vec<(usize, u64)> = Vec::new();
        let mut tick = 0u64;

        for _ in 0..accesses {
            let i = (rng.next_u64() % 6) as usize;
            tick += 1;
            let key = built[i].0;
            let expect_hit = model.iter().any(|&(m, _)| m == i);
            let (_, outcome) = cache.get_or_analyze(key, || {
                let (_, h) = key_and_handle(i);
                h
            });
            if expect_hit {
                prop_assert_eq!(outcome, CacheOutcome::Hit);
                model.iter_mut().find(|(m, _)| *m == i).unwrap().1 = tick;
            } else {
                prop_assert_eq!(outcome, CacheOutcome::Miss);
                model.push((i, tick));
                // Evict model-LRU (never the new entry) while over budget.
                loop {
                    let total: u64 = model.iter().map(|&(m, _)| sizes[m]).sum();
                    if total <= budget {
                        break;
                    }
                    let victim = model
                        .iter()
                        .enumerate()
                        .filter(|(_, &(m, _))| m != i)
                        .min_by_key(|(_, &(_, used))| used)
                        .map(|(pos, _)| pos);
                    match victim {
                        Some(pos) => { model.remove(pos); }
                        None => break,
                    }
                }
            }

            let stats = cache.stats();
            let model_bytes: u64 = model.iter().map(|&(m, _)| sizes[m]).sum();
            prop_assert_eq!(stats.bytes, model_bytes, "bytes are the exact sum");
            prop_assert_eq!(stats.entries, model.len());
            if model.len() > 1 {
                prop_assert!(stats.bytes <= budget, "budget holds with >1 entry");
            }
            for m in 0..6 {
                prop_assert_eq!(
                    cache.contains(&built[m].0),
                    model.iter().any(|&(k, _)| k == m),
                    "residency diverged from the model at pattern {}", m
                );
            }
        }
    }
}
