//! Evented front-end integration tests: partial-frame (slow-loris)
//! clients time out without wedging the pool, a burst of short-lived
//! connections all get served by a small fixed worker pool, injected
//! transient accept errors are survived, and solves coalesced by the
//! cross-request batching window stay bitwise-identical to the direct
//! staged-API path.
#![cfg(unix)]

use rlchol_core::solver::SolverOptions;
use rlchol_core::{CholeskySolver, SolveWorkspace};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_service::{
    protocol, Client, ClientOptions, NetStats, Request, ResponsePayload, ServeOptions, Service,
    ServiceConfig,
};
use rlchol_sparse::SymCsc;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn matrix(seed: u64) -> SymCsc {
    grid3d(5, 4, 3, Stencil::Star7, 1, seed)
}

fn rhs_for(a: &SymCsc) -> Vec<f64> {
    let ones = vec![1.0; a.n()];
    let mut b = vec![0.0; a.n()];
    a.matvec(&ones, &mut b);
    b
}

fn spawn_evented(
    opts: ServeOptions,
) -> (
    SocketAddr,
    Arc<Service>,
    Arc<NetStats>,
    JoinHandle<std::io::Result<()>>,
) {
    let stats = Arc::new(NetStats::default());
    let opts = ServeOptions {
        stats: Some(Arc::clone(&stats)),
        ..opts
    };
    let service = Arc::new(Service::new(ServiceConfig {
        queue_depth: 16,
        ..ServiceConfig::default()
    }));
    let (addr, server) = protocol::spawn_server_with("127.0.0.1:0", Arc::clone(&service), opts)
        .expect("bind localhost");
    (addr, service, stats, server)
}

fn client(addr: SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(Duration::from_secs(30)),
        },
    )
    .expect("connect")
}

/// A client that trickles a partial frame and then stalls forever must
/// be closed by the idle deadline — costing a registry slot for the
/// timeout, not a worker — while well-behaved clients keep being
/// served the whole time.
#[test]
fn slow_loris_is_timed_out_without_wedging_the_pool() {
    let (addr, _service, stats, server) = spawn_evented(ServeOptions {
        workers: 2,
        conn_timeout_ms: 200,
        ..ServeOptions::default()
    });

    // Claim a 64-byte body, deliver 3 bytes, stall.
    let mut loris = TcpStream::connect(addr).expect("loris connect");
    loris.write_all(&64u32.to_le_bytes()).unwrap();
    loris.write_all(&[2, 0xFF, 0]).unwrap();
    loris.flush().unwrap();

    // While the loris stalls, a healthy client keeps getting answers.
    let mut good = client(addr);
    let a = matrix(1);
    let deadline = Instant::now() + Duration::from_secs(10);
    while stats.timed_out.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "loris never timed out");
        let resp = good.analyze(&a).expect("healthy client roundtrip");
        assert!(resp.ok());
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(stats.timed_out.load(Ordering::Relaxed) >= 1);

    // The pool is not wedged: fresh connections still work.
    let mut after = client(addr);
    assert!(after.factor(&a, None, 0).expect("post-loris factor").ok());
    after.shutdown().expect("shutdown");
    server.join().unwrap().unwrap();
    drop(loris);
}

/// 64 short-lived connections against a 2-thread worker pool: every
/// request is served, nothing is dropped, and the pool stays fixed (the
/// server never spawns per-connection threads).
#[test]
fn burst_of_connections_is_served_by_a_small_fixed_pool() {
    const CONNS: usize = 64;
    let (addr, _service, stats, server) = spawn_evented(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });

    let barrier = Arc::new(Barrier::new(CONNS));
    let clients: Vec<_> = (0..CONNS)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut c = client(addr);
                // Two patterns so the cache sees hits and misses.
                let a = matrix(1 + (i % 2) as u64);
                let resp = c.analyze(&a).expect("burst roundtrip");
                assert!(resp.ok(), "request {i} failed: {}", resp.json);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("burst client panicked");
    }

    assert!(stats.accepted.load(Ordering::Relaxed) >= CONNS as u64);
    assert!(stats.frames.load(Ordering::Relaxed) >= CONNS as u64);

    let mut c = client(addr);
    c.shutdown().expect("shutdown");
    server.join().unwrap().unwrap();
}

/// Injected transient accept failures (the `ECONNABORTED`/`EMFILE`
/// family) are counted and retried with backoff; the pending connection
/// is accepted once the fault ordinals pass, and the server keeps
/// running.
#[test]
fn transient_accept_errors_are_survived() {
    let (addr, _service, stats, server) = spawn_evented(ServeOptions {
        workers: 1,
        accept_faults: vec![0, 1, 2],
        ..ServeOptions::default()
    });

    // The TCP handshake completes in the kernel backlog immediately;
    // the server's accept(2) of it fails three times first.
    let mut c = client(addr);
    let resp = c.analyze(&matrix(7)).expect("roundtrip after faults");
    assert!(resp.ok());

    assert_eq!(stats.accept_errors.load(Ordering::Relaxed), 3);
    assert!(stats.accepted.load(Ordering::Relaxed) >= 1);

    c.shutdown().expect("shutdown");
    server.join().unwrap().unwrap();
}

/// A request delivered one byte at a time (with pauses) is assembled
/// incrementally and answered like any other — partial delivery is a
/// normal TCP condition, not an error.
#[test]
fn partial_frame_delivery_is_assembled_incrementally() {
    let (addr, _service, _stats, server) = spawn_evented(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });

    // A stats request: header 1u32, body [OP_STATS].
    let wire = [1u8, 0, 0, 0, 5];
    let mut raw = TcpStream::connect(addr).expect("connect");
    for b in wire {
        raw.write_all(&[b]).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("response header");
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut body).expect("response body");
    let json = String::from_utf8_lossy(&body);
    assert!(json.contains("\"ok\":true"), "bad stats response: {json}");

    let mut c = client(addr);
    c.shutdown().expect("shutdown");
    server.join().unwrap().unwrap();
}

/// Solves that arrive inside the coalescing window fan out through one
/// `batch_factor_ctl` call — and the answers are **bitwise identical**
/// to the direct staged-API path, so coalescing is invisible to
/// clients beyond the metrics.
#[test]
fn coalesced_solves_are_bitwise_identical_to_the_direct_path() {
    const MEMBERS: usize = 6;
    let opts = SolverOptions::default();

    // Direct-path oracle: one handle, factor + solve per value set.
    let handle = CholeskySolver::analyze(&matrix(100), &opts);
    let mut ws = SolveWorkspace::new();
    let oracle: Vec<Vec<f64>> = (0..MEMBERS)
        .map(|i| {
            let a = matrix(100 + i as u64);
            let fact = handle.factor_with(&a).expect("SPD oracle factor");
            let b = rhs_for(&a);
            let mut x = vec![0.0; a.n()];
            handle.solve_into(&fact, &b, &mut x, &mut ws).unwrap();
            handle.recycle(fact);
            x
        })
        .collect();

    let service = Arc::new(Service::new(ServiceConfig {
        options: opts,
        queue_depth: 2 * MEMBERS,
        batch_window_us: 50_000,
        ..ServiceConfig::default()
    }));
    let barrier = Arc::new(Barrier::new(MEMBERS));
    let workers: Vec<_> = (0..MEMBERS)
        .map(|i| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let a = matrix(100 + i as u64);
                let b = rhs_for(&a);
                barrier.wait();
                let resp = service.submit(Request::solve(a, b)).expect("solve");
                (i, resp)
            })
        })
        .collect();

    let mut max_batch = 0;
    for w in workers {
        let (i, resp) = w.join().expect("member panicked");
        match &resp.payload {
            ResponsePayload::Solved { x, .. } => {
                assert_eq!(
                    x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    oracle[i].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "coalesced solve {i} differs from the direct path"
                );
            }
            other => panic!("expected Solved, got {other:?}"),
        }
        assert!(resp.metrics.batch_size >= 1);
        max_batch = max_batch.max(resp.metrics.batch_size);
    }

    // Barrier + 50 ms window: at least one fan-out must have coalesced.
    assert!(
        max_batch >= 2,
        "no request coalesced (max batch {max_batch})"
    );
    let stats = service.stats();
    assert!(stats.coalesced_batches >= 1);
    assert!(stats.coalesced_requests >= 2);
}
