//! Single-flight coalescing and admission-control semantics, driven
//! through the public `Service` API.

use rlchol_core::solver::SolverOptions;
use rlchol_matgen::{grid3d, Stencil};
use rlchol_service::{Request, Service, ServiceConfig, ServiceError};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn config(queue_depth: usize, lanes: usize) -> ServiceConfig {
    ServiceConfig {
        options: SolverOptions {
            factor_lanes: lanes,
            ..SolverOptions::default()
        },
        queue_depth,
        cache_bytes: 1 << 30,
        default_deadline: None,
        batch_window_us: 0,
    }
}

#[test]
fn eight_concurrent_misses_run_one_analysis() {
    let service = Arc::new(Service::new(config(16, 4)));
    let barrier = Arc::new(Barrier::new(8));
    let workers: Vec<_> = (0..8)
        .map(|t| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Same pattern from every thread; distinct values.
                let a = grid3d(6, 6, 4, Stencil::Star7, 1, 100 + t);
                barrier.wait();
                service.submit(Request::factor(a))
            })
        })
        .collect();
    for w in workers {
        let resp = w.join().unwrap().expect("every coalesced request succeeds");
        let _ = resp;
    }
    let cache = service.cache().stats();
    assert_eq!(cache.misses, 1, "exactly one thread ran the analysis");
    assert_eq!(
        cache.coalesced + cache.hits,
        7,
        "the other seven coalesced onto the in-flight build or hit the \
         finished entry; got {cache:?}"
    );
    assert_eq!(service.stats().completed, 8);
    assert_eq!(service.stats().in_flight, 0, "gate fully released");
}

#[test]
fn overload_sheds_typed_and_never_hangs() {
    // One admission slot; a long batch occupies it while probes arrive.
    let service = Arc::new(Service::new(config(1, 1)));
    let holder = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let pattern = grid3d(10, 10, 6, Stencil::Star7, 1, 1);
            let sets: Vec<Vec<f64>> = (0..48)
                .map(|i| {
                    grid3d(10, 10, 6, Stencil::Star7, 1, 50 + i)
                        .values()
                        .to_vec()
                })
                .collect();
            service.submit(Request::batch(pattern, sets))
        })
    };

    // Probe while the holder occupies the slot. Every probe must return
    // promptly — Ok only if the holder finished in between, otherwise a
    // typed Overloaded shed.
    let probe_matrix = grid3d(3, 3, 2, Stencil::Star7, 1, 9);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut sheds = 0u64;
    while sheds == 0 {
        assert!(
            Instant::now() < deadline,
            "no shed observed within 30 s — admission gate not enforcing"
        );
        if service.stats().in_flight == 0 {
            if holder.is_finished() {
                break;
            }
            std::thread::yield_now();
            continue;
        }
        let t0 = Instant::now();
        match service.submit(Request::factor(probe_matrix.clone())) {
            Err(ServiceError::Overloaded { in_flight, limit }) => {
                assert_eq!(limit, 1);
                assert!(in_flight >= 1);
                sheds += 1;
            }
            Ok(_) => {} // holder drained between the stats read and the probe
            Err(e) => panic!("unexpected probe error: {e}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "probe must shed immediately, not queue"
        );
    }

    let held = holder.join().unwrap().expect("holder batch succeeds");
    let _ = held;
    assert!(sheds >= 1, "at least one typed Overloaded shed");
    assert_eq!(service.stats().shed_overload, sheds);
    assert_eq!(service.stats().in_flight, 0);

    // The gate frees capacity after sheds: a fresh request succeeds.
    service
        .submit(Request::factor(probe_matrix))
        .expect("capacity available after the holder finished");
}

#[test]
fn expired_deadline_sheds_before_work_and_counts() {
    let service = Service::new(config(4, 1));
    let a = grid3d(6, 6, 4, Stencil::Star7, 1, 3);
    // Zero budget is expired by the time admission completes.
    let req = Request {
        deadline: Some(Duration::ZERO),
        ..Request::factor(a.clone())
    };
    match service.submit(req) {
        Err(e @ ServiceError::DeadlineExceeded { .. }) => assert!(e.is_shed()),
        other => panic!("expected deadline shed, got {other:?}"),
    }
    assert_eq!(service.stats().shed_deadline, 1);
    // The same matrix without a deadline still factors fine.
    service
        .submit(Request::factor(a))
        .expect("no deadline, no shed");
}

#[test]
fn cache_miss_reports_the_analyze_stage_breakdown() {
    let service = Service::new(config(4, 1));
    let a = grid3d(6, 6, 4, Stencil::Star7, 1, 11);
    // The miss ran the analysis itself, so it carries the breakdown.
    let miss = service.submit(Request::analyze(a.clone())).unwrap();
    let stages = miss
        .metrics
        .analyze_stages
        .expect("cache miss must report analyze stages");
    assert!(stages.threads >= 1);
    assert!(
        stages.total() <= miss.metrics.analyze_wall,
        "stage sum {:?} cannot exceed the analyze wall {:?}",
        stages.total(),
        miss.metrics.analyze_wall
    );
    // A hit paid no analysis and claims none.
    let hit = service.submit(Request::analyze(a)).unwrap();
    assert!(hit.metrics.analyze_stages.is_none());
    assert_eq!(hit.metrics.analyze_wall, Duration::ZERO);
}

#[test]
fn shutdown_rejects_new_requests() {
    let service = Service::new(config(4, 1));
    let a = grid3d(3, 3, 2, Stencil::Star7, 1, 3);
    service.submit(Request::analyze(a.clone())).unwrap();
    service.shutdown();
    assert!(matches!(
        service.submit(Request::factor(a)),
        Err(ServiceError::ShuttingDown)
    ));
}
