//! Wire-protocol integration: round-trips over a real localhost socket,
//! bitwise agreement with the in-process path, malformed-frame
//! handling, deadline errors in-band, and clean shutdown.

use rlchol_core::solver::SolverOptions;
use rlchol_core::{CholeskySolver, SolveWorkspace};
use rlchol_matgen::{grid3d, Stencil};
use rlchol_service::{protocol, Request, Service, ServiceConfig};
use rlchol_sparse::SymCsc;
use std::io::{Read, Write};
use std::sync::Arc;

fn spawn() -> (
    std::net::SocketAddr,
    Arc<Service>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let service = Arc::new(Service::new(ServiceConfig {
        queue_depth: 8,
        ..ServiceConfig::default()
    }));
    let (addr, server) =
        protocol::spawn_server("127.0.0.1:0", Arc::clone(&service)).expect("bind localhost");
    (addr, service, server)
}

fn matrix(seed: u64) -> SymCsc {
    grid3d(5, 4, 3, Stencil::Star7, 1, seed)
}

#[test]
fn full_request_cycle_over_tcp() {
    let (addr, service, server) = spawn();
    let mut client = protocol::Client::connect(addr).unwrap();

    let a = matrix(42);
    let n = a.n();

    // analyze: miss, reports sizes.
    let resp = client.analyze(&a).unwrap();
    assert!(resp.ok(), "{}", resp.json);
    assert_eq!(resp.str_field("cache").as_deref(), Some("miss"));
    assert_eq!(resp.num_field("n"), Some(n as f64));
    assert!(resp.num_field("memory_bytes").unwrap() > 0.0);

    // factor: hit on the warmed pattern.
    let resp = client.factor(&a, None, 0).unwrap();
    assert!(resp.ok(), "{}", resp.json);
    assert_eq!(resp.str_field("cache").as_deref(), Some("hit"));
    assert!(resp.num_field("factor_nnz").unwrap() > 0.0);

    // solve: payload is bitwise identical to the in-process path.
    let ones = vec![1.0; n];
    let mut b = vec![0.0; n];
    a.matvec(&ones, &mut b);
    let resp = client.solve(&a, &b, None, 0).unwrap();
    assert!(resp.ok(), "{}", resp.json);
    assert_eq!(resp.payload.len(), n);
    let handle = CholeskySolver::analyze(&a, &SolverOptions::default());
    let fact = handle.factor_with(&a).unwrap();
    let mut want = vec![0.0; n];
    let mut ws = SolveWorkspace::new();
    handle.solve_into(&fact, &b, &mut want, &mut ws).unwrap();
    assert_eq!(resp.payload, want, "wire solve is bitwise the local solve");

    // batch: three SPD value sets, all succeed.
    let sets: Vec<Vec<f64>> = (0..3).map(|i| matrix(60 + i).values().to_vec()).collect();
    let resp = client.batch(&a, &sets, None, 0).unwrap();
    assert!(resp.ok(), "{}", resp.json);
    assert!(
        resp.json.contains("\"batch\":[true,true,true]"),
        "{}",
        resp.json
    );

    // stats reflect the traffic.
    let resp = client.stats().unwrap();
    assert!(resp.ok());
    assert_eq!(resp.num_field("submitted"), Some(4.0));
    assert_eq!(resp.num_field("completed"), Some(4.0));
    assert_eq!(resp.num_field("misses"), Some(1.0));

    // shutdown stops the server; the join completes (no hang).
    let resp = client.shutdown().unwrap();
    assert!(resp.ok());
    drop(client);
    server.join().unwrap().unwrap();
    assert!(service.is_shutdown());
}

#[test]
fn bad_value_sets_and_deadlines_fail_in_band() {
    let (addr, service, server) = spawn();
    let mut client = protocol::Client::connect(addr).unwrap();
    let a = matrix(1);

    // Wrong-length batch value set. In-process it is a typed
    // bad_request; on the wire the frame itself cannot express it
    // (set length is fixed at nnz), so it surfaces as a framing error.
    match service.submit(Request::batch(a.clone(), vec![vec![1.0; 3]])) {
        Err(e) => assert_eq!(e.kind(), "bad_request"),
        Ok(_) => panic!("short value set must be rejected"),
    }

    // A 1 ms deadline on a cold large pattern: the request must come
    // back as a typed deadline/factor shed, never hang. (Analysis of a
    // 20×20×12 grid takes well over a millisecond.)
    let big = grid3d(20, 20, 12, Stencil::Star7, 1, 5);
    let resp = client.factor(&big, None, 1).unwrap();
    assert!(!resp.ok(), "{}", resp.json);
    let kind = resp.str_field("kind").unwrap();
    assert!(
        kind == "deadline" || (kind == "factor" && resp.json.contains("deadline")),
        "expected a deadline-shaped error, got: {}",
        resp.json
    );

    // The connection still serves after in-band errors.
    let resp = client.analyze(&a).unwrap();
    assert!(resp.ok());

    client.shutdown().unwrap();
    drop(client);
    server.join().unwrap().unwrap();
}

#[test]
fn malformed_frames_get_a_protocol_error_then_close() {
    let (addr, _service, server) = spawn();

    // Unknown op byte: answered with kind=protocol, then closed.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[99u8]).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).unwrap();
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut body).unwrap();
    let json_len = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
    let json = std::str::from_utf8(&body[4..4 + json_len]).unwrap();
    assert!(json.contains("\"kind\":\"protocol\""), "{json}");
    assert!(json.contains("unknown op byte 99"), "{json}");
    // The server closed its end after the framing violation.
    let n = raw.read(&mut len).unwrap();
    assert_eq!(n, 0, "connection closed after protocol error");

    // Truncated body (header promises more bytes than sent): the
    // decoder rejects it without hanging.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let a = matrix(1);
    // op=factor, default method, no deadline, then a dimension header
    // promising a matrix that never arrives.
    let mut body = vec![2u8, 0xFF];
    body.extend_from_slice(&0u32.to_le_bytes());
    body.extend_from_slice(&(a.n() as u64).to_le_bytes());
    body.extend_from_slice(&(a.nnz_lower() as u64).to_le_bytes());
    raw.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&body).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).unwrap();
    let mut resp = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut resp).unwrap();
    let json_len = u32::from_le_bytes(resp[..4].try_into().unwrap()) as usize;
    let json = std::str::from_utf8(&resp[4..4 + json_len]).unwrap();
    assert!(json.contains("\"kind\":\"protocol\""), "{json}");
    assert!(json.contains("truncated frame"), "{json}");

    // A fresh, well-formed connection still works.
    let mut client = protocol::Client::connect(addr).unwrap();
    assert!(client.analyze(&a).unwrap().ok());
    client.shutdown().unwrap();
    drop(client);
    drop(raw);
    server.join().unwrap().unwrap();
}

#[test]
fn in_process_and_wire_paths_share_one_service() {
    // The same Service instance serves in-process submits and TCP
    // clients; the cache is shared across both.
    let (addr, service, server) = spawn();
    let a = matrix(7);
    service
        .submit(Request::analyze(a.clone()))
        .expect("in-process analyze");
    let mut client = protocol::Client::connect(addr).unwrap();
    let resp = client.factor(&a, None, 0).unwrap();
    assert!(resp.ok());
    assert_eq!(
        resp.str_field("cache").as_deref(),
        Some("hit"),
        "wire request hits the handle the in-process request warmed"
    );
    client.shutdown().unwrap();
    drop(client);
    server.join().unwrap().unwrap();
}
