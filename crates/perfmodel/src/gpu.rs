//! GPU (A100-class) kernel and PCIe transfer cost model.

use crate::trace::TraceOp;

/// Transfer direction over the host-device interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// Roofline cost model for GPU BLAS kernels plus a PCIe transfer model.
///
/// Kernels: `t = launch_overhead + f / min(peak, hbm_bandwidth · f/b)`.
/// Transfers: `t = transfer_latency + bytes / transfer_bandwidth` — the
/// asymmetry the paper leans on: per-transfer *latency* is negligible next
/// to *bandwidth* once update matrices are large (§IV-B, the RLB v1 vs v2
/// comparison).
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    /// Peak double-precision rate, flops/s (MAGMA DGEMM-class kernels on
    /// A100 use the FP64 tensor pipeline).
    pub peak: f64,
    /// Device memory (HBM2e) bandwidth, bytes/s.
    pub hbm_bandwidth: f64,
    /// Per-kernel launch + MAGMA dispatch overhead, seconds.
    pub launch_overhead: f64,
    /// Host-device transfer latency per operation, seconds.
    pub transfer_latency: f64,
    /// Host-device transfer bandwidth, bytes/s (PCIe 4.0 x16-class).
    pub transfer_bandwidth: f64,
    /// Small-kernel inefficiency, expressed as extra flops every kernel
    /// "wastes" before reaching peak throughput: the effective time is
    /// `launch + (f + small_kernel_flops) / rate`. At full scale this
    /// reproduces the ~quarter-millisecond floor MAGMA-class libraries
    /// show on tiny DPOTRF/DSYRK calls — the reason the paper keeps small
    /// supernodes on the CPU (§III).
    pub small_kernel_flops: f64,
    /// Device memory capacity, bytes (40 GB on the paper's A100s; scaled
    /// down together with the matrix suite in the reproduction).
    pub memory_capacity: u64,
}

impl GpuModel {
    /// Matches the device to a suite shrunk by `s` in linear problem
    /// size: compute rate divided by `s`, fixed per-operation overheads
    /// (kernel launch, transfer latency) by `s²`, bandwidths untouched —
    /// so all modeled times scale uniformly by `1/s²` and every ratio of
    /// the paper is preserved (see
    /// [`CpuModel::scale_compute`](crate::CpuModel::scale_compute)).
    pub fn scale_compute(mut self, s: f64) -> Self {
        self.peak /= s;
        self.launch_overhead /= s * s;
        self.transfer_latency /= s * s;
        // The floor time small_kernel_flops/(peak/s) must also shrink by
        // 1/s², so the flop-equivalent shrinks by s².
        self.small_kernel_flops /= s * s;
        self
    }

    /// Time of one kernel under the roofline.
    pub fn kernel_time(&self, op: &TraceOp) -> f64 {
        debug_assert!(!op.is_transfer());
        let f = op.flops();
        if f == 0.0 {
            return self.launch_overhead + op.bytes() / self.hbm_bandwidth;
        }
        let intensity = f / op.bytes().max(1.0);
        let rate = self.peak.min(self.hbm_bandwidth * intensity);
        // Small-kernel floor: every launch pays the equivalent of
        // `small_kernel_flops` at peak before streaming at the roofline
        // rate.
        self.launch_overhead + self.small_kernel_flops / self.peak + f / rate
    }

    /// Time of a host-device transfer of `bytes`.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.transfer_latency + bytes as f64 / self.transfer_bandwidth
    }

    /// Cost of any trace record executed on/with the device.
    pub fn op_time(&self, op: &TraceOp) -> f64 {
        match *op {
            TraceOp::H2D { bytes } | TraceOp::D2H { bytes } => self.transfer_time(bytes),
            _ => self.kernel_time(op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{perlmutter_cpu, perlmutter_gpu};

    #[test]
    fn gpu_beats_cpu_on_large_kernels() {
        let g = perlmutter_gpu();
        let c = perlmutter_cpu(128);
        let big = TraceOp::Syrk { n: 4000, k: 2000 };
        assert!(g.kernel_time(&big) < c.op_time(&big) / 2.0);
    }

    #[test]
    fn cpu_beats_gpu_on_tiny_kernels_with_transfers() {
        let g = perlmutter_gpu();
        let c = perlmutter_cpu(8);
        let tiny = TraceOp::Syrk { n: 16, k: 8 };
        // GPU path also pays transfers of the operands.
        let gpu_total =
            g.kernel_time(&tiny) + g.transfer_time(8 * 16 * 8) + g.transfer_time(8 * 16 * 16);
        assert!(gpu_total > c.op_time(&tiny));
    }

    #[test]
    fn single_large_transfer_beats_many_small_only_via_latency() {
        let g = perlmutter_gpu();
        let total_bytes = 512 << 20; // 512 MiB — a large update matrix
        let one = g.transfer_time(total_bytes);
        let many: f64 = (0..64).map(|_| g.transfer_time(total_bytes / 64)).sum();
        // Bandwidth term identical; difference is 63 extra latencies — small
        // relative to the total (the paper's observation that latency is
        // negligible, bandwidth matters).
        assert!(many > one);
        assert!((many - one) / one < 0.05, "latency should be a minor term");
    }

    #[test]
    fn tiny_kernels_pay_the_small_kernel_floor() {
        let g = perlmutter_gpu();
        let tiny = TraceOp::Gemm { m: 8, n: 8, k: 8 };
        let floor = g.launch_overhead + g.small_kernel_flops / g.peak;
        // A tiny kernel costs essentially the floor — which at full scale
        // is the ~230 us MAGMA-class small-call behavior the paper's
        // threshold works around.
        assert!(g.kernel_time(&tiny) >= floor);
        assert!(g.kernel_time(&tiny) < 1.1 * floor);
        assert!(floor > 20.0 * g.launch_overhead);
    }
}
