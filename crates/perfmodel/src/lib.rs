//! # rlchol-perfmodel — calibrated machine models and BLAS traces
//!
//! The paper's experiments ran on a Perlmutter node (2× AMD EPYC 7763 with
//! multithreaded MKL, one NVIDIA A100-40GB with MAGMA over CUDA). Neither
//! that GPU nor 128 CPU cores exist in this reproduction environment, so —
//! per the substitution policy in DESIGN.md — timing is produced by
//! *calibrated cost models* evaluated over the exact BLAS-call/transfer
//! sequence the factorization engines execute:
//!
//! * [`CpuModel`] — roofline-style: a call costs
//!   `overhead + flops / min(compute_rate, bandwidth · intensity)`, where
//!   the compute rate and achievable bandwidth scale sub-linearly with the
//!   thread count (MKL-like). Small calls are bandwidth/overhead bound,
//!   big calls approach peak — reproducing why small supernodes are not
//!   worth offloading and why the best thread count varies per matrix.
//! * [`GpuModel`] — the same roofline with A100-class constants plus a
//!   per-kernel launch overhead, and a PCIe-4.0-like transfer model
//!   (`latency + bytes / bandwidth`) — reproducing why GPU-only variants
//!   lose on small matrices (§IV-B) and why transfer *bandwidth*, not
//!   latency, separates the two RLB variants.
//!
//! [`TraceOp`] records one operation; engines emit traces that can be
//! replayed under any model (e.g. the CPU thread sweep 8…128 used for the
//! paper's "best CPU" baseline) without re-running numerics.

pub mod cpu;
pub mod gpu;
pub mod presets;
pub mod trace;

pub use cpu::CpuModel;
pub use gpu::{GpuModel, TransferDir};
pub use presets::{perlmutter_cpu, perlmutter_gpu, MachineModel, PAPER_THREAD_SWEEP};
pub use trace::{replay_cpu, Trace, TraceOp};
