//! Multithreaded-CPU (MKL-like) cost model.

use crate::trace::TraceOp;

/// Roofline-style cost model for multithreaded BLAS on a dual-socket CPU.
///
/// A call of `f` flops touching `b` bytes costs
///
/// ```text
/// t = overhead(threads) + f / min(R_compute, B_mem · f/b)
/// ```
///
/// with `R_compute = threads · per_core_peak · eff(threads)` and
/// `B_mem = peak_bandwidth · threads / (threads + bw_half_threads)`.
/// The `eff` term models MKL's sub-linear scaling; the bandwidth term
/// saturates once enough cores are active. Small calls are dominated by
/// `overhead` and the bandwidth ceiling, which is why keeping small
/// supernodes on the CPU (and the "best of 8…128 threads" baseline) behave
/// as in the paper.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Active BLAS threads.
    pub threads: usize,
    /// Peak double-precision flops of one core (FMA throughput).
    pub per_core_peak: f64,
    /// Thread-scaling efficiency loss factor (`eff = 1/(1 + c·t)`).
    pub eff_loss_per_thread: f64,
    /// Peak achievable memory bandwidth of the node, bytes/s.
    pub peak_bandwidth: f64,
    /// Thread count at which half the peak bandwidth is reached.
    pub bw_half_threads: f64,
    /// Fixed per-call overhead, seconds.
    pub call_overhead_base: f64,
    /// Additional per-call overhead per thread (fork/join sync), seconds.
    pub call_overhead_per_thread: f64,
    /// Bandwidth used by pure data-movement work (the OpenMP assembly
    /// scatter), bytes/s. Like `peak_bandwidth` it is never reduced by
    /// [`scale_compute`](Self::scale_compute): data volumes shrink with
    /// the square of the linear problem size, so bandwidth-bound work
    /// already scales uniformly with the rest of the model.
    pub scatter_bandwidth: f64,
}

impl CpuModel {
    /// Effective compute rate, flops/s.
    pub fn compute_rate(&self) -> f64 {
        let t = self.threads as f64;
        let eff = 1.0 / (1.0 + self.eff_loss_per_thread * t);
        t * self.per_core_peak * eff
    }

    /// Effective memory bandwidth, bytes/s.
    pub fn bandwidth(&self) -> f64 {
        let t = self.threads as f64;
        self.peak_bandwidth * t / (t + self.bw_half_threads)
    }

    /// Effective scatter (assembly) bandwidth, bytes/s.
    pub fn scatter_rate(&self) -> f64 {
        let t = self.threads as f64;
        self.scatter_bandwidth * t / (t + self.bw_half_threads)
    }

    /// Per-call overhead, seconds.
    pub fn overhead(&self) -> f64 {
        self.call_overhead_base + self.call_overhead_per_thread * self.threads as f64
    }

    /// Matches the machine to a suite shrunk by `s` in linear problem
    /// size. Flops shrink like `s³` and data volumes like `s²`, so
    /// dividing compute rates by `s` and fixed per-call overheads by `s²`
    /// — while keeping every bandwidth untouched — makes *all* modeled
    /// times exactly `1/s²` of their full-scale values: every ratio the
    /// paper reports (speedups, thresholds, latency-vs-bandwidth) is
    /// preserved. See EXPERIMENTS.md.
    pub fn scale_compute(mut self, s: f64) -> Self {
        self.per_core_peak /= s;
        self.call_overhead_base /= s * s;
        self.call_overhead_per_thread /= s * s;
        self
    }

    /// Time for one BLAS call / assembly record under this model.
    pub fn op_time(&self, op: &TraceOp) -> f64 {
        debug_assert!(!op.is_transfer(), "CPU model cannot cost transfers");
        let f = op.flops();
        let b = op.bytes();
        if f == 0.0 {
            // Pure data movement (assembly scatter): bandwidth + overhead.
            return self.overhead() + b / self.scatter_rate();
        }
        let intensity = f / b.max(1.0);
        let rate = self.compute_rate().min(self.bandwidth() * intensity);
        self.overhead() + f / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::perlmutter_cpu;

    #[test]
    fn big_gemm_approaches_peak() {
        let m = perlmutter_cpu(128);
        let op = TraceOp::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        let t = m.op_time(&op);
        let achieved = op.flops() / t;
        assert!(achieved > 0.5 * m.compute_rate());
    }

    #[test]
    fn tiny_calls_are_overhead_bound() {
        let m = perlmutter_cpu(128);
        let op = TraceOp::Gemm { m: 4, n: 4, k: 4 };
        let t = m.op_time(&op);
        assert!(t > 0.9 * m.overhead());
        let achieved = op.flops() / t;
        assert!(achieved < 0.01 * m.compute_rate());
    }

    #[test]
    fn more_threads_help_large_not_small() {
        let small = TraceOp::Syrk { n: 24, k: 8 };
        let large = TraceOp::Syrk { n: 3000, k: 1500 };
        let t8 = perlmutter_cpu(8);
        let t128 = perlmutter_cpu(128);
        // Large call: 128 threads much faster.
        assert!(t128.op_time(&large) < t8.op_time(&large) / 3.0);
        // Small call: 128 threads no better (sync overhead dominates).
        assert!(t128.op_time(&small) >= t8.op_time(&small));
    }

    #[test]
    fn rates_monotone_in_threads() {
        let mut prev_rate = 0.0;
        for t in [8, 16, 32, 64, 128] {
            let m = perlmutter_cpu(t);
            assert!(m.compute_rate() > prev_rate);
            prev_rate = m.compute_rate();
            assert!(m.bandwidth() <= m.peak_bandwidth);
        }
    }

    #[test]
    fn assembly_costed_by_bandwidth() {
        let m = perlmutter_cpu(8);
        let op = TraceOp::Assemble { entries: 1_000_000 };
        let t = m.op_time(&op);
        let expect = m.overhead() + 24e6 / m.scatter_rate();
        assert!((t - expect).abs() < 1e-12);
    }
}
