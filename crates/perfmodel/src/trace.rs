//! Operation records emitted by the factorization engines.

/// One operation of a factorization, with enough shape information to cost
/// it under any machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceOp {
    /// Dense Cholesky of an `n x n` diagonal block (`DPOTRF`).
    Potrf { n: usize },
    /// Triangular solve with an `m x n` panel against an `n x n` triangle
    /// (`DTRSM`, right/lower/transposed).
    Trsm { m: usize, n: usize },
    /// Symmetric rank-k update of an `n x n` lower triangle with an
    /// `n x k` operand (`DSYRK`).
    Syrk { n: usize, k: usize },
    /// General multiply `C (m x n) += A (m x k) Bᵀ` (`DGEMM`).
    Gemm { m: usize, n: usize, k: usize },
    /// CPU-side scatter-add of `entries` update entries into factor
    /// storage (the assembly loops the paper parallelizes with OpenMP).
    Assemble { entries: usize },
    /// Host-to-device transfer.
    H2D { bytes: usize },
    /// Device-to-host transfer.
    D2H { bytes: usize },
}

impl TraceOp {
    /// Floating-point operations of the call (0 for transfers/assembly —
    /// assembly is costed by bytes moved, not flops).
    pub fn flops(&self) -> f64 {
        match *self {
            TraceOp::Potrf { n } => {
                let n = n as f64;
                n * n * n / 3.0 + n * n / 2.0 + n / 6.0
            }
            TraceOp::Trsm { m, n } => m as f64 * (n as f64) * (n as f64),
            TraceOp::Syrk { n, k } => k as f64 * n as f64 * (n as f64 + 1.0),
            TraceOp::Gemm { m, n, k } => 2.0 * m as f64 * n as f64 * k as f64,
            TraceOp::Assemble { .. } | TraceOp::H2D { .. } | TraceOp::D2H { .. } => 0.0,
        }
    }

    /// Bytes touched by the call (reads + writes of `f64` operands), used
    /// as the roofline bandwidth term.
    pub fn bytes(&self) -> f64 {
        const W: f64 = 8.0;
        match *self {
            TraceOp::Potrf { n } => W * (n * n) as f64,
            TraceOp::Trsm { m, n } => W * (m * n + n * n / 2 + m * n) as f64,
            TraceOp::Syrk { n, k } => W * (n * k + n * n) as f64,
            TraceOp::Gemm { m, n, k } => W * (m * k + n * k + 2 * m * n) as f64,
            // Scatter-add: read update entry + read/write target.
            TraceOp::Assemble { entries } => 3.0 * W * entries as f64,
            TraceOp::H2D { bytes } | TraceOp::D2H { bytes } => bytes as f64,
        }
    }

    /// True for PCIe transfer records.
    pub fn is_transfer(&self) -> bool {
        matches!(self, TraceOp::H2D { .. } | TraceOp::D2H { .. })
    }
}

/// An ordered sequence of operations with named phases for reporting.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Total flops across all records.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(|o| o.flops()).sum()
    }

    /// Number of BLAS calls (excludes transfers and assembly).
    pub fn blas_calls(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| !o.is_transfer() && !matches!(o, TraceOp::Assemble { .. }))
            .count()
    }

    /// Total transferred bytes (both directions).
    pub fn transfer_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match *o {
                TraceOp::H2D { bytes } | TraceOp::D2H { bytes } => bytes as u64,
                _ => 0,
            })
            .sum()
    }
}

/// Serial CPU replay: sums the model cost of every record (transfers are
/// skipped — a CPU-only run performs none).
pub fn replay_cpu(trace: &Trace, cpu: &crate::CpuModel) -> f64 {
    trace
        .ops
        .iter()
        .filter(|o| !o.is_transfer())
        .map(|o| cpu.op_time(o))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_formulas() {
        assert_eq!(TraceOp::Gemm { m: 2, n: 3, k: 4 }.flops(), 48.0);
        assert_eq!(TraceOp::Trsm { m: 10, n: 3 }.flops(), 90.0);
        assert!((TraceOp::Potrf { n: 2 }.flops() - 5.0).abs() < 1e-12);
        assert_eq!(TraceOp::H2D { bytes: 100 }.flops(), 0.0);
    }

    #[test]
    fn trace_aggregates() {
        let mut t = Trace::new();
        t.push(TraceOp::Potrf { n: 4 });
        t.push(TraceOp::H2D { bytes: 256 });
        t.push(TraceOp::D2H { bytes: 128 });
        t.push(TraceOp::Assemble { entries: 10 });
        assert_eq!(t.blas_calls(), 1);
        assert_eq!(t.transfer_bytes(), 384);
        assert!(t.total_flops() > 0.0);
    }

    #[test]
    fn transfer_flags() {
        assert!(TraceOp::H2D { bytes: 1 }.is_transfer());
        assert!(!TraceOp::Syrk { n: 1, k: 1 }.is_transfer());
    }
}
