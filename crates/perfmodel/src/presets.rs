//! Calibrated presets for the paper's test platform (a Perlmutter node).
//!
//! Constants are drawn from public hardware specifications and typical
//! achieved fractions:
//!
//! * **CPU** — 2× AMD EPYC 7763 (64 cores/socket, 2.45 GHz, AVX2 FMA →
//!   39.2 GF/s/core), 16 channels DDR4-3200 (~400 GB/s node read
//!   bandwidth), MKL-like sub-linear thread scaling.
//! * **GPU** — NVIDIA A100-40GB: 9.7 TF/s FP64 (19.5 with FP64 tensor
//!   cores; MAGMA's DGEMM path lands in between → 11 TF/s effective),
//!   1 555 GB/s HBM2e, ~8 µs kernel launch, PCIe 4.0 ×16 (~24 GB/s
//!   effective, ~10 µs per-transfer latency).
//!
//! The device memory capacity defaults to the paper's 40 GB; the synthetic
//! suite scales it down alongside the matrices so capacity effects
//! (nlpkkt120 failing under RL, Table I) reproduce at laptop scale.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;

/// The CPU model at a given MKL thread count (paper sweeps 8…128).
pub fn perlmutter_cpu(threads: usize) -> CpuModel {
    CpuModel {
        threads,
        per_core_peak: 39.2e9,
        // Calibrated against the paper's implied CPU rates: MKL on the
        // supernodal call mix achieves ~0.7-1.4 TF/s at 128 threads (the
        // Table I/II speedups against an 11 TF/s-class device), i.e.
        // eff(128) ~ 0.28.
        eff_loss_per_thread: 0.02,
        peak_bandwidth: 400.0e9,
        bw_half_threads: 12.0,
        call_overhead_base: 2.0e-6,
        call_overhead_per_thread: 2.0e-8,
        scatter_bandwidth: 400.0e9,
    }
}

/// The A100-40GB + MAGMA + PCIe 4.0 model.
pub fn perlmutter_gpu() -> GpuModel {
    GpuModel {
        peak: 11.0e12,
        hbm_bandwidth: 1555.0e9,
        launch_overhead: 8.0e-6,
        transfer_latency: 10.0e-6,
        transfer_bandwidth: 24.0e9,
        // 2.5e9 flops at 11 TF/s ~ 230 us: the observed floor of
        // MAGMA-class small dense kernels on A100.
        small_kernel_flops: 2.5e9,
        memory_capacity: 40 << 30,
    }
}

/// A machine model bundling the CPU (at a fixed thread count) and GPU.
#[derive(Debug, Clone, Copy)]
pub struct MachineModel {
    pub cpu: CpuModel,
    pub gpu: GpuModel,
}

impl MachineModel {
    /// The paper's platform with the given CPU thread count.
    pub fn perlmutter(threads: usize) -> Self {
        MachineModel {
            cpu: perlmutter_cpu(threads),
            gpu: perlmutter_gpu(),
        }
    }

    /// Same platform with a reduced device memory capacity — used by the
    /// scaled suite so that memory-capacity effects reproduce.
    pub fn with_gpu_capacity(mut self, bytes: u64) -> Self {
        self.gpu.memory_capacity = bytes;
        self
    }

    /// Scales both processors' compute rates down by `s` (PCIe terms and
    /// overheads fixed) — the machine-side counterpart of shrinking the
    /// matrix suite, preserving the paper's compute-to-transfer balance.
    pub fn scale_compute(mut self, s: f64) -> Self {
        self.cpu = self.cpu.scale_compute(s);
        self.gpu = self.gpu.scale_compute(s);
        self
    }
}

/// The thread counts the paper sweeps for the CPU baseline.
pub const PAPER_THREAD_SWEEP: [usize; 5] = [8, 16, 32, 64, 128];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_magnitudes() {
        let c = perlmutter_cpu(128);
        assert!(c.compute_rate() > 1.0e12 && c.compute_rate() < 6.0e12);
        let g = perlmutter_gpu();
        assert!(g.peak > c.compute_rate());
        assert_eq!(g.memory_capacity, 40 << 30);
    }

    #[test]
    fn capacity_override() {
        let m = MachineModel::perlmutter(64).with_gpu_capacity(1 << 20);
        assert_eq!(m.gpu.memory_capacity, 1 << 20);
    }

    #[test]
    fn thread_sweep_matches_paper() {
        assert_eq!(PAPER_THREAD_SWEEP, [8, 16, 32, 64, 128]);
    }
}
