//! Elimination trees and postorderings.
//!
//! The elimination tree (Liu, *The role of elimination trees in sparse
//! factorization*, 1990) has `parent(j) = min { i > j : L[i,j] != 0 }`.
//! It is computed directly from `A`'s lower-triangular pattern with the
//! classic path-compression algorithm, without forming `L`.

use crate::NONE;
use rlchol_sparse::SymCsc;

/// The elimination tree of a symmetric matrix, with derived orderings.
#[derive(Debug, Clone)]
pub struct EliminationTree {
    /// `parent[j]` is the etree parent of column `j`, or [`NONE`] for roots.
    pub parent: Vec<usize>,
}

impl EliminationTree {
    /// Computes the elimination tree from the lower-triangular pattern.
    pub fn from_matrix(a: &SymCsc) -> Self {
        let n = a.n();
        let mut parent = vec![NONE; n];
        // ancestor[j]: path-compressed ancestor pointer.
        let mut ancestor = vec![NONE; n];
        // Iterate rows of the strict upper triangle of A, i.e. for each
        // column k of the lower triangle, each off-diagonal row i gives an
        // entry (k, i) in row i's pattern with k < i. Processing columns
        // in order visits each row's entries in increasing column order,
        // which is exactly what the algorithm needs when driven per entry.
        //
        // Classic formulation: for i in 0..n, for each k < i with
        // A[i,k] != 0, walk k's ancestor chain up to i. We realize the
        // traversal row-wise by first building row lists of the strict
        // lower triangle.
        let (rowptr, colind) = strict_lower_rows(a);
        for i in 0..n {
            for &k in &colind[rowptr[i]..rowptr[i + 1]] {
                // Walk from k towards the root, compressing onto i.
                let mut j = k;
                while j != NONE && j < i {
                    let next = ancestor[j];
                    ancestor[j] = i;
                    if next == NONE {
                        parent[j] = i;
                    }
                    j = next;
                }
            }
        }
        EliminationTree { parent }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Children lists, each sorted increasing.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.n()];
        for (j, &p) in self.parent.iter().enumerate() {
            if p != NONE {
                ch[p].push(j);
            }
        }
        ch
    }

    /// Number of children per vertex.
    pub fn child_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.n()];
        for &p in &self.parent {
            if p != NONE {
                c[p] += 1;
            }
        }
        c
    }

    /// A postordering of the forest: returns `post` with `post[k]` = the
    /// vertex in position `k`. Children are visited in increasing order,
    /// so an already-postordered tree yields the identity.
    pub fn postorder(&self) -> Vec<usize> {
        let n = self.n();
        let children = self.children();
        let mut post = Vec::with_capacity(n);
        // Iterative DFS; push children in reverse so the smallest is
        // processed first.
        let mut stack: Vec<(usize, bool)> = Vec::new();
        for r in 0..n {
            if self.parent[r] != NONE {
                continue;
            }
            stack.push((r, false));
            while let Some((v, expanded)) = stack.pop() {
                if expanded {
                    post.push(v);
                } else {
                    stack.push((v, true));
                    for &c in children[v].iter().rev() {
                        stack.push((c, false));
                    }
                }
            }
        }
        debug_assert_eq!(post.len(), n);
        post
    }

    /// True if `post` is a valid postordering of this forest: every vertex
    /// appears once and each parent appears after all vertices of its
    /// subtree.
    pub fn is_postorder(&self, post: &[usize]) -> bool {
        let n = self.n();
        if post.len() != n {
            return false;
        }
        let mut pos = vec![NONE; n];
        for (k, &v) in post.iter().enumerate() {
            if v >= n || pos[v] != NONE {
                return false;
            }
            pos[v] = k;
        }
        // Parents must come after children, and every subtree must occupy
        // a contiguous position interval ending at its root's position.
        // Processing vertices in position order lets each vertex fold its
        // (already-final) subtree size and minimum position into its
        // parent before the parent's own turn.
        let mut size = vec![1usize; n];
        let mut minpos: Vec<usize> = (0..n).map(|v| pos[v]).collect();
        for &v in post {
            if pos[v] + 1 < size[v] || pos[v] + 1 - size[v] != minpos[v] {
                return false; // subtree positions not a contiguous block
            }
            let p = self.parent[v];
            if p != NONE {
                if pos[p] < pos[v] {
                    return false;
                }
                size[p] += size[v];
                minpos[p] = minpos[p].min(minpos[v]);
            }
        }
        true
    }

    /// Relabels the tree under a permutation given as `old_of[new] = old`
    /// (typically a postorder). Returns the parent array in new labels.
    pub fn relabel(&self, old_of: &[usize]) -> Vec<usize> {
        let n = self.n();
        let mut new_of = vec![NONE; n];
        for (new, &old) in old_of.iter().enumerate() {
            new_of[old] = new;
        }
        let mut parent = vec![NONE; n];
        for new in 0..n {
            let old = old_of[new];
            let p = self.parent[old];
            parent[new] = if p == NONE { NONE } else { new_of[p] };
        }
        parent
    }

    /// Depth of each vertex (roots have depth 0). Useful for tests.
    pub fn depths(&self) -> Vec<usize> {
        let n = self.n();
        let mut depth = vec![NONE; n];
        for mut v in 0..n {
            let mut path = Vec::new();
            while depth[v] == NONE {
                path.push(v);
                if self.parent[v] == NONE {
                    depth[v] = 0;
                    break;
                }
                v = self.parent[v];
            }
            let mut d = depth[v];
            for &u in path.iter().rev() {
                if depth[u] == NONE {
                    d += 1;
                    depth[u] = d;
                } else {
                    d = depth[u];
                }
            }
        }
        depth
    }
}

/// Row lists of the strict lower triangle: for each row `i`, the columns
/// `k < i` with `A[i,k] != 0`, sorted increasing. Returns `(rowptr, colind)`.
pub fn strict_lower_rows(a: &SymCsc) -> (Vec<usize>, Vec<usize>) {
    let n = a.n();
    let mut counts = vec![0usize; n];
    for j in 0..n {
        for &i in &a.col_rows(j)[1..] {
            counts[i] += 1;
        }
    }
    let mut rowptr = vec![0usize; n + 1];
    for i in 0..n {
        rowptr[i + 1] = rowptr[i] + counts[i];
    }
    let mut colind = vec![0usize; rowptr[n]];
    let mut next = rowptr.clone();
    for j in 0..n {
        for &i in &a.col_rows(j)[1..] {
            colind[next[i]] = j;
            next[i] += 1;
        }
    }
    (rowptr, colind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_sparse::TripletMatrix;

    /// Builds a SymCsc from strict-lower edges plus unit diagonal.
    fn sym_from_edges(n: usize, edges: &[(usize, usize)]) -> SymCsc {
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
        }
        for &(i, j) in edges {
            assert!(i > j);
            t.push(i, j, -1.0);
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    }

    #[test]
    fn tridiagonal_tree_is_a_path() {
        let a = sym_from_edges(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        let t = EliminationTree::from_matrix(&a);
        assert_eq!(t.parent, vec![1, 2, 3, 4, NONE]);
    }

    #[test]
    fn arrow_matrix_tree_is_a_star_through_fill() {
        // Arrow pointing at the last column: every column connects to n-1,
        // no fill; parents all n-1.
        let a = sym_from_edges(4, &[(3, 0), (3, 1), (3, 2)]);
        let t = EliminationTree::from_matrix(&a);
        assert_eq!(t.parent, vec![3, 3, 3, NONE]);
    }

    #[test]
    fn fill_creates_paths() {
        // Columns 0-1 connected, 0-2 connected: eliminating 0 fills (2,1),
        // so parent(1) = 2 even though A[2,1] = 0.
        let a = sym_from_edges(3, &[(1, 0), (2, 0)]);
        let t = EliminationTree::from_matrix(&a);
        assert_eq!(t.parent, vec![1, 2, NONE]);
    }

    #[test]
    fn known_liu_example() {
        // The 15x15 example of the paper (Fig. 1) exercised in the
        // integration tests; here a small handmade case:
        // A with edges (2,0), (3,1), (4,2), (4,3).
        let a = sym_from_edges(5, &[(2, 0), (3, 1), (4, 2), (4, 3)]);
        let t = EliminationTree::from_matrix(&a);
        assert_eq!(t.parent, vec![2, 3, 4, 4, NONE]);
    }

    #[test]
    fn postorder_is_valid_on_branching_tree() {
        let a = sym_from_edges(5, &[(2, 0), (3, 1), (4, 2), (4, 3)]);
        let t = EliminationTree::from_matrix(&a);
        let post = t.postorder();
        assert!(t.is_postorder(&post));
        // Subtrees {0,2} and {1,3} are kept contiguous.
        assert_eq!(post, vec![0, 2, 1, 3, 4]);
        // The identity interleaves the two subtrees, so it is NOT a
        // postorder of this tree even though parents follow children.
        assert!(!t.is_postorder(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn postorder_is_identity_on_chains() {
        let a = sym_from_edges(4, &[(1, 0), (2, 1), (3, 2)]);
        let t = EliminationTree::from_matrix(&a);
        let post = t.postorder();
        assert!(t.is_postorder(&post));
        assert_eq!(post, vec![0, 1, 2, 3]);
    }

    #[test]
    fn postorder_handles_forests() {
        // Two disconnected components.
        let a = sym_from_edges(4, &[(1, 0), (3, 2)]);
        let t = EliminationTree::from_matrix(&a);
        let post = t.postorder();
        assert!(t.is_postorder(&post));
        assert_eq!(post.len(), 4);
    }

    #[test]
    fn is_postorder_rejects_bad_orders() {
        let a = sym_from_edges(3, &[(1, 0), (2, 1)]);
        let t = EliminationTree::from_matrix(&a);
        assert!(!t.is_postorder(&[2, 1, 0])); // parent before child
        assert!(!t.is_postorder(&[0, 0, 1])); // duplicate
        assert!(!t.is_postorder(&[0, 1])); // wrong length
    }

    #[test]
    fn relabel_by_postorder_yields_monotone_parents() {
        // Build a tree that is NOT postordered: edges force parent(0)=2,
        // parent(2)=... scramble by using edges (2,0),(2,1) then (3,2) etc.
        let a = sym_from_edges(5, &[(4, 0), (2, 1), (4, 2), (3, 0)]);
        let t = EliminationTree::from_matrix(&a);
        let post = t.postorder();
        let newpar = t.relabel(&post);
        for (j, &p) in newpar.iter().enumerate() {
            if p != NONE {
                assert!(p > j, "parent {p} not after child {j}");
            }
        }
    }

    #[test]
    fn depths_consistent_with_parents() {
        let a = sym_from_edges(5, &[(2, 0), (3, 1), (4, 2), (4, 3)]);
        let t = EliminationTree::from_matrix(&a);
        let d = t.depths();
        for j in 0..5 {
            if t.parent[j] != NONE {
                assert_eq!(d[j], d[t.parent[j]] + 1);
            }
        }
        assert_eq!(d[4], 0);
    }

    #[test]
    fn strict_lower_rows_inverts_columns() {
        let a = sym_from_edges(4, &[(1, 0), (3, 0), (3, 2)]);
        let (rowptr, colind) = strict_lower_rows(&a);
        assert_eq!(&colind[rowptr[3]..rowptr[4]], &[0, 2]);
        assert_eq!(&colind[rowptr[1]..rowptr[2]], &[0]);
        assert_eq!(rowptr[1], rowptr[0]); // row 0 empty
    }
}
