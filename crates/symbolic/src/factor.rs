//! The symbolic-analysis driver: postorder → supernodes → merge → PR.
//!
//! [`analyze`] consumes a symmetrically permuted SPD matrix (typically the
//! output of a fill-reducing ordering) and produces a [`SymbolicFactor`]:
//! everything the numeric engines need, plus the composed permutation the
//! caller must apply to the matrix before loading numeric values.

use std::time::{Duration, Instant};

use crate::blocks::{row_blocks, RowBlock};
use crate::colcount::col_counts_par;
use crate::etree::EliminationTree;
use crate::merge::merge_supernodes;
use crate::pr::refine_partition;
use crate::supernodes::{find_supernodes, supernodal_etree, supernode_rows};
use crate::NONE;
use rlchol_sparse::{Permutation, SymCsc};

/// Options controlling the symbolic pipeline (defaults follow the paper).
#[derive(Debug, Clone, Copy)]
pub struct SymbolicOptions {
    /// Use fundamental (finer) supernodes instead of maximal ones.
    pub fundamental: bool,
    /// Run relaxed supernode amalgamation.
    pub merge: bool,
    /// Storage growth cap for amalgamation (paper: 0.25 = 25 %).
    pub merge_growth_cap: f64,
    /// Run partition-refinement column reordering within supernodes.
    pub partition_refine: bool,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            fundamental: false,
            merge: true,
            merge_growth_cap: 0.25,
            partition_refine: true,
        }
    }
}

/// Wall time of each symbolic stage, reported by
/// [`analyze_instrumented`] so first-contact latency can be attributed
/// (the service's cache-miss path and the CLI `analyze` breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeStages {
    /// Elimination tree + postorder + the postorder permute (the fused
    /// serial front of the pipeline).
    pub etree: Duration,
    /// Exact column counts (parallel when `threads > 1`).
    pub colcount: Duration,
    /// Supernode detection, row structures, amalgamation and partition
    /// refinement.
    pub merge: Duration,
    /// Per-supernode row-block decomposition, supernodal etree and the
    /// nnz/flop totals (parallel when `threads > 1`).
    pub relind: Duration,
}

/// Aggregate statistics of the symbolic phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolicStats {
    /// Supernodes before amalgamation.
    pub nsup_before_merge: usize,
    /// Pairwise merges performed.
    pub merges: usize,
    /// Explicit zeros introduced by amalgamation (factor entries).
    pub merge_extra_fill: u64,
    /// Row blocks before partition refinement.
    pub blocks_before_pr: usize,
    /// Row blocks after partition refinement.
    pub blocks_after_pr: usize,
}

/// The symbolic factorization: supernode partition, row structures,
/// supernodal elimination tree, block decomposition and size/flop counts.
///
/// `PartialEq` compares every field (including the composed permutation
/// and the per-supernode block lists), which is how the parallel-analyze
/// tests and the `analyze_scaling` bench assert bit-identity against the
/// serial pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicFactor {
    /// Matrix dimension.
    pub n: usize,
    /// Composed permutation from the *input* ordering of [`analyze`] to
    /// the final factor ordering (postorder ∘ merge ∘ PR). Apply to the
    /// input matrix before numeric factorization.
    pub perm: Permutation,
    /// Supernode partition in factor ordering.
    pub sn: crate::supernodes::SupernodePartition,
    /// Below-diagonal row structure per supernode (sorted, factor order).
    pub rows: Vec<Vec<usize>>,
    /// Supernodal elimination tree (parent supernode or [`NONE`]).
    pub sn_parent: Vec<usize>,
    /// Row-block decomposition per supernode (what RLB iterates over).
    pub blocks: Vec<Vec<RowBlock>>,
    /// Factor nonzeros (lower triangle incl. diagonal, with explicit
    /// zeros from amalgamation).
    pub nnz: u64,
    /// Factorization flops (POTRF + TRSM + SYRK per supernode).
    pub flops: f64,
    /// Phase statistics.
    pub stats: SymbolicStats,
}

impl SymbolicFactor {
    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.sn.nsup()
    }

    /// Column count of supernode `s`.
    pub fn sn_ncols(&self, s: usize) -> usize {
        self.sn.ncols(s)
    }

    /// Below-diagonal row count of supernode `s`.
    pub fn sn_nrows_below(&self, s: usize) -> usize {
        self.rows[s].len()
    }

    /// Length (dense array row dimension) of supernode `s`: columns plus
    /// below-diagonal rows.
    pub fn sn_len(&self, s: usize) -> usize {
        self.sn_ncols(s) + self.rows[s].len()
    }

    /// The paper's "supernode size": number of columns × length. This is
    /// the quantity compared against the CPU/GPU offload threshold
    /// (600 000 for RL, 750 000 for RLB in the paper's runs).
    pub fn sn_size(&self, s: usize) -> usize {
        self.sn_ncols(s) * self.sn_len(s)
    }

    /// Dense storage (in `f64` entries) of supernode `s`'s array.
    pub fn sn_storage(&self, s: usize) -> usize {
        self.sn_size(s)
    }

    /// Size (entries) of the dense update matrix RL computes for `s`:
    /// a `r x r` lower triangle stored as a full square array.
    pub fn update_matrix_entries(&self, s: usize) -> usize {
        let r = self.rows[s].len();
        r * r
    }

    /// Largest update matrix over all supernodes (drives RL's temporary
    /// storage, and its GPU memory footprint).
    pub fn max_update_matrix_entries(&self) -> usize {
        (0..self.nsup())
            .map(|s| self.update_matrix_entries(s))
            .max()
            .unwrap_or(0)
    }

    /// Total dense storage of all supernode arrays.
    pub fn total_storage_entries(&self) -> u64 {
        (0..self.nsup()).map(|s| self.sn_storage(s) as u64).sum()
    }

    /// Heap bytes held by the symbolic structure itself: the composed
    /// permutation, the supernode partition and tree, the per-supernode
    /// row lists and row-block decompositions. Counts element storage
    /// (plus the per-`Vec` headers of the jagged lists), not allocator
    /// slack — the estimate a cache accounting resident handles needs.
    pub fn memory_bytes(&self) -> u64 {
        let usz = std::mem::size_of::<usize>() as u64;
        let vec_hdr = 3 * usz;
        let mut bytes = 2 * self.n as u64 * usz; // perm: old_of + new_of
        bytes += (self.sn.sn_start.len() + self.sn.col_to_sn.len()) as u64 * usz;
        bytes += self.sn_parent.len() as u64 * usz;
        for rows in &self.rows {
            bytes += vec_hdr + rows.len() as u64 * usz;
        }
        let block = std::mem::size_of::<RowBlock>() as u64;
        for blocks in &self.blocks {
            bytes += vec_hdr + blocks.len() as u64 * block;
        }
        bytes
    }

    /// Internal consistency check (debug/test helper). Verifies partition
    /// validity, row ordering, topological rows, and block coverage.
    pub fn validate(&self) -> Result<(), String> {
        if self.sn.n() != self.n {
            return Err("partition does not cover n columns".into());
        }
        for s in 0..self.nsup() {
            let last = self.sn.end_col(s) - 1;
            let rows = &self.rows[s];
            for w in rows.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("rows of supernode {s} not sorted"));
                }
            }
            if let Some(&first) = rows.first() {
                if first <= last {
                    return Err(format!("supernode {s} has row above its last column"));
                }
                let p = self.sn.col_to_sn[first];
                if self.sn_parent[s] != p {
                    return Err(format!("supernode {s} parent mismatch"));
                }
            } else if self.sn_parent[s] != NONE {
                return Err(format!("rootless supernode {s} has a parent"));
            }
            let covered: usize = self.blocks[s].iter().map(|b| b.len).sum();
            if covered != rows.len() {
                return Err(format!("blocks of supernode {s} do not cover its rows"));
            }
        }
        Ok(())
    }
}

/// Flops of factoring one supernode with `c` columns and `r` rows below:
/// dense POTRF on the `c x c` triangle, TRSM on the `r x c` panel, and the
/// SYRK forming its `r x r` update.
pub fn supernode_flops(c: usize, r: usize) -> f64 {
    let (c, r) = (c as f64, r as f64);
    let potrf = c * c * c / 3.0 + c * c / 2.0 + c / 6.0;
    let trsm = r * c * c;
    let syrk = c * r * (r + 1.0);
    potrf + trsm + syrk
}

/// Runs the full symbolic pipeline on a (fill-ordered) matrix.
pub fn analyze(a: &SymCsc, opts: &SymbolicOptions) -> SymbolicFactor {
    analyze_par(a, opts, 1)
}

/// [`analyze`] with the count/relind stages split into `threads`
/// chunks on [`rlchol_dense::pool`]. The result is **bit-identical** to
/// the serial pipeline at every thread count — parallelism only moves
/// independent per-row walks and per-supernode decompositions between
/// lanes (see [`col_counts_par`]); `threads <= 1` *is* the serial path.
pub fn analyze_par(a: &SymCsc, opts: &SymbolicOptions, threads: usize) -> SymbolicFactor {
    analyze_instrumented(a, opts, threads).0
}

/// [`analyze_par`] that also reports per-stage wall times.
pub fn analyze_instrumented(
    a: &SymCsc,
    opts: &SymbolicOptions,
    threads: usize,
) -> (SymbolicFactor, AnalyzeStages) {
    let n = a.n();
    let mut stages = AnalyzeStages::default();
    // Phase 1: postorder so supernodes come out contiguous. The
    // postordered matrix's etree is the *relabelled* original tree
    // (Liu: equivalent — topological — reorderings preserve the
    // elimination tree), so the second `from_matrix` traversal the
    // pipeline used to run is fused into a single relabel pass.
    let t = Instant::now();
    let t0 = EliminationTree::from_matrix(a);
    let post = t0.postorder();
    let t1 = EliminationTree {
        parent: t0.relabel(&post),
    };
    let p1 = Permutation::from_old_of(post).expect("postorder is a bijection");
    let a1 = a.permute(&p1);
    stages.etree = t.elapsed();

    // Phase 2: counts and supernodes on the postordered matrix.
    let t = Instant::now();
    let counts = col_counts_par(&a1, &t1, threads);
    stages.colcount = t.elapsed();
    let t = Instant::now();
    let sn0 = find_supernodes(&t1, &counts, opts.fundamental);
    let rows0 = supernode_rows(&a1, &sn0);
    let nsup_before_merge = sn0.nsup();

    // Phase 3: amalgamation. Note that even a cap of 0.0 performs *free*
    // merges (e.g. a child whose rows are exactly its parent's columns,
    // made adjacent by the accompanying topological reordering), so
    // `merge: false` skips the phase entirely.
    let (p2, sn1, rows1, merges, merge_extra_fill) = if opts.merge {
        let m = merge_supernodes(&sn0, &rows0, opts.merge_growth_cap);
        (m.perm, m.sn, m.rows, m.merges, m.extra_fill)
    } else {
        (Permutation::identity(n), sn0, rows0, 0, 0)
    };

    // Phase 4: partition refinement within supernodes.
    let (p3, sn2, rows2, blocks_before_pr, blocks_after_pr) = if opts.partition_refine {
        let r = refine_partition(&sn1, &rows1);
        (r.perm, sn1, r.rows, r.blocks_before, r.blocks_after)
    } else {
        let b = crate::blocks::total_blocks(&rows1, &sn1);
        (Permutation::identity(n), sn1, rows1, b, b)
    };

    // Compose: input → postorder → merge-reorder → PR.
    let perm = p3.compose(&p2).compose(&p1);
    stages.merge = t.elapsed();

    // Phase 5: per-supernode structure — the supernodal tree, the
    // row-block decompositions RLB iterates over, and the size totals.
    // Each supernode's decomposition is independent, so `threads > 1`
    // fills contiguous chunks of the `blocks` table on the pool (every
    // slot computed by the same `row_blocks` call as the serial loop).
    let t = Instant::now();
    let sn_parent = supernodal_etree(&sn2, &rows2);
    let nsup = sn2.nsup();
    let mut blocks: Vec<Vec<RowBlock>> = Vec::with_capacity(nsup);
    if threads > 1 && nsup >= 2 * threads {
        blocks.resize_with(nsup, Vec::new);
        let chunk = nsup.div_ceil(threads);
        let sn_ref = &sn2;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = blocks
            .chunks_mut(chunk)
            .zip(rows2.chunks(chunk))
            .map(|(bs, rs)| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    for (b, r) in bs.iter_mut().zip(rs) {
                        *b = row_blocks(r, sn_ref);
                    }
                });
                task
            })
            .collect();
        rlchol_dense::pool::global().run(tasks);
    } else {
        blocks.extend(rows2.iter().map(|r| row_blocks(r, &sn2)));
    }
    let mut nnz = 0u64;
    let mut flops = 0.0f64;
    for s in 0..nsup {
        let c = sn2.ncols(s);
        let r = rows2[s].len();
        nnz += (c * (c + 1) / 2 + c * r) as u64;
        flops += supernode_flops(c, r);
    }
    stages.relind = t.elapsed();

    let factor = SymbolicFactor {
        n,
        perm,
        sn: sn2,
        rows: rows2,
        sn_parent,
        blocks,
        nnz,
        flops,
        stats: SymbolicStats {
            nsup_before_merge,
            merges,
            merge_extra_fill,
            blocks_before_pr,
            blocks_after_pr,
        },
    };
    (factor, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supernodes::paper_fig1_edges;
    use rlchol_sparse::TripletMatrix;

    fn sym_from_edges(n: usize, edges: &[(usize, usize)]) -> SymCsc {
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
        }
        for &(i, j) in edges {
            t.push(i.max(j), i.min(j), -1.0);
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    }

    fn opts_plain() -> SymbolicOptions {
        SymbolicOptions {
            fundamental: false,
            merge: false,
            merge_growth_cap: 0.0,
            partition_refine: false,
        }
    }

    #[test]
    fn fig1_analyze_no_merge_matches_paper() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let f = analyze(&a, &opts_plain());
        f.validate().unwrap();
        assert_eq!(f.nsup(), 6);
        // Supernode widths multiset {2,2,3,2,3,3}.
        let mut widths: Vec<usize> = (0..f.nsup()).map(|s| f.sn_ncols(s)).collect();
        widths.sort_unstable();
        assert_eq!(widths, vec![2, 2, 2, 3, 3, 3]);
        // Factor entries: per supernode triangles + rectangles.
        assert!(f.nnz > 0);
        assert!(f.flops > 0.0);
    }

    #[test]
    fn analyze_with_all_phases_remains_valid() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let f = analyze(&a, &SymbolicOptions::default());
        f.validate().unwrap();
        assert!(f.nsup() <= 6);
        assert!(f.stats.blocks_after_pr <= f.stats.blocks_before_pr);
    }

    /// Random connected SPD-shaped pattern for the parallel sweeps.
    fn random_sym(n: usize, seed: u64) -> SymCsc {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push((i, rng.random_range(0..i)));
            for _ in 0..2 {
                let a = rng.random_range(0..n);
                let b = rng.random_range(0..n);
                if a != b {
                    edges.push((a.max(b), a.min(b)));
                }
            }
        }
        sym_from_edges(n, &edges)
    }

    #[test]
    fn analyze_par_is_bit_identical_to_serial() {
        for (n, seed) in [(15usize, 1u64), (60, 2), (150, 3)] {
            let a = if seed == 1 {
                sym_from_edges(15, &paper_fig1_edges())
            } else {
                random_sym(n, seed)
            };
            for opts in [opts_plain(), SymbolicOptions::default()] {
                let serial = analyze(&a, &opts);
                for threads in [2usize, 4, 8] {
                    let par = analyze_par(&a, &opts, threads);
                    assert_eq!(par, serial, "n={n} threads={threads} opts={opts:?}");
                }
            }
        }
    }

    #[test]
    fn postorder_relabel_matches_refactoring_the_permuted_matrix() {
        // The fused etree pass rests on this identity: the permuted
        // matrix's tree IS the relabelled original tree.
        for seed in [4u64, 5, 6] {
            let a = random_sym(80, seed);
            let t0 = EliminationTree::from_matrix(&a);
            let post = t0.postorder();
            let relabelled = t0.relabel(&post);
            let p1 = Permutation::from_old_of(post).unwrap();
            let a1 = a.permute(&p1);
            assert_eq!(
                relabelled,
                EliminationTree::from_matrix(&a1).parent,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn instrumented_stages_cover_the_pipeline() {
        let a = random_sym(120, 9);
        let (f, stages) = analyze_instrumented(&a, &SymbolicOptions::default(), 2);
        f.validate().unwrap();
        // Every stage ran (durations are measured, possibly tiny).
        let total = stages.etree + stages.colcount + stages.merge + stages.relind;
        assert!(total > Duration::ZERO);
    }

    #[test]
    fn permutation_round_trips_matrix_values() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let f = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&f.perm);
        for i in 0..15 {
            for j in 0..15 {
                assert_eq!(
                    ap.get(f.perm.new_of(i), f.perm.new_of(j)),
                    a.get(i, j),
                    "entry ({i},{j}) lost under composed permutation"
                );
            }
        }
    }

    #[test]
    fn merging_only_grows_storage_within_cap() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let plain = analyze(&a, &opts_plain());
        let merged = analyze(
            &a,
            &SymbolicOptions {
                merge: true,
                merge_growth_cap: 0.25,
                ..opts_plain()
            },
        );
        assert!(merged.nnz >= plain.nnz);
        assert!((merged.nnz as f64) <= (plain.nnz as f64) * 1.25 + 1.0);
        assert!(merged.nsup() <= plain.nsup());
    }

    #[test]
    fn update_matrix_sizing() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let f = analyze(&a, &opts_plain());
        // Largest below-diagonal row count is 3 → update matrix 3x3 = 9.
        assert_eq!(f.max_update_matrix_entries(), 9);
        assert!(f.total_storage_entries() > 0);
    }

    #[test]
    fn supernode_size_is_cols_times_length() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let f = analyze(&a, &opts_plain());
        for s in 0..f.nsup() {
            assert_eq!(f.sn_size(s), f.sn_ncols(s) * f.sn_len(s));
        }
    }

    #[test]
    fn flops_formula_small_cases() {
        // c=1, r=0: a single sqrt bucket.
        assert!((supernode_flops(1, 0) - 1.0).abs() < 1e-12);
        // Larger supernodes dominate cubically.
        assert!(supernode_flops(100, 0) > supernode_flops(10, 0) * 100.0);
    }
}
