//! # rlchol-symbolic — symbolic analysis for supernodal sparse Cholesky
//!
//! Everything the numeric factorization needs to know about the *structure*
//! of the Cholesky factor `L` of a symmetrically permuted SPD matrix:
//!
//! * [`etree`] — the elimination tree (Liu) and postorderings;
//! * [`colcount`] — exact column counts of `L` via row-subtree traversal;
//! * [`supernodes`] — fundamental supernodes (Liu–Ng–Peyton) and their
//!   below-diagonal row structures;
//! * [`merge`] — relaxed supernode amalgamation (Ashcraft–Grimes) with the
//!   paper's 25 % storage-growth cap and min-fill pair selection;
//! * [`pr`] — partition-refinement reordering of columns *within*
//!   supernodes (Jacquelin–Ng–Peyton), which shrinks the number of
//!   row blocks RLB issues BLAS calls for;
//! * [`relind`] — relative indices `relind(J, J′)` (Schreiber) used to
//!   scatter updates from a supernode into its ancestors;
//! * [`blocks`] — the maximal dense row-block structure RLB iterates over;
//! * [`factor`] — the [`SymbolicFactor`](factor::SymbolicFactor) driver
//!   tying the phases together.
//!
//! The pipeline mirrors §IV-A of the paper: fundamental supernode
//! partition → supernode merging (stop at +25 % storage) → partition
//! refinement.

pub mod blocks;
pub mod colcount;
pub mod etree;
pub mod factor;
pub mod merge;
pub mod pr;
pub mod relind;
pub mod supernodes;

pub use etree::EliminationTree;
pub use factor::{
    analyze, analyze_instrumented, analyze_par, AnalyzeStages, SymbolicFactor, SymbolicOptions,
};
pub use supernodes::SupernodePartition;

/// Sentinel for "no parent" in tree arrays.
pub const NONE: usize = usize::MAX;
