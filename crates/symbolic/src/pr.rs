//! Partition-refinement reordering of columns within supernodes
//! (Jacquelin–Ng–Peyton, *Fast and effective reordering of columns within
//! supernodes using partition refinement*, CSC 2018).
//!
//! Reordering the columns *inside* a supernode changes no fill (the
//! diagonal block is dense and every column shares the below-supernode
//! structure), but it changes whether the rows each descendant supernode
//! updates are **contiguous** — i.e. how many [`RowBlock`]s
//! (crate::blocks::RowBlock) RLB has to issue BLAS calls for.
//!
//! For every target supernode `P`, each descendant `J` that updates `P`
//! contributes the subset `S(J, P) = rows(J) ∩ cols(P)`. Processing these
//! subsets through a partition-refinement sweep groups columns touched by
//! the same descendants next to each other; ordering subsets from largest
//! to smallest gives the big updaters the best contiguity, which is the
//! variant recommended in the paper's companion reference [12].

use crate::blocks::total_blocks;
use crate::supernodes::SupernodePartition;
use rlchol_sparse::Permutation;

/// Result of the partition-refinement phase.
#[derive(Debug, Clone)]
pub struct PrResult {
    /// Global permutation (identity outside supernode interiors).
    pub perm: Permutation,
    /// Remapped row structures (same sets, renumbered and re-sorted).
    pub rows: Vec<Vec<usize>>,
    /// Total row blocks before refinement.
    pub blocks_before: usize,
    /// Total row blocks after refinement.
    pub blocks_after: usize,
}

/// Runs partition refinement on every supernode's column range.
pub fn refine_partition(sn: &SupernodePartition, rows: &[Vec<usize>]) -> PrResult {
    let n = sn.n();
    let nsup = sn.nsup();
    let blocks_before = total_blocks(rows, sn);

    // Gather subsets per target supernode: S(J, P) = rows(J) ∩ cols(P).
    let mut subsets: Vec<Vec<Vec<usize>>> = vec![Vec::new(); nsup];
    for rj in rows.iter() {
        let mut k = 0usize;
        while k < rj.len() {
            let target = sn.col_to_sn[rj[k]];
            let end = sn.end_col(target);
            let mut seg = Vec::new();
            while k < rj.len() && rj[k] < end {
                seg.push(rj[k]);
                k += 1;
            }
            subsets[target].push(seg);
        }
    }

    // Refine each supernode independently; build the global permutation.
    let mut old_of: Vec<usize> = (0..n).collect();
    let mut in_set = vec![false; n];
    for p in 0..nsup {
        let (f, e) = (sn.first_col(p), sn.end_col(p));
        if e - f <= 1 || subsets[p].is_empty() {
            continue;
        }
        let mut sets = std::mem::take(&mut subsets[p]);
        // Largest updaters first.
        sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
        let mut classes: Vec<Vec<usize>> = vec![(f..e).collect()];
        for s in &sets {
            if s.len() == e - f {
                continue; // touches everything: refines nothing
            }
            for &c in s {
                in_set[c] = true;
            }
            let mut next = Vec::with_capacity(classes.len() + 1);
            for class in classes.drain(..) {
                let (inside, outside): (Vec<usize>, Vec<usize>) =
                    class.iter().partition(|&&c| in_set[c]);
                if inside.is_empty() || outside.is_empty() {
                    next.push(if inside.is_empty() { outside } else { inside });
                } else {
                    next.push(inside);
                    next.push(outside);
                }
            }
            classes = next;
            for &c in s {
                in_set[c] = false;
            }
        }
        // Monotonicity guard: only adopt the refined order if it does
        // not increase the number of runs the updaters see (the largest-
        // first heuristic can fragment small interleaved subsets).
        let proposed: Vec<usize> = classes.into_iter().flatten().collect();
        let runs_of = |order: &dyn Fn(usize) -> usize| -> usize {
            // Position of each column under the candidate order.
            sets.iter()
                .map(|s| {
                    let mut ps: Vec<usize> = s.iter().map(|&c| order(c)).collect();
                    ps.sort_unstable();
                    1 + ps.windows(2).filter(|w| w[1] != w[0] + 1).count()
                })
                .sum()
        };
        let mut new_pos = vec![0usize; e - f];
        for (k, &c) in proposed.iter().enumerate() {
            new_pos[c - f] = k;
        }
        let before = runs_of(&|c: usize| c);
        let after = runs_of(&|c: usize| new_pos[c - f]);
        if after <= before {
            old_of[f..e].copy_from_slice(&proposed);
        }
    }

    let perm = Permutation::from_old_of(old_of).expect("PR reordering is a bijection");
    let new_rows: Vec<Vec<usize>> = rows
        .iter()
        .map(|r| {
            let mut m: Vec<usize> = r.iter().map(|&i| perm.new_of(i)).collect();
            m.sort_unstable();
            m
        })
        .collect();
    let blocks_after = total_blocks(&new_rows, sn);
    PrResult {
        perm,
        rows: new_rows,
        blocks_before,
        blocks_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_updaters_get_grouped() {
        // One target supernode covering columns 0..6; two updaters hitting
        // {0, 2, 4} and {1, 3, 5}: 3 blocks each before PR, 1 each after.
        let sn = SupernodePartition::from_starts(vec![0, 6, 8]);
        let rows = vec![vec![0, 2, 4], vec![1, 3, 5], vec![]];
        // rows[0]/rows[1] describe updaters living in supernode 1's
        // columns? They must come from *other* supernodes; structure-wise
        // only the sets matter here, so attach them to supernode index 0/1
        // is irrelevant — we pass them as the global rows table.
        let r = refine_partition(&sn, &rows);
        assert_eq!(r.blocks_before, 6);
        assert_eq!(r.blocks_after, 2);
        // Sets preserved.
        for (old, new) in rows.iter().zip(&r.rows) {
            let mut mapped: Vec<usize> = old.iter().map(|&i| r.perm.new_of(i)).collect();
            mapped.sort_unstable();
            assert_eq!(&mapped, new);
        }
    }

    #[test]
    fn identity_when_already_contiguous() {
        let sn = SupernodePartition::from_starts(vec![0, 4, 8]);
        let rows = vec![vec![4, 5], vec![]];
        let r = refine_partition(&sn, &rows);
        assert_eq!(r.blocks_before, r.blocks_after);
        assert_eq!(r.blocks_after, 1);
    }

    #[test]
    fn nested_subsets_refine_hierarchically() {
        // Updaters {0,1,2,3}, {0,1}, {2}: consecutive-ones is achievable.
        let sn = SupernodePartition::from_starts(vec![0, 5]);
        let rows = vec![vec![0, 1, 2, 3], vec![0, 1], vec![2]];
        let r = refine_partition(&sn, &rows);
        assert!(r.blocks_after <= r.blocks_before);
        // Each subset must be contiguous after refinement.
        for s in &r.rows {
            for w in s.windows(2) {
                assert_eq!(w[1], w[0] + 1, "subset {s:?} not contiguous");
            }
        }
    }

    #[test]
    fn never_reorders_across_supernodes() {
        let sn = SupernodePartition::from_starts(vec![0, 3, 6]);
        let rows = vec![vec![0, 2, 4], vec![3, 5]];
        let r = refine_partition(&sn, &rows);
        for j in 0..6 {
            let old = r.perm.old_of(j);
            assert_eq!(
                sn.col_to_sn[j], sn.col_to_sn[old],
                "column crossed supernode"
            );
        }
    }

    #[test]
    fn block_count_never_increases_on_single_subset() {
        // A single updater can always be made contiguous.
        let sn = SupernodePartition::from_starts(vec![0, 8]);
        let rows = vec![vec![1, 3, 5, 7]];
        let r = refine_partition(&sn, &rows);
        assert_eq!(r.blocks_after, 1);
    }
}
