//! Row-block structure of a supernode's below-diagonal rows.
//!
//! RLB (the right-looking *blocked* method) issues one DSYRK/DGEMM per
//! pair of *blocks*: maximal runs of consecutive row indices that stay
//! inside a single ancestor supernode. Fewer, larger blocks mean fewer
//! BLAS calls — which is exactly what partition refinement (see
//! [`crate::pr`]) optimizes.

use crate::supernodes::SupernodePartition;

/// A maximal dense row block of a supernode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowBlock {
    /// Offset of the block's first row within the supernode's `rows` list.
    pub offset: usize,
    /// Number of consecutive rows in the block.
    pub len: usize,
    /// First global row index of the block.
    pub first: usize,
    /// The ancestor supernode the block lies in.
    pub target: usize,
}

/// Decomposes `rows` (sorted global indices) into maximal blocks of
/// consecutive indices, split additionally at supernode boundaries of the
/// targets (a block must lie within one ancestor supernode).
pub fn row_blocks(rows: &[usize], sn: &SupernodePartition) -> Vec<RowBlock> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < rows.len() {
        let first = rows[k];
        let target = sn.col_to_sn[first];
        let target_end = sn.end_col(target);
        let mut len = 1usize;
        while k + len < rows.len()
            && rows[k + len] == first + len // consecutive
            && rows[k + len] < target_end
        // same ancestor supernode
        {
            len += 1;
        }
        out.push(RowBlock {
            offset: k,
            len,
            first,
            target,
        });
        k += len;
    }
    out
}

/// Total number of blocks over all supernodes — the metric partition
/// refinement minimizes (paper §IV-A: "the number of blocks was reduced").
pub fn total_blocks(all_rows: &[Vec<usize>], sn: &SupernodePartition) -> usize {
    all_rows.iter().map(|r| row_blocks(r, sn).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_rows_in_one_target_form_one_block() {
        let sn = SupernodePartition::from_starts(vec![0, 4, 10]);
        let b = row_blocks(&[4, 5, 6], &sn);
        assert_eq!(b.len(), 1);
        assert_eq!(
            b[0],
            RowBlock {
                offset: 0,
                len: 3,
                first: 4,
                target: 1
            }
        );
    }

    #[test]
    fn gaps_split_blocks() {
        let sn = SupernodePartition::from_starts(vec![0, 10]);
        let b = row_blocks(&[2, 3, 5, 6, 9], &sn);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].len, 2);
        assert_eq!(b[1].len, 2);
        assert_eq!(b[2].len, 1);
        assert_eq!(b[1].first, 5);
        assert_eq!(b[2].offset, 4);
    }

    #[test]
    fn supernode_boundaries_split_blocks() {
        // Rows 3,4 are consecutive but 4 starts a new supernode.
        let sn = SupernodePartition::from_starts(vec![0, 4, 8]);
        let b = row_blocks(&[2, 3, 4, 5], &sn);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].target, 0);
        assert_eq!(b[1].target, 1);
        assert_eq!(b[1].first, 4);
    }

    #[test]
    fn empty_rows_no_blocks() {
        let sn = SupernodePartition::from_starts(vec![0, 4]);
        assert!(row_blocks(&[], &sn).is_empty());
    }

    #[test]
    fn total_blocks_sums() {
        let sn = SupernodePartition::from_starts(vec![0, 2, 4, 8]);
        let rows = vec![vec![2, 3, 4], vec![5, 7], vec![]];
        // First: {2,3} in sn1 + {4} in sn2 → 2 blocks; second: {5},{7} → 2.
        assert_eq!(total_blocks(&rows, &sn), 4);
    }
}
