//! Relative indices (Schreiber) for scattering supernode updates.
//!
//! When supernode `J` updates an ancestor supernode `P`, each global row
//! index `i ∈ rows(J)` with `i ∈ cols(P) ∪ rows(P)` must be located inside
//! `P`'s dense storage array, whose row dimension is indexed by the list
//! `cols(P) ++ rows(P)`. `relind(J, P)` maps each such `i` to its 0-based
//! position **from the top** of that list.
//!
//! The paper (and ref [1]) uses *generalized* relative indices measured as
//! distances from the bottom of the ancestor's index set; the two
//! conventions carry the same information, and
//! [`generalized_from_bottom`] converts for display/compatibility.

/// Positions of the sorted indices `sub` inside the index list of a target
/// supernode with columns `[p_first, p_first + p_ncols)` followed by the
/// sorted below-diagonal rows `p_rows`.
///
/// Every element of `sub` must be present in the target's list (this is an
/// invariant of supernodal elimination; violations panic in debug builds
/// and produce garbage in release builds).
pub fn relative_indices(
    sub: &[usize],
    p_first: usize,
    p_ncols: usize,
    p_rows: &[usize],
) -> Vec<usize> {
    let mut out = Vec::with_capacity(sub.len());
    let p_end = p_first + p_ncols;
    let mut cursor = 0usize; // two-pointer walk over p_rows
    for &i in sub {
        if i < p_end {
            debug_assert!(i >= p_first, "index {i} above target supernode");
            out.push(i - p_first);
        } else {
            while cursor < p_rows.len() && p_rows[cursor] < i {
                cursor += 1;
            }
            debug_assert!(
                cursor < p_rows.len() && p_rows[cursor] == i,
                "index {i} missing from target rows"
            );
            out.push(p_ncols + cursor);
        }
    }
    out
}

/// Relative index of a single global row `i` inside the target's index
/// list — the allocation-free form of [`relative_indices`] for callers
/// that need one generalized index per block (the RLB update loop).
///
/// Same invariant as [`relative_indices`]: `i` must be present in the
/// target's column range or row list.
#[inline]
pub fn relative_index_of(i: usize, p_first: usize, p_ncols: usize, p_rows: &[usize]) -> usize {
    let p_end = p_first + p_ncols;
    if i < p_end {
        debug_assert!(i >= p_first, "index {i} above target supernode");
        i - p_first
    } else {
        let pos = p_rows.partition_point(|&r| r < i);
        debug_assert!(
            pos < p_rows.len() && p_rows[pos] == i,
            "index {i} missing from target rows"
        );
        p_ncols + pos
    }
}

/// Converts top-based relative indices into the paper's "distance from the
/// bottom" convention for an index list of total length `list_len`.
pub fn generalized_from_bottom(relind: &[usize], list_len: usize) -> Vec<usize> {
    relind.iter().map(|&p| list_len - 1 - p).collect()
}

/// Splits `rows` (sorted global indices) into the segment lying inside the
/// target supernode's columns and the remainder, returning
/// `(within_cols, below)` as index ranges into `rows`.
pub fn split_at_supernode(rows: &[usize], p_first: usize, p_end: usize) -> (usize, usize) {
    let lo = rows.partition_point(|&r| r < p_first);
    let hi = rows.partition_point(|&r| r < p_end);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_column_and_row_segments() {
        // Target P: columns 4..7, rows {12, 13, 14}: list = [4,5,6,12,13,14].
        let sub = vec![5, 6, 13];
        let r = relative_indices(&sub, 4, 3, &[12, 13, 14]);
        assert_eq!(r, vec![1, 2, 4]);
    }

    #[test]
    fn paper_fig1_relind_j3_to_j6() {
        // J3's rows {12,13,14} into J6 (cols 12..15, no rows below):
        // top-based positions [0,1,2]; the paper's bottom-based view is
        // [2,1,0].
        let r = relative_indices(&[12, 13, 14], 12, 3, &[]);
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(generalized_from_bottom(&r, 3), vec![2, 1, 0]);
    }

    #[test]
    fn paper_fig1_relind_j1_to_j3() {
        // J1's rows {5, 6, 13}: the part inside J3 (cols 4..7) is {5, 6};
        // 13 locates inside J3's row list {12, 13, 14} at position 1.
        let r = relative_indices(&[5, 6, 13], 4, 3, &[12, 13, 14]);
        assert_eq!(r, vec![1, 2, 4]);
    }

    #[test]
    fn split_at_supernode_partitions() {
        let rows = [5, 6, 13, 20, 21];
        // Target covering columns 4..7.
        let (lo, hi) = split_at_supernode(&rows, 4, 7);
        assert_eq!((lo, hi), (0, 2));
        // Target covering columns 13..22.
        let (lo, hi) = split_at_supernode(&rows, 13, 22);
        assert_eq!((lo, hi), (2, 5));
        // Target not intersecting.
        let (lo, hi) = split_at_supernode(&rows, 7, 13);
        assert_eq!((lo, hi), (2, 2));
    }

    #[test]
    fn empty_sub_is_empty() {
        assert!(relative_indices(&[], 0, 4, &[9, 11]).is_empty());
    }

    #[test]
    fn single_index_matches_bulk() {
        let p_rows = [12, 13, 14, 20, 31];
        for &i in &[4, 5, 6, 12, 14, 20, 31] {
            let bulk = relative_indices(&[i], 4, 3, &p_rows)[0];
            assert_eq!(relative_index_of(i, 4, 3, &p_rows), bulk, "i={i}");
        }
    }
}
