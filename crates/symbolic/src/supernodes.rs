//! Supernode detection and row structures.
//!
//! A supernode is a maximal set of consecutive columns of `L` sharing the
//! same below-diagonal sparsity structure (Liu–Ng–Peyton, *On finding
//! supernodes for sparse matrix computations*, 1993). On a postordered
//! matrix, column `j` extends the supernode of `j-1` iff
//!
//! * `parent(j-1) = j`, and
//! * `count(j-1) = count(j) + 1`,
//!
//! which together imply `struct(L_{*,j-1}) = struct(L_{*,j}) ∪ {j-1}`.
//! *Fundamental* supernodes additionally require `j-1` to be the only
//! etree child of `j`; the paper's Figure 1 example uses the maximal
//! (non-fundamental) definition, which is also this crate's default.

use crate::etree::EliminationTree;
use crate::NONE;
use rlchol_sparse::SymCsc;

/// A partition of the columns `0..n` into contiguous supernodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodePartition {
    /// Supernode `s` spans columns `sn_start[s] .. sn_start[s+1]`.
    pub sn_start: Vec<usize>,
    /// Inverse map: `col_to_sn[j]` is the supernode containing column `j`.
    pub col_to_sn: Vec<usize>,
}

impl SupernodePartition {
    /// Builds from supernode start offsets (`sn_start[0] = 0`, strictly
    /// increasing, last element = `n`).
    pub fn from_starts(sn_start: Vec<usize>) -> Self {
        assert!(!sn_start.is_empty() && sn_start[0] == 0);
        let n = *sn_start.last().unwrap();
        let mut col_to_sn = vec![0usize; n];
        for s in 0..sn_start.len() - 1 {
            assert!(sn_start[s] < sn_start[s + 1], "empty supernode {s}");
            for j in sn_start[s]..sn_start[s + 1] {
                col_to_sn[j] = s;
            }
        }
        SupernodePartition {
            sn_start,
            col_to_sn,
        }
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.sn_start.len() - 1
    }

    /// Number of columns overall.
    pub fn n(&self) -> usize {
        *self.sn_start.last().unwrap()
    }

    /// First column of supernode `s`.
    pub fn first_col(&self, s: usize) -> usize {
        self.sn_start[s]
    }

    /// One past the last column of supernode `s`.
    pub fn end_col(&self, s: usize) -> usize {
        self.sn_start[s + 1]
    }

    /// Width (number of columns) of supernode `s`.
    pub fn ncols(&self, s: usize) -> usize {
        self.sn_start[s + 1] - self.sn_start[s]
    }
}

/// Detects supernodes on a postordered matrix from the elimination tree
/// and factor column counts.
///
/// With `fundamental = true`, a column only extends the previous one when
/// it has exactly one etree child, yielding the finer fundamental
/// partition; with `false` (the default elsewhere in the workspace) the
/// maximal partition of the paper's Figure 1 is produced.
pub fn find_supernodes(
    etree: &EliminationTree,
    counts: &[usize],
    fundamental: bool,
) -> SupernodePartition {
    let n = etree.n();
    let nchild = etree.child_counts();
    let mut starts = Vec::new();
    for j in 0..n {
        let extends = j > 0
            && etree.parent[j - 1] == j
            && counts[j - 1] == counts[j] + 1
            && (!fundamental || nchild[j] == 1);
        if !extends {
            starts.push(j);
        }
    }
    starts.push(n);
    SupernodePartition::from_starts(starts)
}

/// Computes each supernode's below-diagonal row structure.
///
/// `rows[s]` is the sorted list of global row indices `> last(s)` present
/// in the columns of supernode `s` of `L`. Computed bottom-up: a child
/// supernode's rows flow into the supernode containing its first
/// below-diagonal row (its supernodal parent).
pub fn supernode_rows(a: &SymCsc, sn: &SupernodePartition) -> Vec<Vec<usize>> {
    let n = a.n();
    let nsup = sn.nsup();
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); nsup];
    // Children lists in the supernodal elimination tree.
    let mut pending_children: Vec<Vec<usize>> = vec![Vec::new(); nsup];
    let mut mark = vec![usize::MAX; n];
    for s in 0..nsup {
        let last = sn.end_col(s) - 1;
        let mut set: Vec<usize> = Vec::new();
        // Original matrix entries below the supernode.
        for j in sn.first_col(s)..sn.end_col(s) {
            for &i in &a.col_rows(j)[1..] {
                if i > last && mark[i] != s {
                    mark[i] = s;
                    set.push(i);
                }
            }
        }
        // Child contributions.
        for &c in &pending_children[s] {
            for &i in &rows[c] {
                if i > last && mark[i] != s {
                    mark[i] = s;
                    set.push(i);
                }
            }
        }
        set.sort_unstable();
        if let Some(&first) = set.first() {
            let p = sn.col_to_sn[first];
            debug_assert!(p > s);
            pending_children[p].push(s);
        }
        rows[s] = set;
    }
    rows
}

/// The supernodal elimination tree: `parent[s]` is the supernode holding
/// `min(rows[s])`, or [`NONE`] for roots.
pub fn supernodal_etree(sn: &SupernodePartition, rows: &[Vec<usize>]) -> Vec<usize> {
    (0..sn.nsup())
        .map(|s| match rows[s].first() {
            Some(&r) => sn.col_to_sn[r],
            None => NONE,
        })
        .collect()
}

/// Checks that per-column counts implied by the supernode structure match
/// independently computed column counts. Returns the first mismatching
/// column, if any.
pub fn check_against_counts(
    sn: &SupernodePartition,
    rows: &[Vec<usize>],
    counts: &[usize],
) -> Option<usize> {
    for s in 0..sn.nsup() {
        let (f, e) = (sn.first_col(s), sn.end_col(s));
        for j in f..e {
            let implied = (e - j) + rows[s].len();
            if implied != counts[j] {
                return Some(j);
            }
        }
    }
    None
}

/// The 15×15 pattern of the paper's Figure 1 (0-based strict-lower
/// edges). Its factor has exactly this pattern (no additional fill) with
/// supernodes `J1..J6 = {0,1}, {2,3}, {4,5,6}, {7,8}, {9,10,11},
/// {12,13,14}` and the supernodal elimination tree of the figure.
pub fn paper_fig1_edges() -> Vec<(usize, usize)> {
    vec![
        // J1 columns 0,1: below-supernode rows {5, 6, 13}
        (1, 0),
        (5, 0),
        (6, 0),
        (13, 0),
        (5, 1),
        (6, 1),
        (13, 1),
        // J2 columns 2,3: rows {7, 8, 14}
        (3, 2),
        (7, 2),
        (8, 2),
        (14, 2),
        (7, 3),
        (8, 3),
        (14, 3),
        // J3 columns 4,5,6: rows {12, 13, 14}
        (5, 4),
        (6, 4),
        (12, 4),
        (13, 4),
        (14, 4),
        (6, 5),
        (12, 5),
        (13, 5),
        (14, 5),
        (12, 6),
        (13, 6),
        (14, 6),
        // J4 columns 7,8: A-rows {12, 13}; row 14 arrives as fill from the
        // J2 update, so rows(J4) = {12, 13, 14} in the factor.
        (8, 7),
        (12, 7),
        (13, 7),
        (12, 8),
        (13, 8),
        // J5 columns 9,10,11: rows {12, 13} — deliberately NOT {12,13,14},
        // otherwise column 11 and column 12 would share a structure and
        // the maximal rule would fuse J5 into J6, contradicting Figure 1.
        (10, 9),
        (11, 9),
        (12, 9),
        (13, 9),
        (11, 10),
        (12, 10),
        (13, 10),
        (12, 11),
        (13, 11),
        // J6 columns 12,13,14 (dense root)
        (13, 12),
        (14, 12),
        (14, 13),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colcount::col_counts;
    use rlchol_sparse::TripletMatrix;

    fn sym_from_edges(n: usize, edges: &[(usize, usize)]) -> SymCsc {
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
        }
        for &(i, j) in edges {
            t.push(i.max(j), i.min(j), -1.0);
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    }

    #[test]
    fn paper_fig1_supernodes_and_tree() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let t = EliminationTree::from_matrix(&a);
        // The paper's ordering is topological (parents after children) but
        // not a DFS postorder: subtrees interleave (J1 under J3, J2 under
        // J4). Supernode detection only needs the topological property.
        for (j, &p) in t.parent.iter().enumerate() {
            assert!(p == NONE || p > j);
        }
        let counts = col_counts(&a, &t);
        let sn = find_supernodes(&t, &counts, false);
        assert_eq!(sn.sn_start, vec![0, 2, 4, 7, 9, 12, 15]);
        let rows = supernode_rows(&a, &sn);
        assert_eq!(rows[0], vec![5, 6, 13]); // J1: rows 6,7,14 one-based
        assert_eq!(rows[1], vec![7, 8, 14]);
        assert_eq!(rows[2], vec![12, 13, 14]);
        // Row 14 of J4 is fill created by the J2 update (not present in A).
        assert_eq!(rows[3], vec![12, 13, 14]);
        assert_eq!(rows[4], vec![12, 13]);
        assert_eq!(rows[5], Vec::<usize>::new());
        // Supernodal etree matches the figure: J1→J3, J2→J4, J3→J6,
        // J4→J6, J5→J6.
        let par = supernodal_etree(&sn, &rows);
        assert_eq!(par, vec![2, 3, 5, 5, 5, NONE]);
        assert_eq!(check_against_counts(&sn, &rows, &counts), None);
        // J1 is stored in a 5x2 array, J3 in a 6x3 array (paper, §II-A).
        assert_eq!(sn.ncols(0) + rows[0].len(), 5);
        assert_eq!(sn.ncols(2) + rows[2].len(), 6);
    }

    #[test]
    fn fundamental_partition_is_finer_on_fig1() {
        // Column 5 of J3 has two etree children (columns 1 and 4), so the
        // fundamental rule splits J3 = {4,5,6} into {4} and {5,6}.
        let a = sym_from_edges(15, &paper_fig1_edges());
        let t = EliminationTree::from_matrix(&a);
        let counts = col_counts(&a, &t);
        let fine = find_supernodes(&t, &counts, true);
        let coarse = find_supernodes(&t, &counts, false);
        assert!(fine.nsup() > coarse.nsup());
        // Every fundamental boundary set contains the maximal boundaries.
        for &b in &coarse.sn_start {
            assert!(fine.sn_start.contains(&b));
        }
        // Row structures remain consistent for the finer partition too.
        let rows = supernode_rows(&a, &fine);
        assert_eq!(check_against_counts(&fine, &rows, &counts), None);
    }

    #[test]
    fn tridiagonal_yields_small_supernodes() {
        let a = sym_from_edges(6, &[(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]);
        let t = EliminationTree::from_matrix(&a);
        let counts = col_counts(&a, &t);
        let sn = find_supernodes(&t, &counts, false);
        // Counts are [2,2,2,2,2,1]: only the last pair merges.
        assert_eq!(sn.sn_start, vec![0, 1, 2, 3, 4, 6]);
        let rows = supernode_rows(&a, &sn);
        assert_eq!(check_against_counts(&sn, &rows, &counts), None);
    }

    #[test]
    fn dense_matrix_is_one_supernode() {
        let n = 6;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|j| (j + 1..n).map(move |i| (i, j)))
            .collect();
        let a = sym_from_edges(n, &edges);
        let t = EliminationTree::from_matrix(&a);
        let counts = col_counts(&a, &t);
        let sn = find_supernodes(&t, &counts, false);
        assert_eq!(sn.nsup(), 1);
        assert_eq!(sn.ncols(0), n);
        let rows = supernode_rows(&a, &sn);
        assert!(rows[0].is_empty());
    }

    #[test]
    fn partition_accessors() {
        let sn = SupernodePartition::from_starts(vec![0, 2, 5, 6]);
        assert_eq!(sn.nsup(), 3);
        assert_eq!(sn.n(), 6);
        assert_eq!(sn.ncols(1), 3);
        assert_eq!(sn.col_to_sn, vec![0, 0, 1, 1, 1, 2]);
        assert_eq!(sn.first_col(2), 5);
        assert_eq!(sn.end_col(2), 6);
    }
}
