//! Exact column counts of the Cholesky factor, without forming `L`.
//!
//! For each row `i`, the columns `j < i` with `L[i,j] != 0` form the "row
//! subtree": the union of etree paths from each `k` with `A[i,k] != 0` up
//! towards `i`. Walking those paths with per-row markers counts every
//! nonzero of `L` exactly once, giving column counts in
//! `O(nnz(L))` time and `O(n)` extra space.

use crate::etree::{strict_lower_rows, EliminationTree};
use rlchol_sparse::SymCsc;

/// Column counts of `L` (including the diagonal) for the matrix `a` with
/// elimination tree `etree`.
pub fn col_counts(a: &SymCsc, etree: &EliminationTree) -> Vec<usize> {
    let n = a.n();
    let parent = &etree.parent;
    let mut counts = vec![1usize; n]; // diagonal entries
    let mut mark = vec![usize::MAX; n];
    let (rowptr, colind) = strict_lower_rows(a);
    for i in 0..n {
        mark[i] = i;
        for &k in &colind[rowptr[i]..rowptr[i + 1]] {
            // Walk the path k -> parent(k) -> ... until a vertex already
            // visited for row i (or i itself). Every vertex on the way has
            // L[i, vertex] != 0.
            let mut j = k;
            while mark[j] != i {
                counts[j] += 1;
                mark[j] = i;
                j = parent[j];
                debug_assert!(j != crate::NONE, "path must reach row {i}");
            }
        }
    }
    counts
}

/// Thread-parallel [`col_counts`]: rows are split into `threads`
/// contiguous, nnz-balanced ranges, each walked with a **private**
/// `counts`/`mark` pair on [`rlchol_dense::pool`], and the per-thread
/// counts are summed.
///
/// Bit-identical to the serial pass by construction: each row's subtree
/// walk is independent of every other row's (the serial `mark` state
/// only ever terminates a walk at vertices marked *by the same row*),
/// and the merge sums exact `usize` increments, which commute. A
/// `threads <= 1` call takes the serial path unchanged.
pub fn col_counts_par(a: &SymCsc, etree: &EliminationTree, threads: usize) -> Vec<usize> {
    let n = a.n();
    if threads <= 1 || n < 2 * threads {
        return col_counts(a, etree);
    }
    let parent = &etree.parent;
    let (rowptr, colind) = strict_lower_rows(a);
    // Contiguous row ranges with roughly equal strict-lower nnz.
    let total = rowptr[n];
    let mut bounds = Vec::with_capacity(threads + 1);
    bounds.push(0usize);
    for t in 1..threads {
        let target = total * t / threads;
        let cut = rowptr.partition_point(|&p| p < target).min(n);
        bounds.push((*bounds.last().unwrap()).max(cut));
    }
    bounds.push(n);

    let mut partials: Vec<Vec<usize>> = Vec::with_capacity(threads);
    partials.resize_with(threads, Vec::new);
    {
        let rowptr = &rowptr;
        let colind = &colind;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = partials
            .iter_mut()
            .enumerate()
            .map(|(t, slot)| {
                let (lo, hi) = (bounds[t], bounds[t + 1]);
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let mut counts = vec![0usize; n];
                    let mut mark = vec![usize::MAX; n];
                    for i in lo..hi {
                        mark[i] = i;
                        for &k in &colind[rowptr[i]..rowptr[i + 1]] {
                            let mut j = k;
                            while mark[j] != i {
                                counts[j] += 1;
                                mark[j] = i;
                                j = parent[j];
                                debug_assert!(j != crate::NONE, "path must reach row {i}");
                            }
                        }
                    }
                    *slot = counts;
                });
                task
            })
            .collect();
        rlchol_dense::pool::global().run(tasks);
    }

    let mut counts = vec![1usize; n]; // diagonal entries
    for partial in &partials {
        for (c, &p) in counts.iter_mut().zip(partial) {
            *c += p;
        }
    }
    counts
}

/// Total factor nonzeros implied by the counts (lower triangle incl.
/// diagonal).
pub fn factor_nnz(counts: &[usize]) -> u64 {
    counts.iter().map(|&c| c as u64).sum()
}

/// Factorization flop count implied by the counts: `Σ_j c_j²` (the classic
/// `Σ (count_j)(count_j+1)…` variants differ by lower-order terms; this is
/// the standard measure used to compare orderings).
pub fn factor_flops(counts: &[usize]) -> f64 {
    counts.iter().map(|&c| (c as f64) * (c as f64)).sum()
}

/// Reference column counts via explicit symbolic factorization (O(nnz(L))
/// memory). Used by tests and small problems.
pub fn col_counts_reference(a: &SymCsc, etree: &EliminationTree) -> Vec<usize> {
    let n = a.n();
    // struct[j] = sorted below-diagonal row indices of column j of L.
    let mut structs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut mark = vec![usize::MAX; n];
    for j in 0..n {
        // Start from A's pattern below the diagonal.
        mark[j] = j;
        let mut s: Vec<usize> = Vec::new();
        for &i in &a.col_rows(j)[1..] {
            if mark[i] != j {
                mark[i] = j;
                s.push(i);
            }
        }
        // Merge children structures (minus j itself).
        let children: Vec<usize> = (0..j).filter(|&c| etree.parent[c] == j).collect();
        for c in children {
            for &i in &structs[c] {
                if i > j && mark[i] != j {
                    mark[i] = j;
                    s.push(i);
                }
            }
        }
        s.sort_unstable();
        structs[j] = s;
    }
    structs.iter().map(|s| s.len() + 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use rlchol_sparse::TripletMatrix;

    fn sym_from_edges(n: usize, edges: &[(usize, usize)]) -> SymCsc {
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
        }
        for &(i, j) in edges {
            t.push(i.max(j), i.min(j), -1.0);
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    }

    #[test]
    fn dense_matrix_counts() {
        let n = 5;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|j| (j + 1..n).map(move |i| (i, j)))
            .collect();
        let a = sym_from_edges(n, &edges);
        let t = EliminationTree::from_matrix(&a);
        let c = col_counts(&a, &t);
        assert_eq!(c, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn tridiagonal_counts_are_two() {
        let a = sym_from_edges(6, &[(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]);
        let t = EliminationTree::from_matrix(&a);
        let c = col_counts(&a, &t);
        assert_eq!(c, vec![2, 2, 2, 2, 2, 1]);
        assert_eq!(factor_nnz(&c), 11);
    }

    #[test]
    fn fill_is_counted() {
        // Star centered at 0: eliminating 0 makes columns 1..n-1 dense.
        let a = sym_from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let t = EliminationTree::from_matrix(&a);
        let c = col_counts(&a, &t);
        assert_eq!(c, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [10usize, 30, 60] {
            let mut edges = Vec::new();
            for i in 1..n {
                // Ensure connectivity then sprinkle extras.
                let j = rng.random_range(0..i);
                edges.push((i, j));
                for _ in 0..2 {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    if a != b {
                        edges.push((a.max(b), a.min(b)));
                    }
                }
            }
            let a = sym_from_edges(n, &edges);
            let t = EliminationTree::from_matrix(&a);
            assert_eq!(col_counts(&a, &t), col_counts_reference(&a, &t), "n={n}");
        }
    }

    #[test]
    fn parallel_counts_match_serial_exactly() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in [1usize, 2, 7, 30, 120] {
            let mut edges = Vec::new();
            for i in 1..n {
                let j = rng.random_range(0..i);
                edges.push((i, j));
                for _ in 0..3 {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    if a != b {
                        edges.push((a.max(b), a.min(b)));
                    }
                }
            }
            let a = sym_from_edges(n, &edges);
            let t = EliminationTree::from_matrix(&a);
            let serial = col_counts(&a, &t);
            for threads in [1usize, 2, 4, 8] {
                assert_eq!(
                    col_counts_par(&a, &t, threads),
                    serial,
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn flops_metric_monotone_in_fill() {
        let chain = sym_from_edges(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        let star = sym_from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let tc = EliminationTree::from_matrix(&chain);
        let ts = EliminationTree::from_matrix(&star);
        let fc = factor_flops(&col_counts(&chain, &tc));
        let fs = factor_flops(&col_counts(&star, &ts));
        assert!(fs > fc);
    }
}
