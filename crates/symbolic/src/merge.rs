//! Relaxed supernode amalgamation (Ashcraft–Grimes).
//!
//! Small supernodes at the bottom of the supernodal elimination tree make
//! BLAS calls tiny; merging a child supernode `J` into its supernodal
//! parent `P` coarsens the partition at the price of storing explicit
//! zeros. Following §IV-A of the paper:
//!
//! * candidate merges are child/parent pairs `(J, p(J))`;
//! * at each step the pair introducing the **least new fill** is merged
//!   (a binary heap with lazy invalidation);
//! * merging stops once the cumulative increase in factor storage exceeds
//!   a cap (25 % in the paper).
//!
//! Because `rows(J) ⊆ cols(P) ∪ rows(P)` for a supernodal child, the
//! merged node's row set is exactly `rows(P)`, and the extra fill has the
//! closed form `cJ·cP + cJ·(|rows(P)| − |rows(J)|)`.
//!
//! Merged supernodes need not be contiguous in the current ordering
//! (siblings may sit between a child and its parent), so the merge phase
//! also produces a **topological reordering** making every merged
//! supernode a contiguous column range. Such reorderings preserve the
//! simplicial fill exactly (they are equivalent orderings of the etree).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::supernodes::SupernodePartition;
use crate::NONE;
use rlchol_sparse::Permutation;

/// Result of the merge phase.
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// Topological column reordering (`old_of[new] = old`) that makes
    /// merged supernodes contiguous. Apply to the matrix before numeric
    /// factorization.
    pub perm: Permutation,
    /// The merged partition, in the **new** column numbering.
    pub sn: SupernodePartition,
    /// Per-supernode below-diagonal row structures, new numbering.
    pub rows: Vec<Vec<usize>>,
    /// Number of pairwise merges performed.
    pub merges: usize,
    /// Explicit-zero entries introduced (units of factor entries).
    pub extra_fill: u64,
    /// Factor entries before merging (lower triangle incl. diagonal).
    pub base_storage: u64,
}

/// Storage of a supernode with `c` columns and `r` below-diagonal rows:
/// dense triangle plus rectangle, in factor entries.
pub fn storage(c: usize, r: usize) -> u64 {
    (c * (c + 1) / 2 + c * r) as u64
}

/// Extra fill caused by merging child `(cj, rj)` into parent `(cp, rp)`.
fn merge_cost(cj: usize, rj: usize, cp: usize, rp: usize) -> u64 {
    // t(cj+cp) - t(cj) - t(cp) = cj*cp ; plus cj*(rp - rj) which is
    // nonnegative because rows(J) ⊆ cols(P) ∪ rows(P).
    debug_assert!(rj <= cp + rp);
    (cj * cp) as u64 + (cj as u64) * (rp as u64) - (cj as u64) * (rj as u64)
}

struct Node {
    /// Global (pre-merge) column indices, ascending.
    cols: Vec<usize>,
    /// Current row set; only the parent's set survives a merge.
    rows: Vec<usize>,
    parent: usize,
    children: Vec<usize>,
    alive: bool,
    version: u64,
}

fn push_candidate(
    heap: &mut BinaryHeap<Reverse<(u64, usize, u64, usize, u64)>>,
    nodes: &[Node],
    j: usize,
) {
    let p = nodes[j].parent;
    if p == NONE {
        return;
    }
    let cost = merge_cost(
        nodes[j].cols.len(),
        nodes[j].rows.len(),
        nodes[p].cols.len(),
        nodes[p].rows.len(),
    );
    heap.push(Reverse((cost, j, nodes[j].version, p, nodes[p].version)));
}

/// Runs relaxed amalgamation.
///
/// `growth_cap` bounds the *cumulative relative increase* in factor
/// storage (the paper uses `0.25`). `rows[s]` must be the below-diagonal
/// structure of supernode `s`, sorted ascending.
pub fn merge_supernodes(
    sn: &SupernodePartition,
    rows: &[Vec<usize>],
    growth_cap: f64,
) -> MergeResult {
    let nsup = sn.nsup();
    let n = sn.n();
    let mut nodes: Vec<Node> = (0..nsup)
        .map(|s| Node {
            cols: (sn.first_col(s)..sn.end_col(s)).collect(),
            rows: rows[s].clone(),
            parent: NONE,
            children: Vec::new(),
            alive: true,
            version: 0,
        })
        .collect();
    // Parent pointers from the supernodal etree.
    for s in 0..nsup {
        if let Some(&r) = nodes[s].rows.first() {
            let p = sn.col_to_sn[r];
            nodes[s].parent = p;
            nodes[p].children.push(s);
        }
    }

    let base_storage: u64 = (0..nsup)
        .map(|s| storage(nodes[s].cols.len(), nodes[s].rows.len()))
        .sum();
    let budget = (base_storage as f64 * growth_cap) as u64;

    // Min-heap of (cost, child, child_version, parent, parent_version).
    let mut heap: BinaryHeap<Reverse<(u64, usize, u64, usize, u64)>> = BinaryHeap::new();
    for s in 0..nsup {
        push_candidate(&mut heap, &nodes, s);
    }

    let mut extra_fill = 0u64;
    let mut merges = 0usize;
    while let Some(Reverse((cost, j, jv, p, pv))) = heap.pop() {
        if !nodes[j].alive || !nodes[p].alive {
            continue;
        }
        if nodes[j].version != jv || nodes[p].version != pv || nodes[j].parent != p {
            // Stale entry: refresh (the child may have a new parent or the
            // parent a new shape).
            push_candidate(&mut heap, &nodes, j);
            continue;
        }
        if extra_fill + cost > budget && cost > 0 {
            // The heap is cost-ordered, so every remaining candidate costs
            // at least this much: no further merge can fit the budget.
            break;
        }
        // Merge j into p.
        extra_fill += cost;
        merges += 1;
        let child = std::mem::replace(
            &mut nodes[j],
            Node {
                cols: Vec::new(),
                rows: Vec::new(),
                parent: NONE,
                children: Vec::new(),
                alive: false,
                version: u64::MAX,
            },
        );
        let mut cols = child.cols;
        cols.extend_from_slice(&nodes[p].cols);
        cols.sort_unstable();
        nodes[p].cols = cols;
        nodes[p].children.retain(|&c| c != j);
        for &c in &child.children {
            nodes[c].parent = p;
            nodes[c].version += 1;
        }
        let grandchildren = child.children;
        nodes[p].children.extend_from_slice(&grandchildren);
        nodes[p].version += 1;
        // Refresh candidates involving p (its children and itself).
        push_candidate(&mut heap, &nodes, p);
        let kids = nodes[p].children.clone();
        for c in kids {
            push_candidate(&mut heap, &nodes, c);
        }
    }

    build_result(nodes, n, merges, extra_fill, base_storage)
}

/// Postorders the merged forest and renumbers columns so each merged
/// supernode is contiguous.
fn build_result(
    nodes: Vec<Node>,
    n: usize,
    merges: usize,
    extra_fill: u64,
    base_storage: u64,
) -> MergeResult {
    let live: Vec<usize> = (0..nodes.len()).filter(|&s| nodes[s].alive).collect();
    // DFS postorder over live nodes; roots and children ordered by their
    // smallest original column for determinism.
    let key = |s: usize| nodes[s].cols[0];
    let mut roots: Vec<usize> = live
        .iter()
        .copied()
        .filter(|&s| nodes[s].parent == NONE)
        .collect();
    roots.sort_by_key(|&s| key(s));
    let mut order: Vec<usize> = Vec::with_capacity(live.len());
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for &r in roots.iter() {
        stack.push((r, false));
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
            } else {
                stack.push((v, true));
                let mut kids = nodes[v].children.clone();
                kids.sort_by_key(|&s| Reverse(key(s)));
                for k in kids {
                    stack.push((k, false));
                }
            }
        }
    }
    debug_assert_eq!(order.len(), live.len());

    // New column numbering: concatenate each supernode's columns.
    let mut old_of = Vec::with_capacity(n);
    let mut sn_start = vec![0usize];
    for &s in &order {
        old_of.extend_from_slice(&nodes[s].cols);
        sn_start.push(old_of.len());
    }
    let perm = Permutation::from_old_of(old_of).expect("merge reordering is a bijection");
    let sn = SupernodePartition::from_starts(sn_start);
    // Map row sets to the new numbering.
    let rows: Vec<Vec<usize>> = order
        .iter()
        .map(|&s| {
            let mut r: Vec<usize> = nodes[s].rows.iter().map(|&i| perm.new_of(i)).collect();
            r.sort_unstable();
            r
        })
        .collect();
    MergeResult {
        perm,
        sn,
        rows,
        merges,
        extra_fill,
        base_storage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colcount::col_counts;
    use crate::etree::EliminationTree;
    use crate::supernodes::{find_supernodes, paper_fig1_edges, supernode_rows};
    use rlchol_sparse::{SymCsc, TripletMatrix};

    fn sym_from_edges(n: usize, edges: &[(usize, usize)]) -> SymCsc {
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0);
        }
        for &(i, j) in edges {
            t.push(i.max(j), i.min(j), -1.0);
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    }

    fn setup(a: &SymCsc) -> (SupernodePartition, Vec<Vec<usize>>) {
        let t = EliminationTree::from_matrix(a);
        let counts = col_counts(a, &t);
        let sn = find_supernodes(&t, &counts, false);
        let rows = supernode_rows(a, &sn);
        (sn, rows)
    }

    /// Total storage of a partition.
    fn total_storage(sn: &SupernodePartition, rows: &[Vec<usize>]) -> u64 {
        (0..sn.nsup())
            .map(|s| storage(sn.ncols(s), rows[s].len()))
            .sum()
    }

    #[test]
    fn zero_cap_only_does_free_merges() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let (sn, rows) = setup(&a);
        let before = total_storage(&sn, &rows);
        let m = merge_supernodes(&sn, &rows, 0.0);
        assert_eq!(m.extra_fill, 0);
        let after = total_storage(&m.sn, &m.rows);
        assert_eq!(before, after);
    }

    #[test]
    fn cap_is_respected() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let (sn, rows) = setup(&a);
        for cap in [0.1, 0.25, 0.5, 1.0] {
            let m = merge_supernodes(&sn, &rows, cap);
            let budget = (m.base_storage as f64 * cap) as u64;
            assert!(
                m.extra_fill <= budget,
                "cap {cap}: {} > {budget}",
                m.extra_fill
            );
            // Measured storage growth equals the accounted extra fill.
            let after = total_storage(&m.sn, &m.rows);
            assert_eq!(after, m.base_storage + m.extra_fill);
        }
    }

    #[test]
    fn merging_reduces_supernode_count_monotonically_in_cap() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let (sn, rows) = setup(&a);
        let mut prev = sn.nsup() + 1;
        for cap in [0.0, 0.25, 1.0, 10.0] {
            let m = merge_supernodes(&sn, &rows, cap);
            assert!(m.sn.nsup() <= prev);
            prev = m.sn.nsup();
        }
    }

    #[test]
    fn huge_cap_merges_everything_connected() {
        // A chain: every supernode merges into one.
        let a = sym_from_edges(6, &[(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]);
        let (sn, rows) = setup(&a);
        let m = merge_supernodes(&sn, &rows, 1e9);
        assert_eq!(m.sn.nsup(), 1);
        assert_eq!(m.sn.ncols(0), 6);
        assert!(m.rows[0].is_empty());
    }

    #[test]
    fn permutation_is_topological_for_rows() {
        let a = sym_from_edges(15, &paper_fig1_edges());
        let (sn, rows) = setup(&a);
        let m = merge_supernodes(&sn, &rows, 0.25);
        // Every supernode's rows lie strictly after its last column.
        for s in 0..m.sn.nsup() {
            let last = m.sn.end_col(s) - 1;
            for &r in &m.rows[s] {
                assert!(r > last, "supernode {s} has row {r} <= last col {last}");
            }
        }
        // And the permutation is a bijection (validated on construction).
        assert_eq!(m.perm.len(), 15);
    }

    #[test]
    fn merged_structure_covers_refactored_matrix() {
        // After applying the merge permutation to A, the merged partition
        // must describe a superset of L's true structure (explicit zeros
        // are allowed, lost entries are not).
        let a = sym_from_edges(15, &paper_fig1_edges());
        let (sn, rows) = setup(&a);
        let m = merge_supernodes(&sn, &rows, 0.25);
        let ap = a.permute(&m.perm);
        let t2 = EliminationTree::from_matrix(&ap);
        let true_counts = col_counts(&ap, &t2);
        for s in 0..m.sn.nsup() {
            let (f, e) = (m.sn.first_col(s), m.sn.end_col(s));
            for j in f..e {
                let implied = (e - j) + m.rows[s].len();
                assert!(
                    implied >= true_counts[j],
                    "column {j}: implied {implied} < true {}",
                    true_counts[j]
                );
            }
        }
    }
}
