//! Property-based tests of the symbolic machinery.

use proptest::prelude::*;
use rlchol_sparse::{SymCsc, TripletMatrix};
use rlchol_symbolic::colcount::{col_counts, col_counts_reference};
use rlchol_symbolic::etree::EliminationTree;
use rlchol_symbolic::relind::relative_indices;
use rlchol_symbolic::supernodes::{check_against_counts, find_supernodes, supernode_rows};
use rlchol_symbolic::{analyze, SymbolicOptions, NONE};

fn arb_sym(max_n: usize) -> impl Strategy<Value = SymCsc> {
    (3..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 8.0);
        }
        // Connected path + random extras.
        for i in 1..n {
            t.push(i, (next() as usize) % i, -0.5);
        }
        for _ in 0..n {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                t.push(a.max(b), a.min(b), -0.25);
            }
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn etree_parents_are_above(a in arb_sym(48)) {
        let t = EliminationTree::from_matrix(&a);
        for (j, &p) in t.parent.iter().enumerate() {
            prop_assert!(p == NONE || p > j);
        }
        let post = t.postorder();
        prop_assert!(t.is_postorder(&post));
    }

    #[test]
    fn counts_match_reference(a in arb_sym(48)) {
        let t = EliminationTree::from_matrix(&a);
        prop_assert_eq!(col_counts(&a, &t), col_counts_reference(&a, &t));
    }

    #[test]
    fn supernode_structures_consistent_after_postorder(a in arb_sym(40)) {
        // Postorder first (supernode detection expects postordered input
        // for maximality, and rows computation for contiguity).
        let t0 = EliminationTree::from_matrix(&a);
        let p = rlchol_sparse::Permutation::from_old_of(t0.postorder()).unwrap();
        let ap = a.permute(&p);
        let t = EliminationTree::from_matrix(&ap);
        let counts = col_counts(&ap, &t);
        for fundamental in [false, true] {
            let sn = find_supernodes(&t, &counts, fundamental);
            let rows = supernode_rows(&ap, &sn);
            prop_assert_eq!(check_against_counts(&sn, &rows, &counts), None);
        }
    }

    #[test]
    fn fundamental_refines_maximal(a in arb_sym(40)) {
        let t0 = EliminationTree::from_matrix(&a);
        let p = rlchol_sparse::Permutation::from_old_of(t0.postorder()).unwrap();
        let ap = a.permute(&p);
        let t = EliminationTree::from_matrix(&ap);
        let counts = col_counts(&ap, &t);
        let coarse = find_supernodes(&t, &counts, false);
        let fine = find_supernodes(&t, &counts, true);
        prop_assert!(fine.nsup() >= coarse.nsup());
        for &b in &coarse.sn_start {
            prop_assert!(fine.sn_start.contains(&b));
        }
    }

    #[test]
    fn analyze_invariants_and_relind_coverage(a in arb_sym(36)) {
        let sym = analyze(&a, &SymbolicOptions::default());
        sym.validate().unwrap();
        // Every supernode's full row tail must locate inside each target
        // ancestor's index list (the assembly invariant).
        for s in 0..sym.nsup() {
            let rows = &sym.rows[s];
            let mut k = 0;
            while k < rows.len() {
                let target = sym.sn.col_to_sn[rows[k]];
                let end = sym.sn.end_col(target);
                let hi = rows.partition_point(|&r| r < end);
                let rel = relative_indices(
                    &rows[k..],
                    sym.sn.first_col(target),
                    sym.sn_ncols(target),
                    &sym.rows[target],
                );
                // Positions are strictly increasing and within bounds.
                let len = sym.sn_len(target);
                for w in rel.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                for &r in &rel {
                    prop_assert!(r < len);
                }
                k = hi;
            }
        }
    }

    #[test]
    fn merge_never_loses_columns(a in arb_sym(36)) {
        for cap in [0.0, 0.25, 2.0] {
            let sym = analyze(&a, &SymbolicOptions {
                merge: true,
                merge_growth_cap: cap,
                partition_refine: false,
                ..SymbolicOptions::default()
            });
            prop_assert_eq!(sym.sn.n(), a.n());
            sym.validate().unwrap();
        }
    }
}
