//! Property-based tests of the sparse substrate.

use proptest::prelude::*;
use rlchol_sparse::{CscMatrix, Permutation, SymCsc, TripletMatrix};

/// Strategy for a random permutation of 1..=n elements.
fn arb_perm(max_n: usize) -> impl Strategy<Value = Permutation> {
    (1..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        // Fisher-Yates with a deterministic xorshift stream.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() as usize) % (i + 1);
            v.swap(i, j);
        }
        Permutation::from_old_of(v).unwrap()
    })
}

/// Strategy for a random symmetric SPD-patterned matrix.
fn arb_sym(max_n: usize) -> impl Strategy<Value = SymCsc> {
    (2..=max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 4.0 + (next() % 8) as f64);
        }
        for _ in 0..2 * n {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                t.push(a.max(b), a.min(b), -0.25);
            }
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permutation_inverse_roundtrip(p in arb_perm(60)) {
        let q = p.inverse();
        for i in 0..p.len() {
            prop_assert_eq!(p.old_of(p.new_of(i)), i);
            prop_assert_eq!(q.new_of(i), p.old_of(i));
        }
        let x: Vec<f64> = (0..p.len()).map(|i| i as f64).collect();
        prop_assert_eq!(p.apply_inv_vec(&p.apply_vec(&x)), x);
    }

    #[test]
    fn compose_is_associative_on_vectors(
        n in 1usize..24, s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()
    ) {
        let mk = |seed: u64| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut v: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = (next() as usize) % (i + 1);
                v.swap(i, j);
            }
            Permutation::from_old_of(v).unwrap()
        };
        let (p1, p2, p3) = (mk(s1), mk(s2), mk(s3));
        let x: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let left = p3.compose(&p2).compose(&p1);
        let right = p3.compose(&p2.compose(&p1));
        prop_assert_eq!(left.apply_vec(&x), right.apply_vec(&x));
    }

    #[test]
    fn symmetric_permute_preserves_spectrum_proxy(a in arb_sym(40)) {
        // Frobenius norm and diagonal multiset are invariant under PAPᵀ.
        let n = a.n();
        let old_of: Vec<usize> = (0..n).rev().collect();
        let p = Permutation::from_old_of(old_of).unwrap();
        let b = a.permute(&p);
        prop_assert!((a.norm_fro() - b.norm_fro()).abs() < 1e-9);
        let mut da = a.diag();
        let mut db = b.diag();
        da.sort_by(f64::total_cmp);
        db.sort_by(f64::total_cmp);
        prop_assert_eq!(da, db);
    }

    #[test]
    fn csc_transpose_involution(a in arb_sym(40)) {
        let full = a.to_full_csc();
        prop_assert_eq!(full.transpose().transpose(), full.clone());
        // Symmetric: A == Aᵀ.
        prop_assert_eq!(full.transpose(), full);
    }

    #[test]
    fn matvec_linear(a in arb_sym(30)) {
        let n = a.n();
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 3) % 5) as f64).collect();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(&p, &q)| p + 2.0 * q).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        let mut axy = vec![0.0; n];
        a.matvec(&x, &mut ax);
        a.matvec(&y, &mut ay);
        a.matvec(&xy, &mut axy);
        for i in 0..n {
            prop_assert!((axy[i] - ax[i] - 2.0 * ay[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn triplet_compress_matches_get(seed in any::<u64>(), n in 2usize..20) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = TripletMatrix::new(n, n);
        let mut dense = vec![0.0f64; n * n];
        for _ in 0..3 * n {
            let i = (next() as usize) % n;
            let j = (next() as usize) % n;
            let v = ((next() % 100) as f64) / 10.0 - 5.0;
            t.push(i, j, v);
            dense[j * n + i] += v;
        }
        let a = CscMatrix::from_triplets(&t);
        for j in 0..n {
            for i in 0..n {
                prop_assert!((a.get(i, j) - dense[j * n + i]).abs() < 1e-12);
            }
        }
    }
}
