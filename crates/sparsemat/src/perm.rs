//! Permutations and symmetric permutation of sparse matrices.

use crate::error::SparseError;

/// A permutation of `0..n`, stored with both directions for O(1) queries.
///
/// Conventions: `old_of(new)` maps a *new* (post-permutation) index to the
/// *old* index it came from, and `new_of(old)` is its inverse. Applying a
/// fill-reducing ordering produces `PAPᵀ` where
/// `(PAPᵀ)[i, j] = A[old_of(i), old_of(j)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `old_of[new] = old`
    old_of: Vec<usize>,
    /// `new_of[old] = new`
    new_of: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        Permutation {
            old_of: v.clone(),
            new_of: v,
        }
    }

    /// Builds from an `old_of` vector (`old_of[new] = old`), validating
    /// that it is a bijection on `0..n`.
    pub fn from_old_of(old_of: Vec<usize>) -> Result<Self, SparseError> {
        let n = old_of.len();
        let mut new_of = vec![usize::MAX; n];
        for (new, &old) in old_of.iter().enumerate() {
            if old >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {old} out of range for n = {n}"
                )));
            }
            if new_of[old] != usize::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {old} appears twice"
                )));
            }
            new_of[old] = new;
        }
        Ok(Permutation { old_of, new_of })
    }

    /// Builds from a `new_of` vector (`new_of[old] = new`).
    pub fn from_new_of(new_of: Vec<usize>) -> Result<Self, SparseError> {
        let p = Self::from_old_of(new_of)?;
        Ok(p.inverse())
    }

    /// Size of the permuted index set.
    pub fn len(&self) -> usize {
        self.old_of.len()
    }

    /// True when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.old_of.is_empty()
    }

    /// Old index corresponding to `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.old_of[new]
    }

    /// New index corresponding to `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.new_of[old]
    }

    /// The full `old_of` vector.
    pub fn old_of_slice(&self) -> &[usize] {
        &self.old_of
    }

    /// The full `new_of` vector.
    pub fn new_of_slice(&self) -> &[usize] {
        &self.new_of
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            old_of: self.new_of.clone(),
            new_of: self.old_of.clone(),
        }
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    ///
    /// With orderings this means: `other` renumbers original→intermediate,
    /// `self` renumbers intermediate→final, and the result renumbers
    /// original→final.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        let old_of: Vec<usize> = (0..self.len())
            .map(|newest| other.old_of(self.old_of(newest)))
            .collect();
        Permutation {
            new_of: {
                let mut inv = vec![0usize; old_of.len()];
                for (new, &old) in old_of.iter().enumerate() {
                    inv[old] = new;
                }
                inv
            },
            old_of,
        }
    }

    /// Gathers `x` into new order: `out[new] = x[old_of(new)]`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply_into(x, &mut out);
        out
    }

    /// Scatters `x` back to old order: `out[old_of(new)] = x[new]`.
    pub fn apply_inv_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.len()];
        self.apply_inv_into(x, &mut out);
        out
    }

    /// In-place variant of [`apply_vec`](Self::apply_vec): gathers `x`
    /// into new order in the caller's `out` (no allocation).
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len());
        assert_eq!(out.len(), self.len());
        for (new, &old) in self.old_of.iter().enumerate() {
            out[new] = x[old];
        }
    }

    /// In-place variant of [`apply_inv_vec`](Self::apply_inv_vec):
    /// scatters `x` back to old order in the caller's `out` (no
    /// allocation).
    pub fn apply_inv_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len());
        assert_eq!(out.len(), self.len());
        for (new, &old) in self.old_of.iter().enumerate() {
            out[old] = x[new];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_self_inverse() {
        let p = Permutation::identity(5);
        assert_eq!(p, p.inverse());
        assert_eq!(p.old_of(3), 3);
    }

    #[test]
    fn from_old_of_validates() {
        assert!(Permutation::from_old_of(vec![0, 1, 1]).is_err());
        assert!(Permutation::from_old_of(vec![0, 3]).is_err());
        let p = Permutation::from_old_of(vec![2, 0, 1]).unwrap();
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.new_of(0), 1);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_old_of(vec![3, 1, 0, 2]).unwrap();
        let q = p.inverse();
        for i in 0..4 {
            // Inversion swaps the two directions.
            assert_eq!(q.old_of(i), p.new_of(i));
            assert_eq!(q.new_of(i), p.old_of(i));
            // And the fundamental round-trip identities hold.
            assert_eq!(p.old_of(p.new_of(i)), i);
            assert_eq!(p.new_of(p.old_of(i)), i);
        }
    }

    #[test]
    fn apply_and_unapply_vec() {
        let p = Permutation::from_old_of(vec![2, 0, 1]).unwrap();
        let x = [10.0, 20.0, 30.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.apply_inv_vec(&y), x.to_vec());
        // The in-place variants match the allocating ones.
        let mut buf = [0.0; 3];
        p.apply_into(&x, &mut buf);
        assert_eq!(buf.to_vec(), y);
        p.apply_inv_into(&y, &mut buf);
        assert_eq!(buf, x);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let p1 = Permutation::from_old_of(vec![1, 2, 0]).unwrap(); // original -> intermediate
        let p2 = Permutation::from_old_of(vec![2, 1, 0]).unwrap(); // intermediate -> final
        let c = p2.compose(&p1);
        let x = [1.0, 2.0, 3.0];
        let via_steps = p2.apply_vec(&p1.apply_vec(&x));
        assert_eq!(c.apply_vec(&x), via_steps);
    }

    #[test]
    fn from_new_of_matches_inverse_construction() {
        let p = Permutation::from_new_of(vec![1, 2, 0]).unwrap();
        assert_eq!(p.new_of(0), 1);
        assert_eq!(p.new_of(1), 2);
        assert_eq!(p.old_of(0), 2);
    }
}
