//! Coordinate-format (triplet) builder.
//!
//! [`TripletMatrix`] is the mutable entry point of the substrate: entries
//! are appended in any order, duplicates are summed on conversion, and the
//! result is compressed into [`CscMatrix`](crate::CscMatrix) or
//! [`SymCsc`](crate::SymCsc).

use crate::error::SparseError;

/// A sparse matrix in coordinate (COO) format, used as a builder.
///
/// Entries may appear in any order and may repeat; repeated entries are
/// summed when the matrix is compressed.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty builder with storage reserved for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows of the target matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the target matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of (possibly duplicate) entries pushed so far.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends entry `(row, col, val)`. Panics in debug builds if out of
    /// bounds; use [`try_push`](Self::try_push) for checked insertion.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        debug_assert!(row < self.nrows && col < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Appends entry `(row, col, val)`, validating bounds.
    pub fn try_push(&mut self, row: usize, col: usize, val: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.push(row, col, val);
        Ok(())
    }

    /// Appends `(row, col, val)` and, when off-diagonal, `(col, row, val)`.
    ///
    /// Convenient when assembling symmetric matrices from element stencils.
    pub fn push_sym(&mut self, row: usize, col: usize, val: f64) {
        self.push(row, col, val);
        if row != col {
            self.push(col, row, val);
        }
    }

    /// Immutable views of the raw triplet arrays `(rows, cols, vals)`.
    pub fn triplets(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.rows, &self.cols, &self.vals)
    }

    /// Compresses into CSC arrays `(colptr, rowind, values)`, summing
    /// duplicates and sorting row indices within each column.
    ///
    /// This is the workhorse shared by [`CscMatrix::from_triplets`]
    /// (crate::CscMatrix::from_triplets) and
    /// [`SymCsc::from_lower_triplets`](crate::SymCsc::from_lower_triplets).
    pub fn compress(&self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let n = self.ncols;
        let nnz = self.vals.len();

        // Counting sort by column.
        let mut colptr = vec![0usize; n + 1];
        for &c in &self.cols {
            colptr[c + 1] += 1;
        }
        for j in 0..n {
            colptr[j + 1] += colptr[j];
        }
        let mut rowind = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut next = colptr.clone();
        for k in 0..nnz {
            let c = self.cols[k];
            let dst = next[c];
            rowind[dst] = self.rows[k];
            values[dst] = self.vals[k];
            next[c] += 1;
        }

        // Sort rows within each column and combine duplicates in place.
        let mut out_colptr = vec![0usize; n + 1];
        let mut write = 0usize;
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            let (lo, hi) = (colptr[j], colptr[j + 1]);
            scratch.clear();
            scratch.extend(
                rowind[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let col_start = write;
            for &(r, v) in scratch.iter() {
                if write > col_start && rowind[write - 1] == r {
                    values[write - 1] += v;
                } else {
                    rowind[write] = r;
                    values[write] = v;
                    write += 1;
                }
            }
            out_colptr[j + 1] = write;
        }
        rowind.truncate(write);
        values.truncate(write);
        (out_colptr, rowind, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_compresses_to_empty_csc() {
        let t = TripletMatrix::new(4, 3);
        let (colptr, rowind, values) = t.compress();
        assert_eq!(colptr, vec![0, 0, 0, 0]);
        assert!(rowind.is_empty());
        assert!(values.is_empty());
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 0, 1.5);
        t.push(1, 0, 2.5);
        t.push(0, 0, 1.0);
        let (colptr, rowind, values) = t.compress();
        assert_eq!(colptr, vec![0, 2, 2, 2]);
        assert_eq!(rowind, vec![0, 1]);
        assert_eq!(values, vec![1.0, 4.0]);
    }

    #[test]
    fn rows_sorted_within_columns() {
        let mut t = TripletMatrix::new(5, 2);
        t.push(4, 1, 1.0);
        t.push(0, 1, 2.0);
        t.push(2, 1, 3.0);
        let (_, rowind, values) = t.compress();
        assert_eq!(rowind, vec![0, 2, 4]);
        assert_eq!(values, vec![2.0, 3.0, 1.0]);
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut t = TripletMatrix::new(2, 2);
        assert!(t.try_push(2, 0, 1.0).is_err());
        assert!(t.try_push(0, 2, 1.0).is_err());
        assert!(t.try_push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn push_sym_mirrors_offdiagonal() {
        let mut t = TripletMatrix::new(3, 3);
        t.push_sym(2, 1, -1.0);
        t.push_sym(1, 1, 4.0);
        assert_eq!(t.nnz(), 3);
        let (colptr, rowind, _) = t.compress();
        assert_eq!(colptr, vec![0, 0, 2, 3]);
        assert_eq!(rowind, vec![1, 2, 1]);
    }
}
