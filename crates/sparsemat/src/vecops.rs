//! Small dense-vector helpers shared across the workspace tests and
//! examples (norms, axpy, residuals).

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Infinity norm.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Componentwise difference norm ‖x − y‖₂.
pub fn diff_norm2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_and_dot() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        assert_eq!(dot(&x, &y), 60.0);
    }

    #[test]
    fn diff_norm() {
        assert_eq!(diff_norm2(&[1.0, 1.0], &[1.0, 2.0]), 1.0);
    }
}
