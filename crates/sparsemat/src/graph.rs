//! Undirected adjacency graphs in compressed (CSR-like) form.
//!
//! The ordering algorithms (nested dissection, minimum degree, RCM) all
//! operate on [`Graph`]: the adjacency structure of a symmetric sparse
//! matrix with self-loops removed.

use crate::error::SparseError;

/// Compressed adjacency structure of an undirected graph on `0..n`.
///
/// Every edge `{u, v}` is stored in both endpoint lists. Neighbor lists are
/// sorted; no self-loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
}

impl Graph {
    /// Builds from raw compressed adjacency, validating symmetry, sorting
    /// and absence of self-loops.
    pub fn from_parts(xadj: Vec<usize>, adjncy: Vec<usize>) -> Result<Self, SparseError> {
        if xadj.is_empty() || xadj[0] != 0 || *xadj.last().unwrap() != adjncy.len() {
            return Err(SparseError::InvalidStructure(
                "graph xadj endpoints invalid".to_string(),
            ));
        }
        let n = xadj.len() - 1;
        let mut g = Graph { xadj, adjncy };
        // Sort each list (cheap insurance; often already sorted).
        for v in 0..n {
            let (lo, hi) = (g.xadj[v], g.xadj[v + 1]);
            if lo > hi || hi > g.adjncy.len() {
                return Err(SparseError::InvalidStructure(format!(
                    "xadj not monotone at vertex {v}"
                )));
            }
            g.adjncy[lo..hi].sort_unstable();
        }
        for v in 0..n {
            for &u in g.neighbors(v) {
                if u >= n {
                    return Err(SparseError::InvalidStructure(format!(
                        "neighbor {u} of vertex {v} out of range"
                    )));
                }
                if u == v {
                    return Err(SparseError::InvalidStructure(format!(
                        "self-loop at vertex {v}"
                    )));
                }
                if g.neighbors(u).binary_search(&v).is_err() {
                    return Err(SparseError::InvalidStructure(format!(
                        "edge ({v}, {u}) not symmetric"
                    )));
                }
            }
        }
        Ok(g)
    }

    /// Builds a graph from an edge list (self-loops ignored, duplicates
    /// collapsed).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut deg = vec![0usize; n];
        let mut clean: Vec<(usize, usize)> = edges
            .iter()
            .filter(|&&(u, v)| u != v && u < n && v < n)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        clean.sort_unstable();
        clean.dedup();
        for &(u, v) in &clean {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adjncy = vec![0usize; xadj[n]];
        let mut next = xadj.clone();
        for &(u, v) in &clean {
            adjncy[next[u]] = v;
            next[u] += 1;
            adjncy[next[v]] = u;
            next[v] += 1;
        }
        let mut g = Graph { xadj, adjncy };
        for v in 0..n {
            let (lo, hi) = (g.xadj[v], g.xadj[v + 1]);
            g.adjncy[lo..hi].sort_unstable();
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Sorted neighbor list of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Raw `xadj` array.
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw `adjncy` array.
    pub fn adjncy(&self) -> &[usize] {
        &self.adjncy
    }

    /// True when edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The subgraph induced by `vertices`, plus the mapping
    /// `local -> global` (which equals the sorted, deduplicated input).
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut globals: Vec<usize> = vertices.to_vec();
        globals.sort_unstable();
        globals.dedup();
        let mut local_of = vec![usize::MAX; self.n()];
        for (local, &g) in globals.iter().enumerate() {
            local_of[g] = local;
        }
        let mut edges = Vec::new();
        for (lu, &gu) in globals.iter().enumerate() {
            for &gv in self.neighbors(gu) {
                let lv = local_of[gv];
                if lv != usize::MAX && lu < lv {
                    edges.push((lu, lv));
                }
            }
        }
        (Graph::from_edges(globals.len(), &edges), globals)
    }

    /// Connected components, as a vector of vertex lists.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.n();
        let mut comp = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let id = comps.len();
            let mut members = Vec::new();
            comp[s] = id;
            stack.push(s);
            while let Some(v) = stack.pop() {
                members.push(v);
                for &u in self.neighbors(v) {
                    if comp[u] == usize::MAX {
                        comp[u] = id;
                        stack.push(u);
                    }
                }
            }
            members.sort_unstable();
            comps.push(members);
        }
        comps
    }

    /// Breadth-first level sets from `root` restricted to vertices where
    /// `mask[v]` is true. Returns `(levels, level_of)` where `level_of[v]`
    /// is `usize::MAX` for unreached vertices.
    pub fn bfs_levels(&self, root: usize, mask: &[bool]) -> (Vec<Vec<usize>>, Vec<usize>) {
        let n = self.n();
        let mut level_of = vec![usize::MAX; n];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        if !mask[root] {
            return (levels, level_of);
        }
        let mut frontier = vec![root];
        level_of[root] = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in self.neighbors(v) {
                    if mask[u] && level_of[u] == usize::MAX {
                        level_of[u] = levels.len() + 1;
                        next.push(u);
                    }
                }
            }
            levels.push(frontier);
            frontier = next;
        }
        (levels, level_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn from_parts_rejects_asymmetric() {
        // Edge 0->1 present but 1->0 missing.
        assert!(Graph::from_parts(vec![0, 1, 1], vec![1]).is_err());
    }

    #[test]
    fn degree_and_has_edge() {
        let g = path4();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = path4();
        let (s, globals) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(globals, vec![1, 2, 3]);
        assert_eq!(s.num_edges(), 2);
        assert!(s.has_edge(0, 1)); // 1-2
        assert!(s.has_edge(1, 2)); // 2-3
    }

    #[test]
    fn connected_components_partition() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
        assert_eq!(comps[2], vec![3, 4]);
    }

    #[test]
    fn bfs_levels_from_endpoint() {
        let g = path4();
        let mask = vec![true; 4];
        let (levels, level_of) = g.bfs_levels(0, &mask);
        assert_eq!(levels.len(), 4);
        assert_eq!(level_of, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_respects_mask() {
        let g = path4();
        let mask = vec![true, false, true, true];
        let (levels, level_of) = g.bfs_levels(0, &mask);
        assert_eq!(levels.len(), 1);
        assert_eq!(level_of[2], usize::MAX);
    }
}
