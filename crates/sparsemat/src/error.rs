//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while building, converting or reading sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index lies outside the declared dimensions.
    IndexOutOfBounds {
        row: usize,
        col: usize,
        nrows: usize,
        ncols: usize,
    },
    /// A structurally square operation received a rectangular matrix.
    NotSquare { nrows: usize, ncols: usize },
    /// Lower-triangular input contained an entry strictly above the diagonal.
    UpperEntry { row: usize, col: usize },
    /// A column of a symmetric matrix is missing its diagonal entry.
    MissingDiagonal { col: usize },
    /// Compressed structure is internally inconsistent (bad pointers/order).
    InvalidStructure(String),
    /// A permutation vector is not a bijection on `0..n`.
    InvalidPermutation(String),
    /// Matrix Market parsing failure with a line number when available.
    Parse { line: usize, msg: String },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) outside matrix dimensions {nrows}x{ncols}"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "expected a square matrix, got {nrows}x{ncols}")
            }
            SparseError::UpperEntry { row, col } => write!(
                f,
                "entry ({row}, {col}) lies above the diagonal of a lower-triangular matrix"
            ),
            SparseError::MissingDiagonal { col } => {
                write!(f, "column {col} has no diagonal entry")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            SparseError::Parse { line, msg } => {
                write!(f, "matrix market parse error at line {line}: {msg}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}
