//! Matrix Market (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` headers, which cover the
//! SuiteSparse collection the paper draws its test set from. Pattern
//! matrices are given unit off-diagonal values and diagonally dominant
//! diagonals so they remain usable as SPD test inputs.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::TripletMatrix;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::sym::SymCsc;

/// Symmetry field of a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    General,
    Symmetric,
}

/// Parsed form of a Matrix Market file.
#[derive(Debug, Clone)]
pub struct MmMatrix {
    pub nrows: usize,
    pub ncols: usize,
    pub symmetry: MmSymmetry,
    /// Entries exactly as stored in the file (0-based indices).
    pub entries: Vec<(usize, usize, f64)>,
}

impl MmMatrix {
    /// Converts to a general CSC matrix, mirroring symmetric entries.
    pub fn to_csc(&self) -> CscMatrix {
        let mut t = TripletMatrix::with_capacity(self.nrows, self.ncols, self.entries.len() * 2);
        for &(i, j, v) in &self.entries {
            t.push(i, j, v);
            if self.symmetry == MmSymmetry::Symmetric && i != j {
                t.push(j, i, v);
            }
        }
        CscMatrix::from_triplets(&t)
    }

    /// Converts to symmetric lower storage. For `general` files the strict
    /// upper triangle is ignored (assumed to mirror the lower).
    pub fn to_sym(&self) -> Result<SymCsc, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let mut t = TripletMatrix::with_capacity(self.nrows, self.ncols, self.entries.len());
        for &(i, j, v) in &self.entries {
            if i >= j {
                t.push(i, j, v);
            } else if self.symmetry == MmSymmetry::Symmetric {
                // Symmetric files may store either triangle; fold upward
                // entries onto the lower triangle.
                t.push(j, i, v);
            }
        }
        SymCsc::from_lower_triplets(&t)
    }
}

fn parse_header(line: &str) -> Result<(bool, MmSymmetry), SparseError> {
    let fields: Vec<String> = line.split_whitespace().map(|s| s.to_lowercase()).collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(SparseError::Parse {
            line: 1,
            msg: format!("not a MatrixMarket matrix header: {line:?}"),
        });
    }
    if fields[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: 1,
            msg: format!("only coordinate format supported, got {:?}", fields[2]),
        });
    }
    let pattern = match fields[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(SparseError::Parse {
                line: 1,
                msg: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetry = match fields[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: 1,
                msg: format!("unsupported symmetry {other:?}"),
            })
        }
    };
    Ok((pattern, symmetry))
}

/// Parses a Matrix Market stream.
pub fn parse_matrix_market<R: Read>(reader: R) -> Result<MmMatrix, SparseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or(SparseError::Parse {
            line: 1,
            msg: "empty file".to_string(),
        })?
        .map_err(SparseError::from)?;
    let (pattern, symmetry) = parse_header(&header)?;

    let mut lineno = 1usize;
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        if dims.is_none() {
            let parse = |s: Option<&str>| -> Result<usize, SparseError> {
                s.and_then(|x| x.parse().ok()).ok_or(SparseError::Parse {
                    line: lineno,
                    msg: "bad size line".to_string(),
                })
            };
            let nrows = parse(it.next())?;
            let ncols = parse(it.next())?;
            let nnz = parse(it.next())?;
            dims = Some((nrows, ncols, nnz));
            entries.reserve(nnz);
            continue;
        }
        let (nrows, ncols, _) = dims.unwrap();
        let i: usize = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or(SparseError::Parse {
                line: lineno,
                msg: "bad row index".to_string(),
            })?;
        let j: usize = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or(SparseError::Parse {
                line: lineno,
                msg: "bad column index".to_string(),
            })?;
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("index ({i}, {j}) out of bounds (1-based)"),
            });
        }
        let v: f64 = if pattern {
            // Pattern files carry no values; synthesize SPD-friendly ones.
            if i == j {
                1.0
            } else {
                -0.1
            }
        } else {
            it.next()
                .and_then(|x| x.parse().ok())
                .ok_or(SparseError::Parse {
                    line: lineno,
                    msg: "bad value".to_string(),
                })?
        };
        entries.push((i - 1, j - 1, v));
    }
    let (nrows, ncols, nnz) = dims.ok_or(SparseError::Parse {
        line: lineno,
        msg: "missing size line".to_string(),
    })?;
    if entries.len() != nnz {
        return Err(SparseError::Parse {
            line: lineno,
            msg: format!("expected {nnz} entries, found {}", entries.len()),
        });
    }
    Ok(MmMatrix {
        nrows,
        ncols,
        symmetry,
        entries,
    })
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market<P: AsRef<Path>>(path: P) -> Result<MmMatrix, SparseError> {
    let file = std::fs::File::open(path)?;
    parse_matrix_market(file)
}

/// Writes a symmetric matrix (lower triangle) in Matrix Market format.
pub fn write_matrix_market<W: Write>(w: &mut W, a: &SymCsc) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(w, "{} {} {}", a.n(), a.n(), a.nnz_lower())?;
    for j in 0..a.n() {
        for (&i, &v) in a.col_rows(j).iter().zip(a.col_values(j)) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYM: &str = "%%MatrixMarket matrix coordinate real symmetric\n\
% comment line\n\
3 3 4\n\
1 1 2.0\n\
2 2 2.0\n\
3 3 2.0\n\
3 1 -1.0\n";

    #[test]
    fn parses_symmetric_real() {
        let m = parse_matrix_market(SYM.as_bytes()).unwrap();
        assert_eq!(m.nrows, 3);
        assert_eq!(m.symmetry, MmSymmetry::Symmetric);
        assert_eq!(m.entries.len(), 4);
        let a = m.to_sym().unwrap();
        assert_eq!(a.get(2, 0), -1.0);
        assert_eq!(a.get(0, 2), -1.0);
    }

    #[test]
    fn to_csc_mirrors_symmetric_entries() {
        let m = parse_matrix_market(SYM.as_bytes()).unwrap();
        let a = m.to_csc();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 2), -1.0);
    }

    #[test]
    fn pattern_files_get_synthesized_values() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
2 2 3\n\
1 1\n\
2 1\n\
2 2\n";
        let m = parse_matrix_market(src.as_bytes()).unwrap();
        let a = m.to_sym().unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 0), -0.1);
    }

    #[test]
    fn round_trip_write_read() {
        let m = parse_matrix_market(SYM.as_bytes()).unwrap();
        let a = m.to_sym().unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = parse_matrix_market(buf.as_slice())
            .unwrap()
            .to_sym()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_truncated_and_bad_headers() {
        assert!(parse_matrix_market("".as_bytes()).is_err());
        assert!(parse_matrix_market("%%MatrixMarket vector\n".as_bytes()).is_err());
        let bad = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n";
        assert!(parse_matrix_market(bad.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(parse_matrix_market(oob.as_bytes()).is_err());
    }

    #[test]
    fn symmetric_file_with_upper_entries_folds() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
2 2 3\n\
1 1 4.0\n\
1 2 -1.0\n\
2 2 4.0\n";
        let m = parse_matrix_market(src.as_bytes()).unwrap();
        let a = m.to_sym().unwrap();
        assert_eq!(a.get(1, 0), -1.0);
    }
}
