//! # rlchol-sparse — sparse matrix substrate
//!
//! Foundation types for the `rlchol` workspace: compressed sparse column
//! ([`CscMatrix`]) and row ([`CsrMatrix`]) matrices, a coordinate-format
//! builder ([`TripletMatrix`]), symmetric lower-triangular storage
//! ([`SymCsc`]) used by the Cholesky pipeline, permutations
//! ([`Permutation`]), adjacency graphs ([`Graph`]) and Matrix Market I/O.
//!
//! Everything in the factorization stack — ordering, symbolic analysis and
//! numeric factorization — consumes [`SymCsc`]: the lower triangle
//! (including the diagonal) of a symmetric positive definite matrix with
//! row indices sorted within each column.
//!
//! ```
//! use rlchol_sparse::{TripletMatrix, SymCsc};
//!
//! // 3x3 SPD tridiagonal matrix, lower triangle.
//! let mut t = TripletMatrix::new(3, 3);
//! t.push(0, 0, 2.0);
//! t.push(1, 0, -1.0);
//! t.push(1, 1, 2.0);
//! t.push(2, 1, -1.0);
//! t.push(2, 2, 2.0);
//! let a = SymCsc::from_lower_triplets(&t).unwrap();
//! assert_eq!(a.n(), 3);
//! assert_eq!(a.nnz_lower(), 5);
//! ```

pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod graph;
pub mod io;
pub mod perm;
pub mod sym;
pub mod vecops;

pub use coo::TripletMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use graph::Graph;
pub use io::{read_matrix_market, write_matrix_market};
pub use perm::Permutation;
pub use sym::SymCsc;
