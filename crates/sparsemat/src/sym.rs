//! Symmetric sparse matrices stored as the lower triangle in CSC form.
//!
//! [`SymCsc`] is the input type of the whole Cholesky pipeline: the lower
//! triangle (diagonal included) of a symmetric matrix, columns sorted,
//! every column carrying its diagonal entry first.

use crate::coo::TripletMatrix;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::graph::Graph;
use crate::perm::Permutation;

/// Lower-triangular CSC storage of a symmetric `n x n` matrix.
///
/// Invariants (checked at construction):
/// * square, row indices sorted strictly increasing within each column;
/// * all entries satisfy `row >= col`;
/// * each column stores its diagonal entry (first in the column).
#[derive(Debug, Clone, PartialEq)]
pub struct SymCsc {
    n: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    values: Vec<f64>,
}

impl SymCsc {
    /// Builds from triplets describing the *lower triangle only*.
    ///
    /// Duplicates are summed; entries above the diagonal are rejected.
    pub fn from_lower_triplets(t: &TripletMatrix) -> Result<Self, SparseError> {
        if t.nrows() != t.ncols() {
            return Err(SparseError::NotSquare {
                nrows: t.nrows(),
                ncols: t.ncols(),
            });
        }
        let (rows, cols, _) = t.triplets();
        for (&i, &j) in rows.iter().zip(cols.iter()) {
            if i < j {
                return Err(SparseError::UpperEntry { row: i, col: j });
            }
        }
        let (colptr, rowind, values) = t.compress();
        let m = SymCsc {
            n: t.ncols(),
            colptr,
            rowind,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds from a general CSC matrix holding a full symmetric matrix or
    /// just its lower triangle; upper entries are folded onto the lower
    /// triangle (values from the lower triangle win — the matrix is assumed
    /// numerically symmetric and the upper triangle redundant).
    pub fn from_csc(a: &CscMatrix) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.ncols();
        let mut t = TripletMatrix::with_capacity(n, n, a.nnz());
        for j in 0..n {
            for (&i, &v) in a.col_rows(j).iter().zip(a.col_values(j)) {
                if i >= j {
                    t.push(i, j, v);
                }
            }
        }
        Self::from_lower_triplets(&t)
    }

    /// Builds from raw lower-triangular CSC arrays.
    pub fn from_parts(
        n: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        let m = SymCsc {
            n,
            colptr,
            rowind,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    fn validate(&self) -> Result<(), SparseError> {
        let as_csc = CscMatrix::from_parts(
            self.n,
            self.n,
            self.colptr.clone(),
            self.rowind.clone(),
            self.values.clone(),
        )?;
        for j in 0..self.n {
            let rows = as_csc.col_rows(j);
            match rows.first() {
                Some(&first) if first == j => {}
                Some(&first) if first > j => return Err(SparseError::MissingDiagonal { col: j }),
                Some(&first) => {
                    return Err(SparseError::UpperEntry { row: first, col: j });
                }
                None => return Err(SparseError::MissingDiagonal { col: j }),
            }
        }
        Ok(())
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entries (lower triangle including diagonal).
    pub fn nnz_lower(&self) -> usize {
        self.rowind.len()
    }

    /// Entries of the logical full matrix: `2 * nnz_lower - n`.
    pub fn nnz_full(&self) -> usize {
        2 * self.nnz_lower() - self.n
    }

    /// Heap bytes of this matrix's storage (column pointers, row
    /// indices, values).
    pub fn memory_bytes(&self) -> u64 {
        let usz = std::mem::size_of::<usize>() as u64;
        (self.colptr.len() + self.rowind.len()) as u64 * usz
            + self.values.len() as u64 * std::mem::size_of::<f64>() as u64
    }

    /// Column pointers (length `n + 1`).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices.
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// Values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable values (pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Row indices of (lower-triangular) column `j`; `j` itself is first.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`, aligned with [`col_rows`](Self::col_rows).
    pub fn col_values(&self, j: usize) -> &[f64] {
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// The diagonal as a dense vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n).map(|j| self.values[self.colptr[j]]).collect()
    }

    /// Entry `(i, j)` of the full symmetric matrix.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        match self.col_rows(c).binary_search(&r) {
            Ok(pos) => self.values[self.colptr[c] + pos],
            Err(_) => 0.0,
        }
    }

    /// Dense `y = A x` for the full symmetric operator.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.fill(0.0);
        for j in 0..self.n {
            let xj = x[j];
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            // Diagonal entry sits first in the column.
            y[j] += self.values[lo] * xj;
            for k in lo + 1..hi {
                let i = self.rowind[k];
                let v = self.values[k];
                y[i] += v * xj;
                y[j] += v * x[i];
            }
        }
    }

    /// Frobenius norm of the full symmetric matrix.
    pub fn norm_fro(&self) -> f64 {
        let mut acc = 0.0;
        for j in 0..self.n {
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            acc += self.values[lo] * self.values[lo];
            for k in lo + 1..hi {
                acc += 2.0 * self.values[k] * self.values[k];
            }
        }
        acc.sqrt()
    }

    /// Symmetric permutation `PAPᵀ`, keeping lower-triangular storage.
    pub fn permute(&self, p: &Permutation) -> SymCsc {
        assert_eq!(p.len(), self.n);
        let mut t = TripletMatrix::with_capacity(self.n, self.n, self.nnz_lower());
        for j in 0..self.n {
            let jn = p.new_of(j);
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                let ind = p.new_of(i);
                let (r, c) = if ind >= jn { (ind, jn) } else { (jn, ind) };
                t.push(r, c, v);
            }
        }
        SymCsc::from_lower_triplets(&t)
            .expect("permuting a valid SymCsc always yields a valid SymCsc")
    }

    /// Expands to a full (both triangles) general CSC matrix.
    pub fn to_full_csc(&self) -> CscMatrix {
        let mut t = TripletMatrix::with_capacity(self.n, self.n, self.nnz_full());
        for j in 0..self.n {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                t.push(i, j, v);
                if i != j {
                    t.push(j, i, v);
                }
            }
        }
        CscMatrix::from_triplets(&t)
    }

    /// The adjacency graph of the nonzero pattern (no self loops).
    pub fn to_graph(&self) -> Graph {
        let mut deg = vec![0usize; self.n];
        for j in 0..self.n {
            for &i in self.col_rows(j) {
                if i != j {
                    deg[i] += 1;
                    deg[j] += 1;
                }
            }
        }
        let mut xadj = vec![0usize; self.n + 1];
        for v in 0..self.n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adjncy = vec![0usize; xadj[self.n]];
        let mut next = xadj.clone();
        for j in 0..self.n {
            for &i in self.col_rows(j) {
                if i != j {
                    adjncy[next[i]] = j;
                    next[i] += 1;
                    adjncy[next[j]] = i;
                    next[j] += 1;
                }
            }
        }
        Graph::from_parts(xadj, adjncy).expect("valid SymCsc yields a valid graph")
    }

    /// The strict lower-triangular pattern as (colptr, rowind) without the
    /// diagonal — convenient for symbolic analysis.
    pub fn strict_lower_pattern(&self) -> (Vec<usize>, Vec<usize>) {
        let mut colptr = vec![0usize; self.n + 1];
        let mut rowind = Vec::with_capacity(self.nnz_lower() - self.n);
        for j in 0..self.n {
            // Skip the diagonal (first entry of each column).
            for &i in &self.col_rows(j)[1..] {
                rowind.push(i);
            }
            colptr[j + 1] = rowind.len();
        }
        (colptr, rowind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4x4 SPD arrow matrix: diag 4, last row/col -1.
    fn arrow4() -> SymCsc {
        let mut t = TripletMatrix::new(4, 4);
        for j in 0..4 {
            t.push(j, j, 4.0);
        }
        for j in 0..3 {
            t.push(3, j, -1.0);
        }
        SymCsc::from_lower_triplets(&t).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let a = arrow4();
        assert_eq!(a.n(), 4);
        assert_eq!(a.nnz_lower(), 7);
        assert_eq!(a.nnz_full(), 10);
        assert_eq!(a.diag(), vec![4.0; 4]);
    }

    #[test]
    fn rejects_upper_entries_and_missing_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        assert!(matches!(
            SymCsc::from_lower_triplets(&t),
            Err(SparseError::UpperEntry { .. })
        ));
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        assert!(matches!(
            SymCsc::from_lower_triplets(&t),
            Err(SparseError::MissingDiagonal { col: 1 })
        ));
    }

    #[test]
    fn get_covers_both_triangles() {
        let a = arrow4();
        assert_eq!(a.get(3, 1), -1.0);
        assert_eq!(a.get(1, 3), -1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 4.0);
    }

    #[test]
    fn matvec_matches_full_expansion() {
        let a = arrow4();
        let full = a.to_full_csc();
        let x = [1.0, -2.0, 0.5, 3.0];
        let (mut y1, mut y2) = ([0.0; 4], [0.0; 4]);
        a.matvec(&x, &mut y1);
        full.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn norm_counts_offdiagonals_twice() {
        let a = arrow4();
        let expect = (4.0f64 * 16.0 + 6.0 * 1.0).sqrt();
        assert!((a.norm_fro() - expect).abs() < 1e-14);
        assert!((a.to_full_csc().norm_fro() - expect).abs() < 1e-14);
    }

    #[test]
    fn permutation_preserves_entries() {
        let a = arrow4();
        let p = Permutation::from_old_of(vec![3, 1, 0, 2]).unwrap();
        let b = a.permute(&p);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(b.get(p.new_of(i), p.new_of(j)), a.get(i, j));
            }
        }
    }

    #[test]
    fn graph_has_symmetric_adjacency() {
        let a = arrow4();
        let g = a.to_graph();
        assert_eq!(g.n(), 4);
        assert_eq!(g.degree(3), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbors(0), &[3]);
    }

    #[test]
    fn strict_lower_pattern_drops_diagonal() {
        let a = arrow4();
        let (colptr, rowind) = a.strict_lower_pattern();
        assert_eq!(colptr, vec![0, 1, 2, 3, 3]);
        assert_eq!(rowind, vec![3, 3, 3]);
    }
}
