//! Compressed sparse row matrices.
//!
//! CSR is the transpose view of CSC; it exists here mainly for row-wise
//! traversal (e.g. building adjacency structures) and for users whose data
//! arrives row-major. The factorization stack itself is column-oriented.

use crate::csc::CscMatrix;
use crate::error::SparseError;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Column indices are sorted strictly increasing within each row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colind: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colind: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        // Validation is delegated to CscMatrix on the transposed dims:
        // the structural invariants are identical.
        CscMatrix::from_parts(ncols, nrows, rowptr.clone(), colind.clone(), values.clone())?;
        Ok(CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colind,
            values,
        })
    }

    /// Converts a CSC matrix into CSR form.
    pub fn from_csc(a: &CscMatrix) -> Self {
        let t = a.transpose();
        CsrMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            rowptr: t.colptr().to_vec(),
            colind: t.rowind().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Converts into CSC form.
    pub fn to_csc(&self) -> CscMatrix {
        // A CSR matrix reinterpreted as CSC is the transpose, so transpose
        // once more to recover the original orientation.
        CscMatrix::from_parts(
            self.ncols,
            self.nrows,
            self.rowptr.clone(),
            self.colind.clone(),
            self.values.clone(),
        )
        .expect("internal CSR invariants guarantee a valid transpose view")
        .transpose()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array.
    pub fn colind(&self) -> &[usize] {
        &self.colind
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices of row `i`.
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.colind[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Values of row `i`.
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Dense `y = A * x` using row-wise dot products.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for i in 0..self.nrows {
            let mut acc = 0.0;
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                acc += v * x[j];
            }
            y[i] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    fn sample_csc() -> CscMatrix {
        let mut t = TripletMatrix::new(3, 4);
        t.push(0, 0, 1.0);
        t.push(2, 0, 4.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, 2.0);
        t.push(2, 3, 5.0);
        CscMatrix::from_triplets(&t)
    }

    #[test]
    fn csc_csr_round_trip() {
        let a = sample_csc();
        let r = CsrMatrix::from_csc(&a);
        assert_eq!(r.nrows(), 3);
        assert_eq!(r.ncols(), 4);
        assert_eq!(r.to_csc(), a);
    }

    #[test]
    fn row_access() {
        let a = sample_csc();
        let r = CsrMatrix::from_csc(&a);
        assert_eq!(r.row_cols(0), &[0, 2]);
        assert_eq!(r.row_values(0), &[1.0, 2.0]);
        assert_eq!(r.row_cols(2), &[0, 3]);
    }

    #[test]
    fn matvec_agrees_with_csc() {
        let a = sample_csc();
        let r = CsrMatrix::from_csc(&a);
        let x = [1.0, 2.0, 3.0, 4.0];
        let (mut y1, mut y2) = ([0.0; 3], [0.0; 3]);
        a.matvec(&x, &mut y1);
        r.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn from_parts_validates() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]).is_ok());
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]).is_err());
    }
}
