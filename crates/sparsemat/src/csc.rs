//! Compressed sparse column matrices.

use crate::coo::TripletMatrix;
use crate::error::SparseError;

/// A general sparse matrix in compressed sparse column (CSC) format.
///
/// Row indices are sorted strictly increasing within each column and no
/// duplicates are present. This invariant is established by every
/// constructor and checked by [`validate`](Self::validate).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from raw parts, validating all invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        let m = CscMatrix {
            nrows,
            ncols,
            colptr,
            rowind,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds from a triplet builder, summing duplicates.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let (colptr, rowind, values) = t.compress();
        CscMatrix {
            nrows: t.nrows(),
            ncols: t.ncols(),
            colptr,
            rowind,
            values,
        }
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowind: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Checks structural invariants, returning the first violation found.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.colptr.len() != self.ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "colptr has length {}, expected {}",
                self.colptr.len(),
                self.ncols + 1
            )));
        }
        if self.colptr[0] != 0 {
            return Err(SparseError::InvalidStructure(
                "colptr[0] must be 0".to_string(),
            ));
        }
        if *self.colptr.last().unwrap() != self.rowind.len()
            || self.rowind.len() != self.values.len()
        {
            return Err(SparseError::InvalidStructure(
                "colptr/rowind/values lengths inconsistent".to_string(),
            ));
        }
        for j in 0..self.ncols {
            if self.colptr[j] > self.colptr[j + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "colptr not monotone at column {j}"
                )));
            }
            let col = &self.rowind[self.colptr[j]..self.colptr[j + 1]];
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "rows not strictly increasing in column {j}"
                    )));
                }
            }
            if let Some(&last) = col.last() {
                if last >= self.nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: last,
                        col: j,
                        nrows: self.nrows,
                        ncols: self.ncols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Column pointer array (length `ncols + 1`).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array (length `nnz`).
    pub fn rowind(&self) -> &[usize] {
        &self.rowind
    }

    /// Value array (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable value array; the pattern cannot be changed through it.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Row indices of column `j`.
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`.
    pub fn col_values(&self, j: usize) -> &[f64] {
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Looks up entry `(i, j)` by binary search; zero when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let rows = self.col_rows(j);
        match rows.binary_search(&i) {
            Ok(pos) => self.values[self.colptr[j] + pos],
            Err(_) => 0.0,
        }
    }

    /// Dense `y = A * x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        y.fill(0.0);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                y[i] += v * xj;
            }
        }
    }

    /// Transpose (also the CSC→CSR conversion kernel).
    pub fn transpose(&self) -> CscMatrix {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &i in &self.rowind {
            colptr[i + 1] += 1;
        }
        for i in 0..self.nrows {
            colptr[i + 1] += colptr[i];
        }
        let mut rowind = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = colptr.clone();
        for j in 0..self.ncols {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                let dst = next[i];
                rowind[dst] = j;
                values[dst] = v;
                next[i] += 1;
            }
        }
        // Traversing columns left to right writes each transposed column in
        // increasing row order, so the sortedness invariant holds.
        CscMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            colptr,
            rowind,
            values,
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Converts to a dense column-major array (row `i`, column `j` at
    /// `i + j * nrows`). Intended for tests on small matrices.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows * self.ncols];
        for j in 0..self.ncols {
            for (&i, &v) in self.col_rows(j).iter().zip(self.col_values(j)) {
                d[i + j * self.nrows] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 0, 4.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, 2.0);
        t.push(2, 2, 5.0);
        CscMatrix::from_triplets(&t)
    }

    #[test]
    fn get_and_dims() {
        let a = sample();
        assert_eq!((a.nrows(), a.ncols(), a.nnz()), (3, 3, 5));
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.matvec(&x, &mut y);
        assert_eq!(y, [7.0, 6.0, 19.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn transpose_preserves_validity() {
        let a = sample().transpose();
        assert!(a.validate().is_ok());
    }

    #[test]
    fn identity_behaves() {
        let i = CscMatrix::identity(4);
        assert!(i.validate().is_ok());
        let x = [1.0, -2.0, 3.0, 0.5];
        let mut y = [0.0; 4];
        i.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn from_parts_rejects_bad_structure() {
        // rows out of order
        let r = CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
        // row index out of bounds
        let r = CscMatrix::from_parts(2, 1, vec![0, 1], vec![5], vec![1.0]);
        assert!(r.is_err());
        // bad colptr length
        let r = CscMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn to_dense_layout() {
        let a = sample();
        let d = a.to_dense();
        assert_eq!(d[0 + 0 * 3], 1.0);
        assert_eq!(d[2 + 0 * 3], 4.0);
        assert_eq!(d[0 + 2 * 3], 2.0);
        assert_eq!(d[1 + 1 * 3], 3.0);
    }
}
