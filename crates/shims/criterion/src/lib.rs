//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock harness: warm up,
//! then repeat the routine until the measurement window closes and
//! report the mean time per iteration (plus derived throughput).
//!
//! No statistics, HTML reports or command-line filtering: the value here
//! is that `cargo bench` runs offline and prints comparable numbers.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink (stable-Rust best effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle passed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Ungrouped benchmark (criterion compatibility).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(BenchmarkId::from(name.into()), &mut f);
        g.finish();
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units the per-iteration throughput is derived from.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Abstract elements (flops, entries) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on timed iterations (criterion compatibility; the
    /// harness keeps iterating until the measurement window closes).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target duration of the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the per-iteration throughput used in the report line.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            min_iters: self.sample_size,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Prints nothing extra; criterion compatibility.
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut line = format!(
            "bench {full:<44} {:>12}  ({} iterations)",
            format_ns(b.mean_ns),
            b.iters
        );
        if let Some(t) = self.throughput {
            let per_sec = match t {
                Throughput::Elements(e) => e as f64 / (b.mean_ns * 1e-9),
                Throughput::Bytes(e) => e as f64 / (b.mean_ns * 1e-9),
            };
            let unit = match t {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            line.push_str(&format!("  {:.3e} {unit}", per_sec));
        }
        println!("{line}");
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Measures one routine: warm-up, then timed iterations.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_iters: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean duration per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up window closes.
        let wu = Instant::now();
        while wu.elapsed() < self.warm_up {
            black_box(routine());
        }
        // Measure until the window closes and the minimum sample count is
        // reached.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement || (iters as usize) < self.min_iters {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Collects benchmark functions into a runnable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` invoking each group (criterion compatibility).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("potrf", 64).id, "potrf/64");
        assert_eq!(BenchmarkId::from_parameter(512).id, "512");
    }
}
