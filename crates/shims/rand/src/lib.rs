//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so this shim provides the
//! small deterministic subset the tests and matrix generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`] over `f64` and integer ranges. The generator
//! is SplitMix64 — statistically fine for test data and reproducible
//! matrix values, not a cryptographic or research-grade source.

use std::ops::Range;

/// Minimal core trait: a 64-bit generator step.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the (half-open) range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * u
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans the
                // workspace draws (test shapes, grid coordinates).
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32, isize);

/// Convenience sampling methods, auto-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform draw from `range` (half-open).
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Uniform draw in `[0, 1)`.
    fn random(&mut self) -> f64 {
        self.random_range(0.0..1.0)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(3usize..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
