//! Offline stand-in for `parking_lot`: a [`Mutex`] over `std::sync::Mutex`
//! exposing the poison-free `lock()` signature the workspace uses.

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// Mutex with `parking_lot`'s panic-transparent locking: a poisoned std
/// mutex is recovered rather than propagated, matching parking_lot's
/// no-poisoning semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
