//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: [`Strategy`]
//! with [`Strategy::prop_map`], [`any`], range and tuple strategies,
//! [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: each case is generated from a deterministic SplitMix64 stream
//! keyed by the case index, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case` (deterministic across runs).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x9e3779b97f4a7c15u64.wrapping_mul(case.wrapping_add(1)),
        }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategies!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy for any value of a primitive type (uniform over the domain).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — uniform values of `T`.
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy,
{
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u64, u32, usize, i64, i32, u8);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts inside a proptest body (plain panic — no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares deterministic property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{AnyStrategy, Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even(max: usize) -> impl Strategy<Value = usize> {
        (0..max / 2, any::<u64>()).prop_map(|(h, _)| h * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_strategy_holds(x in arb_even(100)) {
            prop_assert!(x.is_multiple_of(2));
        }

        #[test]
        fn multiple_args(n in 1usize..10, seed in any::<u64>()) {
            prop_assert!((1..10).contains(&n));
            let _ = seed;
        }

        #[test]
        fn vec_lengths(v in collection::vec(-2.0..2.0f64, 17usize)) {
            prop_assert_eq!(v.len(), 17);
            prop_assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = |case| {
            let mut rng = TestRng::for_case(case);
            (1usize..50, any::<u64>()).generate(&mut rng)
        };
        assert_eq!(g(3), g(3));
        assert_ne!(g(3), g(4));
    }
}
