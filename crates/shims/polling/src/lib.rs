//! Offline stand-in for the `polling` crate: level-triggered readiness
//! notification over the POSIX `poll(2)` system call, std-only.
//!
//! The real crate wraps epoll/kqueue/IOCP behind a registry; this shim
//! keeps the *stateless* shape of `poll(2)` itself — the caller hands a
//! fresh [`PollFd`] slice to every [`poll`] call — which is exactly what
//! a server with a per-iteration connection registry wants, and needs no
//! libc crate: `std` already links the C runtime, so the one symbol is
//! declared here directly.
//!
//! Two pieces:
//!
//! * [`poll`] — blocks until any fd in the slice is ready (or the
//!   timeout elapses), filling each entry's `revents`.
//! * [`Waker`] — a `std::io::pipe` pair whose read end participates in
//!   the poll set, so other threads can interrupt a blocked [`poll`]
//!   ([`Waker::wake`] is async-signal-safe cheap: one byte, written only
//!   while no wake is already pending).
//!
//! On non-Unix targets [`poll`] returns `ErrorKind::Unsupported`;
//! callers fall back to blocking I/O (the service crate keeps its legacy
//! thread-per-connection loop for exactly that case).

use std::io;
use std::time::Duration;

/// Readable readiness (POSIX `POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (POSIX `POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (POSIX `POLLERR`; only ever set in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hang-up (POSIX `POLLHUP`; only ever set in `revents`).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (POSIX `POLLNVAL`; only ever set in `revents`).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set — ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A poll-set entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when the fd is readable (or has pending hang-up/error state,
    /// which a read will surface).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// True when the fd is writable.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR) != 0
    }

    /// True when any event fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::ffi::{c_int, c_ulong};
    use std::io;
    use std::time::Duration;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            // poll(2) takes whole milliseconds; round up so a short
            // positive timeout never becomes a busy-spin 0.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
            None => -1,
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                // A signal woke the call: report "nothing ready" and let
                // the caller loop.
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    pub fn poll_impl(_fds: &mut [PollFd], _timeout: Option<Duration>) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "poll(2) readiness is only wired up on Unix targets",
        ))
    }
}

/// Blocks until at least one entry is ready or `timeout` elapses
/// (`None` = wait forever). Returns the number of ready entries;
/// `Ok(0)` on timeout or signal interruption. Each ready entry's
/// `revents` is filled in place.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    sys::poll_impl(fds, timeout)
}

/// Cross-thread wakeup for a blocked [`poll`]: register
/// [`Waker::read_fd`] with `POLLIN` in the poll set; any thread calls
/// [`Waker::wake`] to make that entry readable. [`Waker::drain`] resets
/// it (call whenever the entry reports readable).
///
/// At most one wake byte is in flight at a time (an atomic flag
/// suppresses duplicates), so the pipe can never fill up and `wake`
/// never blocks.
pub struct Waker {
    reader: std::io::PipeReader,
    writer: std::io::PipeWriter,
    signaled: std::sync::atomic::AtomicBool,
}

impl Waker {
    /// Builds the pipe pair.
    pub fn new() -> io::Result<Self> {
        let (reader, writer) = std::io::pipe()?;
        Ok(Waker {
            reader,
            writer,
            signaled: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The fd to register with `POLLIN`.
    #[cfg(unix)]
    pub fn read_fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.reader.as_raw_fd()
    }

    /// The fd to register with `POLLIN` (unsupported off-Unix).
    #[cfg(not(unix))]
    pub fn read_fd(&self) -> i32 {
        -1
    }

    /// Makes the read end readable, interrupting a blocked [`poll`].
    /// Cheap and non-blocking from any thread.
    pub fn wake(&self) {
        use std::io::Write;
        use std::sync::atomic::Ordering;
        if !self.signaled.swap(true, Ordering::SeqCst) {
            let _ = (&self.writer).write(&[1]);
        }
    }

    /// Consumes pending wake bytes. Call only after a poll reported the
    /// read end readable (the read would block otherwise). Clearing the
    /// flag *before* reading means a `wake` racing this drain leaves the
    /// fd readable for the next poll — wakeups are never lost.
    pub fn drain(&self) {
        use std::io::Read;
        use std::sync::atomic::Ordering;
        self.signaled.store(false, Ordering::SeqCst);
        let mut sink = [0u8; 16];
        let _ = (&self.reader).read(&mut sink);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn timeout_expires_when_nothing_is_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let t0 = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readable_socket_reports_pollin() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a = TcpStream::connect(addr).unwrap();
        let (mut b, _) = listener.accept().unwrap();
        a.write_all(b"x").unwrap();
        a.flush().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable(), "peer wrote a byte");
        assert!(fds[0].writable(), "fresh socket has send-buffer space");
        let mut buf = [0u8; 1];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf[0], b'x');
    }

    #[test]
    fn waker_interrupts_a_blocked_poll_and_drains() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let w = std::sync::Arc::clone(&waker);
        let t0 = Instant::now();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w.wake();
            w.wake(); // duplicate is suppressed, not queued
        });
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(t0.elapsed() < Duration::from_secs(5), "woke early");
        waker.drain();
        // Drained: the next poll times out instead of spinning readable.
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "drain consumed the wake byte");
        // And a wake after drain is visible again.
        waker.wake();
        let mut fds = [PollFd::new(waker.read_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
    }
}
