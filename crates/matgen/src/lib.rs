//! # rlchol-matgen — synthetic SPD matrices and the paper's test suite
//!
//! The paper evaluates on 21 SuiteSparse matrices with `n ≥ 600 000`
//! (§IV-A). Those inputs are not redistributable here, so this crate
//! generates **structural analogues at ~1/40 linear scale** (DESIGN.md
//! §1): parameterized FE-style grids whose supernode-size distributions
//! drive the same experimental phenomena — how much factorization work
//! sits above/below the GPU-offload threshold, how large the biggest
//! update matrix is (device-memory pressure), and how many small
//! supernodes the bottom of the tree carries.
//!
//! * [`grid`] — 2-D/3-D grids with 5/7/9/27-point stencils, multiple
//!   degrees of freedom per node (vector problems like audikw/Flan), and
//!   anisotropic shapes (Long_Coup vs Cube_Coup);
//! * [`kkt`] — a PDE-constrained-optimization KKT pattern (the nlpkkt
//!   family) whose dual block doubles the separators — giving it the
//!   largest update matrix of the suite, which is what makes the paper's
//!   nlpkkt120 exceed RL's GPU memory;
//! * [`values`] — deterministic diagonally dominant SPD value assignment;
//! * [`suite`] — the named 21-matrix suite mapping each paper matrix to
//!   a generator configuration.

pub mod grid;
pub mod kkt;
pub mod suite;
pub mod values;

pub use grid::{grid2d, grid3d, perturbed_grid3d, Stencil};
pub use kkt::{kkt3d, kkt3d_aniso};
pub use suite::{paper_suite, SuiteEntry};
pub use values::spd_from_edges;

use rlchol_sparse::SymCsc;

/// Convenience: scalar 2-D 5-point Laplacian-like SPD matrix.
pub fn laplace2d(k: usize, seed: u64) -> SymCsc {
    grid2d(k, k, Stencil::Star5, 1, seed)
}

/// Convenience: scalar 3-D 7-point Laplacian-like SPD matrix.
pub fn laplace3d(k: usize, seed: u64) -> SymCsc {
    grid3d(k, k, k, Stencil::Star7, 1, seed)
}
