//! Deterministic SPD value assignment for generated patterns.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rlchol_sparse::{SymCsc, TripletMatrix};

/// Builds a symmetric positive definite matrix from strict-lower edges.
///
/// Off-diagonals get values in `[-1, -0.1]`; each diagonal entry is
/// `1 + Σ|off-diagonals of its row|`, i.e. strictly diagonally dominant
/// with positive diagonal — a standard sufficient condition for SPD.
/// Duplicate edges are summed (harmless: dominance still holds because
/// the diagonal accumulates the same contributions).
pub fn spd_from_edges(n: usize, edges: &[(usize, usize)], seed: u64) -> SymCsc {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::with_capacity(n, n, edges.len() + n);
    let mut diag = vec![1.0f64; n];
    for &(i, j) in edges {
        debug_assert!(i > j, "edges must be strict lower triangle");
        let v = -rng.random_range(0.1..1.0);
        t.push(i, j, v);
        diag[i] += v.abs();
        diag[j] += v.abs();
    }
    for (j, &d) in diag.iter().enumerate() {
        t.push(j, j, d);
    }
    SymCsc::from_lower_triplets(&t).expect("generated pattern is a valid lower triangle")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonally_dominant() {
        let a = spd_from_edges(4, &[(1, 0), (2, 1), (3, 2), (3, 0)], 7);
        for j in 0..4 {
            let mut off = 0.0;
            for i in 0..4 {
                if i != j {
                    off += a.get(i, j).abs();
                }
            }
            assert!(a.get(j, j) > off, "column {j} not dominant");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let e = [(1usize, 0usize), (2, 0)];
        let a = spd_from_edges(3, &e, 42);
        let b = spd_from_edges(3, &e, 42);
        let c = spd_from_edges(3, &e, 43);
        assert_eq!(a, b);
        assert_ne!(a.values(), c.values());
    }
}
