//! Structured-grid SPD generators.

use crate::values::spd_from_edges;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rlchol_sparse::SymCsc;

/// Finite-difference/finite-element coupling stencils.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stencil {
    /// 2-D: axis neighbors.
    Star5,
    /// 2-D: axis + diagonal neighbors.
    Star9,
    /// 3-D: axis neighbors.
    Star7,
    /// 3-D: full 3×3×3 neighborhood (higher connectivity, bone/EM-like).
    Star27,
}

/// Node-level edges of a structured grid.
fn grid_edges(nx: usize, ny: usize, nz: usize, stencil: Stencil) -> Vec<(usize, usize)> {
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let offsets: Vec<(i64, i64, i64)> = match stencil {
        Stencil::Star5 => vec![(1, 0, 0), (0, 1, 0)],
        Stencil::Star9 => vec![(1, 0, 0), (0, 1, 0), (1, 1, 0), (1, -1, 0)],
        Stencil::Star7 => vec![(1, 0, 0), (0, 1, 0), (0, 0, 1)],
        Stencil::Star27 => {
            // Half of the 26 neighbors (each undirected edge once).
            let mut o = Vec::new();
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if (dz, dy, dx) > (0, 0, 0) {
                            o.push((dx, dy, dz));
                        }
                    }
                }
            }
            o
        }
    };
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = idx(x, y, z);
                for &(dx, dy, dz) in &offsets {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx >= 0
                        && (xx as usize) < nx
                        && yy >= 0
                        && (yy as usize) < ny
                        && zz >= 0
                        && (zz as usize) < nz
                    {
                        let v = idx(xx as usize, yy as usize, zz as usize);
                        edges.push((u.max(v), u.min(v)));
                    }
                }
            }
        }
    }
    edges
}

/// Expands node edges into multi-dof edges: all dof pairs couple between
/// adjacent nodes, and dofs within one node couple densely.
fn expand_dofs(n_nodes: usize, node_edges: &[(usize, usize)], dofs: usize) -> Vec<(usize, usize)> {
    if dofs == 1 {
        return node_edges.to_vec();
    }
    let mut edges = Vec::with_capacity(node_edges.len() * dofs * dofs + n_nodes * dofs);
    for &(u, v) in node_edges {
        for du in 0..dofs {
            for dv in 0..dofs {
                let a = u * dofs + du;
                let b = v * dofs + dv;
                edges.push((a.max(b), a.min(b)));
            }
        }
    }
    for node in 0..n_nodes {
        for du in 0..dofs {
            for dv in du + 1..dofs {
                edges.push((node * dofs + dv, node * dofs + du));
            }
        }
    }
    edges
}

/// SPD matrix on an `nx × ny` 2-D grid.
pub fn grid2d(nx: usize, ny: usize, stencil: Stencil, dofs: usize, seed: u64) -> SymCsc {
    assert!(matches!(stencil, Stencil::Star5 | Stencil::Star9));
    let edges = grid_edges(nx, ny, 1, stencil);
    let e = expand_dofs(nx * ny, &edges, dofs);
    spd_from_edges(nx * ny * dofs, &e, seed)
}

/// SPD matrix on an `nx × ny × nz` 3-D grid.
pub fn grid3d(nx: usize, ny: usize, nz: usize, stencil: Stencil, dofs: usize, seed: u64) -> SymCsc {
    assert!(matches!(stencil, Stencil::Star7 | Stencil::Star27));
    let edges = grid_edges(nx, ny, nz, stencil);
    let e = expand_dofs(nx * ny * nz, &edges, dofs);
    spd_from_edges(nx * ny * nz * dofs, &e, seed)
}

/// A 3-D grid with a fraction of extra random short-range edges —
/// imitates unstructured FE meshes (dielFilter/StocF analogues).
pub fn perturbed_grid3d(
    nx: usize,
    ny: usize,
    nz: usize,
    stencil: Stencil,
    dofs: usize,
    extra_frac: f64,
    seed: u64,
) -> SymCsc {
    let mut edges = grid_edges(nx, ny, nz, stencil);
    let n_nodes = nx * ny * nz;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let extra = (edges.len() as f64 * extra_frac) as usize;
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for _ in 0..extra {
        // Short-range random jump (distance <= 2 in each axis) keeps the
        // graph mesh-like rather than expander-like.
        let x = rng.random_range(0..nx);
        let y = rng.random_range(0..ny);
        let z = rng.random_range(0..nz);
        let jump = |c: usize, n: usize, rng: &mut StdRng| -> usize {
            let d = rng.random_range(0..5) as i64 - 2;
            (c as i64 + d).clamp(0, n as i64 - 1) as usize
        };
        let u = idx(x, y, z);
        let v = idx(
            jump(x, nx, &mut rng),
            jump(y, ny, &mut rng),
            jump(z, nz, &mut rng),
        );
        if u != v {
            edges.push((u.max(v), u.min(v)));
        }
    }
    let e = expand_dofs(n_nodes, &edges, dofs);
    spd_from_edges(n_nodes * dofs, &e, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_dimensions_and_nnz() {
        let a = grid2d(4, 3, Stencil::Star5, 1, 0);
        assert_eq!(a.n(), 12);
        // Edges: 3*3 horizontal? nx=4,ny=3: horizontal (nx-1)*ny = 9,
        // vertical nx*(ny-1) = 8 → 17 + 12 diagonal = 29 lower entries.
        assert_eq!(a.nnz_lower(), 29);
    }

    #[test]
    fn grid3d_star7_degree() {
        let a = grid3d(3, 3, 3, Stencil::Star7, 1, 0);
        assert_eq!(a.n(), 27);
        // Center node has 6 neighbors.
        let g = a.to_graph();
        assert_eq!(g.degree(13), 6);
    }

    #[test]
    fn star27_has_higher_connectivity() {
        let a7 = grid3d(4, 4, 4, Stencil::Star7, 1, 0);
        let a27 = grid3d(4, 4, 4, Stencil::Star27, 1, 0);
        assert!(a27.nnz_lower() > 2 * a7.nnz_lower());
    }

    #[test]
    fn dofs_expand_block_structure() {
        let a = grid2d(2, 2, Stencil::Star5, 3, 0);
        assert_eq!(a.n(), 12);
        // Within-node dense blocks: dofs of node 0 pairwise coupled.
        assert!(a.get(1, 0) != 0.0 && a.get(2, 0) != 0.0 && a.get(2, 1) != 0.0);
        // Cross-node coupling between all dof pairs of adjacent nodes.
        assert!(a.get(3, 0) != 0.0 && a.get(5, 2) != 0.0);
    }

    #[test]
    fn perturbed_adds_edges() {
        let base = grid3d(6, 6, 6, Stencil::Star7, 1, 1);
        let pert = perturbed_grid3d(6, 6, 6, Stencil::Star7, 1, 0.3, 1);
        assert!(pert.nnz_lower() > base.nnz_lower());
        assert_eq!(pert.n(), base.n());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = grid3d(5, 4, 3, Stencil::Star7, 2, 9);
        let b = grid3d(5, 4, 3, Stencil::Star7, 2, 9);
        assert_eq!(a, b);
        let p1 = perturbed_grid3d(5, 5, 5, Stencil::Star7, 1, 0.2, 3);
        let p2 = perturbed_grid3d(5, 5, 5, Stencil::Star7, 1, 0.2, 3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn anisotropic_shapes() {
        let long = grid3d(20, 5, 5, Stencil::Star7, 1, 0);
        assert_eq!(long.n(), 500);
    }
}
