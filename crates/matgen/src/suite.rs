//! The 21-matrix synthetic suite mirroring the paper's test set.
//!
//! Each entry names a paper matrix, records the paper's published numbers
//! (Tables I and II) for side-by-side reporting, and carries a generator
//! spec producing a ~1/40-linear-scale structural analogue. The suite also
//! fixes the *scaled* experiment constants: the CPU/GPU supernode-size
//! thresholds (paper: 600 000 for RL, 750 000 for RLB) and the device
//! memory capacity (paper: 40 GB) are shrunk with the matrices so that
//! the same qualitative effects appear — in particular `nlpkkt120`'s RL
//! update matrix exceeding device memory while RLB still succeeds.

use crate::grid::{grid3d, perturbed_grid3d, Stencil};
use crate::kkt::{kkt3d, kkt3d_aniso};
use rlchol_sparse::SymCsc;

/// Generator specification for one suite entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenSpec {
    /// `grid3d(nx, ny, nz, stencil, dofs)`.
    Grid3d {
        nx: usize,
        ny: usize,
        nz: usize,
        stencil: Stencil,
        dofs: usize,
    },
    /// Perturbed 3-D grid with a fraction of extra short-range edges.
    Perturbed {
        nx: usize,
        ny: usize,
        nz: usize,
        stencil: Stencil,
        dofs: usize,
        extra_frac: f64,
    },
    /// KKT analogue on a `k³` grid (`n = 2k³`).
    Kkt { k: usize },
    /// Anisotropic KKT analogue on a `kx × ky × kz` grid.
    KktAniso { kx: usize, ky: usize, kz: usize },
}

impl GenSpec {
    /// Instantiates the SPD matrix.
    pub fn generate(&self, seed: u64) -> SymCsc {
        match *self {
            GenSpec::Grid3d {
                nx,
                ny,
                nz,
                stencil,
                dofs,
            } => grid3d(nx, ny, nz, stencil, dofs, seed),
            GenSpec::Perturbed {
                nx,
                ny,
                nz,
                stencil,
                dofs,
                extra_frac,
            } => perturbed_grid3d(nx, ny, nz, stencil, dofs, extra_frac, seed),
            GenSpec::Kkt { k } => kkt3d(k, seed),
            GenSpec::KktAniso { kx, ky, kz } => kkt3d_aniso(kx, ky, kz, seed),
        }
    }

    /// Matrix dimension this spec will produce.
    pub fn n(&self) -> usize {
        match *self {
            GenSpec::Grid3d {
                nx, ny, nz, dofs, ..
            }
            | GenSpec::Perturbed {
                nx, ny, nz, dofs, ..
            } => nx * ny * nz * dofs,
            GenSpec::Kkt { k } => 2 * k * k * k,
            GenSpec::KktAniso { kx, ky, kz } => 2 * kx * ky * kz,
        }
    }
}

/// Published reference numbers for one matrix (Tables I and II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRef {
    /// Table I (GPU-accelerated RL): `(runtime_s, speedup, supernodes_on_gpu)`.
    /// `None` for nlpkkt120, which could not be run (update matrix too
    /// large for the 40 GB device).
    pub rl: Option<(f64, f64, usize)>,
    /// Table II (GPU-accelerated RLB): `(runtime_s, speedup, supernodes_on_gpu)`.
    pub rlb: (f64, f64, usize),
    /// Total number of supernodes (identical in both tables).
    pub total_supernodes: usize,
}

/// One matrix of the suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// SuiteSparse name used in the paper.
    pub name: &'static str,
    /// Dimension of the original matrix.
    pub paper_n: usize,
    /// Generator configuration of the synthetic analogue.
    pub spec: GenSpec,
    /// Deterministic seed.
    pub seed: u64,
    /// The paper's published measurements.
    pub paper: PaperRef,
}

impl SuiteEntry {
    /// Generates the analogue matrix.
    pub fn generate(&self) -> SymCsc {
        self.spec.generate(self.seed)
    }
}

/// Scaled experiment constants accompanying the suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Supernode-size threshold (cols × length) below which RL keeps a
    /// supernode on the CPU. Paper value: 600 000 at full scale.
    pub rl_threshold: usize,
    /// Same for RLB. Paper value: 750 000.
    pub rlb_threshold: usize,
    /// Simulated device memory capacity in bytes. Paper: 40 GB; scaled so
    /// that exactly the nlpkkt120 analogue's RL footprint exceeds it.
    pub gpu_capacity_bytes: u64,
    /// CPU thread count used for the host-side work of the GPU-accelerated
    /// runs (the paper's code is serial Fortran + multithreaded MKL and
    /// OpenMP assembly; this is the model's thread count for those parts).
    pub gpu_host_threads: usize,
    /// Compute-rate divisor matching the machine model to the reduced
    /// problem scale: the suite is ~1/24 of the paper's linear size, so
    /// per-supernode arithmetic intensity is ~24x lower; dividing CPU and
    /// GPU compute rates by the same factor (PCIe terms fixed) restores
    /// the paper's compute-to-transfer balance. See EXPERIMENTS.md.
    pub machine_scale: f64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            // Determined empirically with the threshold_sweep harness,
            // exactly as the paper determined its 600,000 / 750,000
            // (§IV-B). The qualitative finding transfers: RLB wants a
            // noticeably *higher* threshold than RL, because its many
            // small per-block kernels pay the device's small-kernel
            // floor on supernodes RL can still profitably offload.
            rl_threshold: 12_000,
            rlb_threshold: 45_000,
            // Calibrated against the suite (see EXPERIMENTS.md): above
            // every matrix's RL device footprint except the nlpkkt120
            // analogue.
            gpu_capacity_bytes: 30 << 20,
            gpu_host_threads: 64,
            machine_scale: 24.0,
        }
    }
}

/// The 21 matrices of the paper's evaluation, in Table I/II order.
pub fn paper_suite() -> Vec<SuiteEntry> {
    let g3 = |nx, ny, nz, stencil, dofs| GenSpec::Grid3d {
        nx,
        ny,
        nz,
        stencil,
        dofs,
    };
    let pert = |nx, ny, nz, stencil, dofs, extra_frac| GenSpec::Perturbed {
        nx,
        ny,
        nz,
        stencil,
        dofs,
        extra_frac,
    };
    let p = |rl: Option<(f64, f64, usize)>, rlb: (f64, f64, usize), total: usize| PaperRef {
        rl,
        rlb,
        total_supernodes: total,
    };
    vec![
        SuiteEntry {
            name: "CurlCurl_2",
            paper_n: 806_529,
            spec: g3(18, 18, 18, Stencil::Star27, 1),
            seed: 101,
            paper: p(Some((3.800, 1.59, 98)), (4.802, 1.26, 81), 8_822),
        },
        SuiteEntry {
            name: "dielFilterV2real",
            paper_n: 1_157_456,
            spec: pert(15, 15, 15, Stencil::Star27, 1, 0.15),
            seed: 102,
            paper: p(Some((5.599, 1.40, 150)), (7.204, 1.09, 126), 11_292),
        },
        SuiteEntry {
            name: "dielFilterV3real",
            paper_n: 1_102_824,
            spec: pert(15, 15, 15, Stencil::Star27, 1, 0.25),
            seed: 103,
            paper: p(Some((5.669, 1.43, 148)), (6.776, 1.20, 122), 10_156),
        },
        SuiteEntry {
            name: "PFlow_742",
            paper_n: 742_793,
            spec: g3(40, 40, 8, Stencil::Star7, 1),
            seed: 104,
            paper: p(Some((4.497, 1.35, 123)), (4.715, 1.29, 94), 61_809),
        },
        SuiteEntry {
            name: "CurlCurl_3",
            paper_n: 1_219_574,
            spec: g3(19, 19, 19, Stencil::Star27, 1),
            seed: 105,
            paper: p(Some((7.040, 2.01, 164)), (9.040, 1.56, 146), 10_074),
        },
        SuiteEntry {
            name: "StocF-1465",
            paper_n: 1_465_137,
            spec: pert(19, 19, 19, Stencil::Star7, 1, 0.3),
            seed: 106,
            paper: p(Some((9.379, 1.87, 236)), (12.082, 1.45, 199), 40_255),
        },
        SuiteEntry {
            name: "bone010",
            paper_n: 986_703,
            spec: g3(16, 16, 16, Stencil::Star7, 3),
            seed: 107,
            paper: p(Some((9.158, 1.41, 264)), (9.754, 1.32, 228), 4_017),
        },
        SuiteEntry {
            name: "Flan_1565",
            paper_n: 1_564_794,
            spec: g3(17, 17, 17, Stencil::Star7, 3),
            seed: 108,
            paper: p(Some((12.853, 1.31, 461)), (13.529, 1.25, 360), 7_591),
        },
        SuiteEntry {
            name: "audikw_1",
            paper_n: 943_695,
            spec: g3(12, 12, 12, Stencil::Star27, 3),
            seed: 109,
            paper: p(Some((9.922, 1.68, 264)), (11.355, 1.46, 223), 3_725),
        },
        SuiteEntry {
            name: "Fault_639",
            paper_n: 638_802,
            spec: g3(15, 15, 15, Stencil::Star7, 3),
            seed: 110,
            paper: p(Some((8.188, 1.90, 261)), (9.938, 1.56, 178), 1_981),
        },
        SuiteEntry {
            name: "Hook_1498",
            paper_n: 1_498_023,
            spec: g3(17, 17, 16, Stencil::Star7, 3),
            seed: 111,
            paper: p(Some((12.032, 2.29, 284)), (15.114, 1.83, 242), 10_781),
        },
        SuiteEntry {
            name: "Emilia_923",
            paper_n: 923_136,
            spec: g3(16, 16, 15, Stencil::Star7, 3),
            seed: 112,
            paper: p(Some((12.432, 2.04, 405)), (15.253, 1.66, 267), 2_815),
        },
        SuiteEntry {
            name: "CurlCurl_4",
            paper_n: 2_380_515,
            spec: g3(22, 22, 22, Stencil::Star27, 1),
            seed: 113,
            paper: p(Some((15.745, 2.44, 340)), (20.324, 1.89, 277), 17_660),
        },
        SuiteEntry {
            name: "nlpkkt80",
            paper_n: 1_062_400,
            spec: GenSpec::Kkt { k: 21 },
            seed: 114,
            paper: p(Some((12.596, 2.42, 235)), (14.886, 2.05, 208), 5_431),
        },
        SuiteEntry {
            name: "Geo_1438",
            paper_n: 1_437_960,
            spec: g3(24, 18, 13, Stencil::Star7, 3),
            seed: 115,
            paper: p(Some((18.698, 2.01, 601)), (20.419, 1.84, 405), 4_419),
        },
        SuiteEntry {
            name: "Serena",
            paper_n: 1_391_349,
            spec: g3(22, 19, 14, Stencil::Star7, 3),
            seed: 116,
            paper: p(Some((19.333, 3.00, 388)), (24.972, 2.32, 302), 4_822),
        },
        SuiteEntry {
            name: "Long_Coup_dt0",
            paper_n: 1_470_152,
            spec: g3(40, 14, 14, Stencil::Star7, 3),
            seed: 117,
            paper: p(Some((27.708, 3.22, 1_432)), (40.968, 2.18, 1_207), 2_897),
        },
        SuiteEntry {
            name: "Cube_Coup_dt0",
            paper_n: 2_164_760,
            spec: g3(20, 20, 20, Stencil::Star7, 3),
            seed: 118,
            paper: p(Some((42.188, 3.75, 2_142)), (61.064, 2.59, 1_918), 3_853),
        },
        SuiteEntry {
            name: "Bump_2911",
            paper_n: 2_911_419,
            spec: g3(22, 22, 18, Stencil::Star7, 3),
            seed: 119,
            paper: p(Some((64.339, 4.47, 2_848)), (99.561, 2.89, 2_368), 64_995),
        },
        SuiteEntry {
            name: "nlpkkt120",
            paper_n: 3_542_400,
            spec: GenSpec::Kkt { k: 28 },
            seed: 120,
            paper: p(None, (114.658, 3.07, 1_048), 12_785),
        },
        SuiteEntry {
            name: "Queen_4147",
            paper_n: 4_147_110,
            spec: g3(21, 21, 21, Stencil::Star7, 3),
            seed: 121,
            paper: p(Some((89.552, 4.27, 3_898)), (121.299, 3.15, 3_647), 7_158),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_21_matrices_in_table_order() {
        let s = paper_suite();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0].name, "CurlCurl_2");
        assert_eq!(s[19].name, "nlpkkt120");
        assert_eq!(s[20].name, "Queen_4147");
    }

    #[test]
    fn only_nlpkkt120_lacks_rl_numbers() {
        for e in paper_suite() {
            if e.name == "nlpkkt120" {
                assert!(e.paper.rl.is_none());
            } else {
                assert!(e.paper.rl.is_some(), "{} missing RL data", e.name);
            }
        }
    }

    #[test]
    fn names_unique_and_specs_generate() {
        let s = paper_suite();
        let mut names: Vec<&str> = s.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
        // Spot-check a small generation (avoid building the full suite in
        // a unit test).
        let a = s[3].spec.generate(s[3].seed); // PFlow analogue
        assert_eq!(a.n(), s[3].spec.n());
    }

    #[test]
    fn paper_speedups_transcribed_within_ranges() {
        // Table I: min 1.31 (Flan_1565), max 4.47 (Bump_2911).
        let s = paper_suite();
        let speedups: Vec<f64> = s.iter().filter_map(|e| e.paper.rl.map(|r| r.1)).collect();
        let min = speedups.iter().cloned().fold(f64::MAX, f64::min);
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(min, 1.31);
        assert_eq!(max, 4.47);
        // Table II: min 1.09 (dielFilterV2real), max 3.15 (Queen_4147).
        let s2: Vec<f64> = s.iter().map(|e| e.paper.rlb.1).collect();
        assert_eq!(s2.iter().cloned().fold(f64::MAX, f64::min), 1.09);
        assert_eq!(s2.iter().cloned().fold(f64::MIN, f64::max), 3.15);
    }

    #[test]
    fn rlb_threshold_exceeds_rl_threshold() {
        // The paper's empirical finding (750k > 600k) holds at suite
        // scale: RLB needs a higher offload threshold than RL.
        let c = SuiteConfig::default();
        assert!(c.rlb_threshold > c.rl_threshold);
    }
}
