//! KKT-system analogue (the `nlpkkt` family).
//!
//! The SuiteSparse `nlpkkt*` matrices come from 3-D PDE-constrained
//! optimization: a saddle-point KKT system whose variables are a primal
//! field, and a dual field on the same grid. Structurally the key feature
//! (for this paper) is that separators contain *both* fields, so nested
//! dissection produces roughly doubled separator fronts — giving the
//! family the **largest update matrices relative to n** in the suite.
//! That is precisely why `nlpkkt120` is the one matrix whose RL update
//! matrix exceeds the A100's 40 GB (Table I) while RLB still factors it
//! (Table II). Values are made SPD (the paper factors these with
//! Cholesky, so we mirror the pattern, not the indefiniteness).

use crate::values::spd_from_edges;
use rlchol_sparse::SymCsc;

/// Builds the KKT analogue on a `k³` grid: `n = 2k³` (primal + dual).
pub fn kkt3d(k: usize, seed: u64) -> SymCsc {
    kkt3d_aniso(k, k, k, seed)
}

/// Anisotropic variant on a `kx × ky × kz` grid: `n = 2·kx·ky·kz`.
///
/// Elongated boxes keep the *root* separator small while deep supernodes
/// still accumulate rows across several ancestor separators — the regime
/// where the largest update matrix spans many ancestors (multiple row
/// blocks), as in the full-scale `nlpkkt120`.
pub fn kkt3d_aniso(kx: usize, ky: usize, kz: usize, seed: u64) -> SymCsc {
    let (k_x, k_y, k_z) = (kx, ky, kz);
    let nn = k_x * k_y * k_z;
    let idx = |x: usize, y: usize, z: usize| (z * k_y + y) * k_x + x;
    let k = 0; // shadow the cubic parameter below
    let _ = k;
    let primal = |v: usize| v; // 0..nn
    let dual = |v: usize| nn + v; // nn..2nn
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut push = |a: usize, b: usize| {
        if a != b {
            edges.push((a.max(b), a.min(b)));
        }
    };
    for z in 0..k_z {
        for y in 0..k_y {
            for x in 0..k_x {
                let v = idx(x, y, z);
                // Primal-primal and dual-dual 7-point couplings.
                let mut neighbors = Vec::new();
                if x + 1 < k_x {
                    neighbors.push(idx(x + 1, y, z));
                }
                if y + 1 < k_y {
                    neighbors.push(idx(x, y + 1, z));
                }
                if z + 1 < k_z {
                    neighbors.push(idx(x, y, z + 1));
                }
                for &u in &neighbors {
                    push(primal(v), primal(u));
                    push(dual(v), dual(u));
                    // Constraint Jacobian: dual of v couples to primal
                    // neighbors of v (and vice versa through symmetry).
                    push(dual(v), primal(u));
                    push(dual(u), primal(v));
                }
                // Diagonal constraint coupling.
                push(dual(v), primal(v));
            }
        }
    }
    spd_from_edges(2 * nn, &edges, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_is_doubled() {
        let a = kkt3d(4, 0);
        assert_eq!(a.n(), 128);
    }

    #[test]
    fn primal_dual_coupling_exists() {
        let k = 3;
        let a = kkt3d(k, 0);
        let nn = k * k * k;
        // Dual of node 0 couples to primal of node 0 and its neighbors.
        assert!(a.get(nn, 0) != 0.0);
        assert!(a.get(nn, 1) != 0.0); // primal neighbor (1,0,0)
    }

    #[test]
    fn denser_than_plain_grid_relative_to_n() {
        let k = 5;
        let kkt = kkt3d(k, 0);
        let plain = crate::grid3d(k, k, k, crate::Stencil::Star7, 1, 0);
        let kkt_density = kkt.nnz_lower() as f64 / kkt.n() as f64;
        let plain_density = plain.nnz_lower() as f64 / plain.n() as f64;
        assert!(kkt_density > 1.5 * plain_density);
    }

    #[test]
    fn deterministic() {
        assert_eq!(kkt3d(3, 5), kkt3d(3, 5));
    }
}
