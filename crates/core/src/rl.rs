//! RL: the right-looking method with a full update matrix (§II-A).
//!
//! Supernodes are processed left to right. Factoring supernode `J` is a
//! DPOTRF on the diagonal block and a DTRSM on the rectangular part; the
//! entire update matrix `U_J = L₂₁ L₂₁ᵀ` is then formed by **one DSYRK**
//! into a preallocated workspace (sized for the largest update matrix in
//! the factor) and scattered into the ancestors via relative indices.

use std::time::Instant;

use rlchol_dense::syrk_ln;
use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::SymbolicFactor;

use crate::assemble::assemble_update;
use crate::engine::{factor_panel, CpuRun};
use crate::error::FactorError;
use crate::registry::EngineWorkspace;

/// Factors `a` (permuted into factor order) with CPU-only RL.
pub fn factor_rl_cpu(sym: &SymbolicFactor, a: &SymCsc) -> Result<CpuRun, FactorError> {
    factor_rl_cpu_ws(sym, a, &mut EngineWorkspace::default())
}

/// [`factor_rl_cpu`] drawing factor storage and scratch from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rl_cpu_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    ws: &mut EngineWorkspace,
) -> Result<CpuRun, FactorError> {
    let t0 = Instant::now();
    let mut data = ws.take_factor(sym, a);
    let mut trace = ws.take_trace();
    // "The temporary working storage is preallocated so that it can store
    // the largest update matrix during the factorization." (§II-A)
    let rmax2 = sym.max_update_matrix_entries();
    ws.upd_mut(rmax2);

    for s in 0..sym.nsup() {
        let c = sym.sn_ncols(s);
        let r = sym.sn_nrows_below(s);
        let len = sym.sn_len(s);
        let first = sym.sn.first_col(s);
        {
            let arr = &mut data.sn[s];
            factor_panel(arr, len, c, r, &mut ws.l11).map_err(|pivot| {
                FactorError::NotPositiveDefinite {
                    column: first + pivot,
                }
            })?;
        }
        trace.push(TraceOp::Potrf { n: c });
        if r > 0 {
            trace.push(TraceOp::Trsm { m: r, n: c });
            // U := L21 · L21ᵀ in one coarse-grain DSYRK.
            {
                let arr = &data.sn[s];
                syrk_ln(r, c, 1.0, &arr[c..], len, 0.0, &mut ws.upd[..r * r], r);
            }
            trace.push(TraceOp::Syrk { n: r, k: c });
            let entries = assemble_update(sym, &mut data.sn, s, &ws.upd[..r * r], r);
            trace.push(TraceOp::Assemble { entries });
        }
    }
    Ok(CpuRun {
        factor: data,
        trace,
        wall: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::laplace2d;
    use rlchol_sparse::TripletMatrix;
    use rlchol_symbolic::{analyze, SymbolicOptions};

    #[test]
    fn factors_small_spd_with_tiny_residual() {
        let a = laplace2d(8, 3);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rl_cpu(&sym, &ap).unwrap();
        let res = run.factor.residual(&sym, &ap, 3);
        assert!(res < 1e-12, "residual {res}");
        assert!(run.trace.blas_calls() > 0);
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 1.0);
        t.push(1, 0, 5.0); // breaks positive definiteness
        let a = rlchol_sparse::SymCsc::from_lower_triplets(&t).unwrap();
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        assert!(matches!(
            factor_rl_cpu(&sym, &ap),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn trace_counts_one_syrk_per_updating_supernode() {
        let a = laplace2d(6, 1);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rl_cpu(&sym, &ap).unwrap();
        let syrks = run
            .trace
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Syrk { .. }))
            .count();
        let updating = (0..sym.nsup()).filter(|&s| !sym.rows[s].is_empty()).count();
        assert_eq!(syrks, updating);
    }

    #[test]
    fn works_without_merge_or_pr() {
        let a = laplace2d(7, 2);
        let opts = SymbolicOptions {
            merge: false,
            partition_refine: false,
            ..SymbolicOptions::default()
        };
        let sym = analyze(&a, &opts);
        let ap = a.permute(&sym.perm);
        let run = factor_rl_cpu(&sym, &ap).unwrap();
        assert!(run.factor.residual(&sym, &ap, 2) < 1e-12);
    }
}
