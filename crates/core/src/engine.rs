//! Shared engine types and helpers.

use std::time::Duration;

use rlchol_dense::{potrf, trsm_rlt};
use rlchol_gpu::GpuStats;
use rlchol_perfmodel::{replay_cpu, MachineModel, Trace, PAPER_THREAD_SWEEP};

use crate::storage::FactorData;

/// The factorization engines of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Right-looking, CPU only (`RL_C` in Figure 3).
    RlCpu,
    /// Right-looking blocked, CPU only (`RLB_C`).
    RlbCpu,
    /// Task-parallel RL over the elimination tree (real threads).
    RlCpuPar,
    /// Task-parallel RLB over the elimination tree (real threads).
    RlbCpuPar,
    /// Left-looking supernodal, CPU only (classic baseline).
    LlCpu,
    /// Multifrontal, CPU only (classic baseline).
    MfCpu,
    /// GPU-accelerated RL (`RL_G`).
    RlGpu,
    /// GPU-accelerated RLB, batched update transfer (first version, §III).
    RlbGpuV1,
    /// GPU-accelerated RLB, per-block transfers (second version, §III).
    RlbGpuV2,
    /// Pipelined multi-stream GPU-RL over the elimination-tree frontier.
    RlGpuPipe,
    /// Pipelined multi-stream GPU-RLB over the elimination-tree frontier.
    RlbGpuPipe,
}

impl Method {
    /// Every engine, in registry order. The CLI help text, the engine
    /// registry and the cross-engine tests all iterate this — adding a
    /// variant here is the single registration step.
    pub const ALL: [Method; 11] = [
        Method::RlCpu,
        Method::RlbCpu,
        Method::RlCpuPar,
        Method::RlbCpuPar,
        Method::LlCpu,
        Method::MfCpu,
        Method::RlGpu,
        Method::RlbGpuV1,
        Method::RlbGpuV2,
        Method::RlGpuPipe,
        Method::RlbGpuPipe,
    ];

    /// Short display name matching the paper's Figure 3 labels.
    pub fn label(&self) -> &'static str {
        match self {
            Method::RlCpu => "RL_C",
            Method::RlbCpu => "RLB_C",
            Method::RlCpuPar => "RL_C(par)",
            Method::RlbCpuPar => "RLB_C(par)",
            Method::LlCpu => "LL_C",
            Method::MfCpu => "MF_C",
            Method::RlGpu => "RL_G",
            Method::RlbGpuV1 => "RLB_G(v1)",
            Method::RlbGpuV2 => "RLB_G",
            Method::RlGpuPipe => "RL_G(pipe)",
            Method::RlbGpuPipe => "RLB_G(pipe)",
        }
    }

    /// True for the (simulated-)device engines — the ones
    /// [`GpuOptions`] applies to. Lets tests and harnesses pick
    /// per-engine configuration without a hand-maintained variant list.
    pub fn is_gpu(&self) -> bool {
        matches!(
            self,
            Method::RlGpu
                | Method::RlbGpuV1
                | Method::RlbGpuV2
                | Method::RlGpuPipe
                | Method::RlbGpuPipe
        )
    }

    /// Stable kebab-case name used on the command line (`--method`).
    pub fn cli_name(&self) -> &'static str {
        match self {
            Method::RlCpu => "rl",
            Method::RlbCpu => "rlb",
            Method::RlCpuPar => "rl-par",
            Method::RlbCpuPar => "rlb-par",
            Method::LlCpu => "ll",
            Method::MfCpu => "mf",
            Method::RlGpu => "rl-gpu",
            Method::RlbGpuV1 => "rlb-gpu-v1",
            Method::RlbGpuV2 => "rlb-gpu",
            Method::RlGpuPipe => "rl-gpu-pipe",
            Method::RlbGpuPipe => "rlb-gpu-pipe",
        }
    }
}

impl std::str::FromStr for Method {
    type Err = String;

    /// Parses either the CLI name (`rlb-gpu`) or the paper label
    /// (`RLB_G`); both round-trip through [`Method::ALL`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::ALL
            .iter()
            .find(|m| m.cli_name() == s || m.label() == s)
            .copied()
            .ok_or_else(|| {
                let names: Vec<&str> = Method::ALL.iter().map(|m| m.cli_name()).collect();
                let labels: Vec<&str> = Method::ALL.iter().map(|m| m.label()).collect();
                format!(
                    "unknown method `{s}` (expected one of: {}; or a paper label: {})",
                    names.join(", "),
                    labels.join(", ")
                )
            })
    }
}

/// Result of a CPU-only factorization.
#[derive(Debug)]
pub struct CpuRun {
    /// The numeric factor.
    pub factor: FactorData,
    /// Operation trace (replayable under any thread count).
    pub trace: Trace,
    /// Real wall-clock duration of this process's execution.
    pub wall: Duration,
}

impl CpuRun {
    /// Simulated time under the paper's platform at `threads` MKL threads.
    pub fn sim_seconds(&self, threads: usize) -> f64 {
        replay_cpu(&self.trace, &rlchol_perfmodel::perlmutter_cpu(threads))
    }

    /// Best simulated time over the paper's thread sweep; returns
    /// `(seconds, threads)`.
    pub fn best_sim_seconds(&self) -> (f64, usize) {
        PAPER_THREAD_SWEEP
            .iter()
            .map(|&t| (self.sim_seconds(t), t))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("sweep nonempty")
    }
}

/// The paper's baseline: best CPU time over both CPU methods and the
/// thread sweep {8, 16, 32, 64, 128}. Returns `(seconds, method, threads)`.
pub fn best_cpu_time(rl: &CpuRun, rlb: &CpuRun) -> (f64, Method, usize) {
    let (t_rl, th_rl) = rl.best_sim_seconds();
    let (t_rlb, th_rlb) = rlb.best_sim_seconds();
    if t_rl <= t_rlb {
        (t_rl, Method::RlCpu, th_rl)
    } else {
        (t_rlb, Method::RlbCpu, th_rlb)
    }
}

/// Parses an environment variable as a positive integer — the shared
/// shape of every `RLCHOL_*` sizing knob (`None` when unset, empty,
/// non-numeric, or zero).
pub(crate) fn env_positive(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// How the pipelined engines assign ready supernodes to compute/copy
/// stream pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamAssign {
    /// Cycle through the pairs in issue order (the default). Simple and
    /// fair when supernodes are similar, but a pair stuck behind a large
    /// supernode keeps receiving work it cannot start.
    RoundRobin,
    /// Issue to the pair with the fewest supernodes in flight (ties to
    /// the lowest pair index). Evens out uneven queues; identical to
    /// round-robin while queues stay balanced. Retirement order — and
    /// therefore the factor — is unaffected by the choice.
    LeastLoaded,
}

impl StreamAssign {
    /// Parses the `RLCHOL_STREAM_ASSIGN` environment variable: `rr` for
    /// round-robin, `ll` for least-loaded; anything else (or unset) is
    /// `None`.
    pub fn from_env() -> Option<StreamAssign> {
        match std::env::var("RLCHOL_STREAM_ASSIGN") {
            Ok(v) => match v.trim() {
                "rr" => Some(StreamAssign::RoundRobin),
                "ll" => Some(StreamAssign::LeastLoaded),
                _ => None,
            },
            Err(_) => None,
        }
    }
}

/// How the pipelined engines retire host-side effects (staged-update
/// assembly, CPU-path supernodes, frontier releases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireMode {
    /// Retire in ascending supernode order (the default). The host
    /// waits on supernode `s`'s D2H before touching `s + 1`, even when
    /// a later supernode's staging landed long ago.
    InOrder,
    /// Retire out of order: land each supernode as soon as its D2H
    /// completes, applying updates into every target in the fixed
    /// ascending-source order via per-target sequence counters. Same
    /// kernels on the same operands in the same per-target order as the
    /// serial engines, so the factor stays bit-identical; only the
    /// host-wait interleaving (and thus the simulated clock) changes.
    Ooo,
}

impl RetireMode {
    /// Parses the `RLCHOL_RETIRE` environment variable: `inorder` or
    /// `ooo`; anything else (or unset) is `None`.
    pub fn from_env() -> Option<RetireMode> {
        match std::env::var("RLCHOL_RETIRE") {
            Ok(v) => match v.trim() {
                "inorder" => Some(RetireMode::InOrder),
                "ooo" => Some(RetireMode::Ooo),
                _ => None,
            },
            Err(_) => None,
        }
    }

    /// Stable lowercase name (the `RLCHOL_RETIRE` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            RetireMode::InOrder => "inorder",
            RetireMode::Ooo => "ooo",
        }
    }
}

/// Options for the GPU-accelerated engines.
#[derive(Debug, Clone)]
pub struct GpuOptions {
    /// Machine model (CPU side + device).
    pub machine: MachineModel,
    /// Supernode-size threshold (columns × length): supernodes strictly
    /// below stay on the CPU (paper: 600 000 for RL, 750 000 for RLB at
    /// full scale). `0` reproduces the "GPU only" runs of §IV-B.
    pub threshold: usize,
    /// Allow the asynchronous copy-back to overlap host work (on by
    /// default; off is the ablation in E-THRESH/DESIGN §4).
    pub overlap: bool,
    /// Compute/copy stream pairs for the pipelined engines
    /// ([`Method::RlGpuPipe`], [`Method::RlbGpuPipe`]); `0` resolves to
    /// `RLCHOL_STREAMS` / its default (see
    /// [`rlchol_gpu::default_streams`]). The single-stream engines
    /// ignore it.
    pub streams: usize,
    /// Stream-pair assignment policy for the pipelined engines; `None`
    /// resolves to `RLCHOL_STREAM_ASSIGN`, defaulting to
    /// [`StreamAssign::RoundRobin`]. Any policy yields the same factor
    /// (retirement stays in order); only stream utilization differs.
    pub assign: Option<StreamAssign>,
    /// Deterministic fault-injection plan installed on every device the
    /// engines build ([`rlchol_gpu::FaultPlan`]); `None` resolves to
    /// `RLCHOL_FAULTS` (see [`resolved_faults`](Self::resolved_faults)),
    /// usually absent — no faults.
    pub faults: Option<rlchol_gpu::FaultPlan>,
    /// Retirement mode for the pipelined engines; `None` resolves to
    /// `RLCHOL_RETIRE`, defaulting to [`RetireMode::InOrder`]. Either
    /// mode yields the same factor bits; out-of-order retirement only
    /// reorders host waits across *different* targets.
    pub retire: Option<RetireMode>,
    /// Lookahead window for out-of-order retirement: how many supernodes
    /// may be in flight on the device at once. `None` resolves to
    /// `RLCHOL_LOOKAHEAD`, defaulting to `0` = adaptive (grow on stream
    /// starvation, shrink when the host is the bottleneck). In-order
    /// retirement keeps its fixed `2 × pairs` bound and ignores this.
    pub lookahead: Option<usize>,
}

impl GpuOptions {
    /// GPU engine options with the given threshold on the paper platform.
    pub fn with_threshold(threshold: usize) -> Self {
        GpuOptions {
            machine: MachineModel::perlmutter(16),
            threshold,
            overlap: true,
            streams: 0,
            assign: None,
            faults: None,
            retire: None,
            lookahead: None,
        }
    }

    /// The same options with an explicit stream-pair count.
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// The same options with an explicit stream-pair assignment policy.
    pub fn with_assign(mut self, assign: StreamAssign) -> Self {
        self.assign = Some(assign);
        self
    }

    /// The same options with an explicit retirement mode.
    pub fn with_retire(mut self, retire: RetireMode) -> Self {
        self.retire = Some(retire);
        self
    }

    /// The same options with an explicit lookahead window (`0` =
    /// adaptive).
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = Some(lookahead);
        self
    }

    /// The stream-pair count with the fallback chain applied: an
    /// explicit nonzero [`streams`](Self::streams) wins, else
    /// `RLCHOL_STREAMS`, else the runtime default. The staged handle's
    /// workspace lanes call this once at construction so every lane
    /// carries explicit, stable stream options (environment reads
    /// allocate, and concurrent lanes must not re-resolve mid-flight).
    pub fn resolved_streams(&self) -> usize {
        if self.streams > 0 {
            self.streams
        } else {
            rlchol_gpu::default_streams()
        }
    }

    /// The assignment policy with the fallback chain applied:
    /// [`assign`](Self::assign), else `RLCHOL_STREAM_ASSIGN`, else
    /// round-robin. Resolved per lane like
    /// [`resolved_streams`](Self::resolved_streams).
    pub fn resolved_assign(&self) -> StreamAssign {
        self.assign
            .or_else(StreamAssign::from_env)
            .unwrap_or(StreamAssign::RoundRobin)
    }

    /// The retirement mode with the fallback chain applied:
    /// [`retire`](Self::retire), else `RLCHOL_RETIRE`, else in-order.
    /// Resolved per lane like
    /// [`resolved_streams`](Self::resolved_streams).
    pub fn resolved_retire(&self) -> RetireMode {
        self.retire
            .or_else(RetireMode::from_env)
            .unwrap_or(RetireMode::InOrder)
    }

    /// The lookahead window with the fallback chain applied:
    /// [`lookahead`](Self::lookahead), else `RLCHOL_LOOKAHEAD`, else
    /// `0` (adaptive). Resolved per lane like
    /// [`resolved_streams`](Self::resolved_streams).
    pub fn resolved_lookahead(&self) -> usize {
        self.lookahead
            .or_else(|| env_positive("RLCHOL_LOOKAHEAD"))
            .unwrap_or(0)
    }

    /// The fault plan with the fallback chain applied: an explicit
    /// [`faults`](Self::faults) wins, else a parseable non-empty
    /// `RLCHOL_FAULTS`, else none. Resolved once per lane like
    /// [`resolved_streams`](Self::resolved_streams), so explicit plans
    /// (the fault-sweep suite) are immune to the environment and the
    /// hot path never re-reads it. A malformed variable is reported on
    /// stderr rather than silently injecting nothing.
    pub fn resolved_faults(&self) -> Option<rlchol_gpu::FaultPlan> {
        if self.faults.is_some() {
            return self.faults.clone();
        }
        let v = std::env::var("RLCHOL_FAULTS").ok()?;
        match rlchol_gpu::FaultPlan::parse(&v) {
            Ok(plan) if !plan.is_empty() => Some(plan),
            Ok(_) => None,
            Err(e) => {
                eprintln!("rlchol: ignoring malformed RLCHOL_FAULTS: {e}");
                None
            }
        }
    }

    /// Builds the simulated device every GPU engine runs on, with the
    /// options' fault plan (if any) installed. Engines must create
    /// devices through this — a bare `Gpu::new` would silently escape
    /// fault injection.
    pub fn device(&self) -> rlchol_gpu::Gpu {
        match &self.faults {
            Some(plan) => rlchol_gpu::Gpu::with_faults(self.machine.gpu, plan.clone()),
            None => rlchol_gpu::Gpu::new(self.machine.gpu),
        }
    }
}

/// Result of a GPU-accelerated factorization.
#[derive(Debug)]
pub struct GpuRun {
    /// The numeric factor (identical structure to the CPU engines').
    pub factor: FactorData,
    /// Simulated end-to-end seconds (host + device timelines).
    pub sim_seconds: f64,
    /// Device counters (kernels, transfers, memory high-water mark).
    pub stats: GpuStats,
    /// Supernodes whose BLAS ran on the device.
    pub sn_on_gpu: usize,
    /// Compute/copy stream pairs actually used (1 for the single-stream
    /// engines; the pipelined engines may have shed pairs to fit device
    /// memory).
    pub streams_used: usize,
    /// Retirement mode this run used ([`RetireMode::InOrder`] for the
    /// single-stream engines).
    pub retire: RetireMode,
    /// Final lookahead window of an out-of-order run (the adaptive
    /// policy's last value, or the pinned `RLCHOL_LOOKAHEAD`); `0` for
    /// in-order runs.
    pub lookahead: usize,
    /// H2D transfers skipped because device-resident data from a
    /// previous factorization on the same workspace was still valid
    /// (staged-handle refactorization with GPU residency).
    pub transfers_saved: u64,
    /// Real wall-clock duration of this process's execution.
    pub wall: Duration,
}

/// Factors a supernode panel in place: POTRF on the `c × c` diagonal
/// block, then the panel TRSM (`B := B · L^{-T}`) on the `r` rows below.
/// Returns the failing local pivot on a nonpositive diagonal.
///
/// The two BLAS operands interleave by columns in supernodal storage, so
/// the triangle is copied out for the TRSM — the same approach the
/// blocked dense POTRF uses. `l11` is the caller-provided scratch for
/// that copy: engines allocate it once per factorization (it grows to
/// the largest diagonal block) so the per-supernode loop stays
/// allocation-free.
pub fn factor_panel(
    arr: &mut [f64],
    len: usize,
    c: usize,
    r: usize,
    l11: &mut Vec<f64>,
) -> Result<(), usize> {
    factor_panel_par(arr, len, c, r, l11, 1)
}

/// Parallel variant of [`factor_panel`] (and the shared implementation —
/// `threads == 1` is the serial engines' path): same numerics, but the
/// panel TRSM runs its trailing updates striped over the persistent pool
/// ([`rlchol_dense::par_trsm_rlt`]), and diagonal blocks spanning at
/// least two cache blocks take the pool-parallel POTRF
/// ([`rlchol_dense::par_potrf`]) — the last serial stretch when a wide
/// root supernode is the only ready work. Both parallel kernels are
/// bit-identical to their serial forms, so engine output never depends
/// on the lane count.
pub fn factor_panel_par(
    arr: &mut [f64],
    len: usize,
    c: usize,
    r: usize,
    l11: &mut Vec<f64>,
    threads: usize,
) -> Result<(), usize> {
    if threads > 1 && c >= 2 * rlchol_dense::NB {
        rlchol_dense::par_potrf(threads, c, arr, len).map_err(|e| e.pivot)?;
    } else {
        potrf(c, arr, len).map_err(|e| e.pivot)?;
    }
    if r > 0 {
        if l11.len() < c * c {
            l11.resize(c * c, 0.0);
        }
        for j in 0..c {
            for i in j..c {
                l11[j * c + i] = arr[j * len + i];
            }
        }
        if threads <= 1 {
            trsm_rlt(r, c, &l11[..c * c], c, &mut arr[c..], len);
        } else {
            rlchol_dense::par_trsm_rlt(threads, r, c, &l11[..c * c], c, &mut arr[c..], len);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_perfmodel::TraceOp;

    #[test]
    fn method_labels() {
        assert_eq!(Method::RlCpu.label(), "RL_C");
        assert_eq!(Method::RlbGpuV2.label(), "RLB_G");
    }

    #[test]
    fn method_names_round_trip() {
        for m in Method::ALL {
            assert_eq!(m.cli_name().parse::<Method>().unwrap(), m);
            assert_eq!(m.label().parse::<Method>().unwrap(), m);
        }
        // A typo's error message enumerates every valid spelling — the
        // CLI name and the paper label of each registered engine — so a
        // `--method` typo is not a dead end.
        let err = "bogus".parse::<Method>().unwrap_err();
        assert!(err.contains("unknown method `bogus`"), "{err}");
        for m in Method::ALL {
            assert!(err.contains(m.cli_name()), "`{err}` lacks {}", m.cli_name());
            assert!(err.contains(m.label()), "`{err}` lacks {}", m.label());
        }
    }

    #[test]
    fn retire_mode_names_and_option_precedence() {
        assert_eq!(RetireMode::InOrder.name(), "inorder");
        assert_eq!(RetireMode::Ooo.name(), "ooo");
        // An explicit option always wins over the environment/default
        // chain; unset falls back to in-order with an adaptive window.
        // (from_env itself is exercised end-to-end by the CI matrix —
        // mutating RLCHOL_RETIRE here would race parallel tests.)
        let opts = GpuOptions::with_threshold(0);
        assert_eq!(opts.resolved_lookahead(), 0);
        assert_eq!(
            opts.clone().with_retire(RetireMode::Ooo).resolved_retire(),
            RetireMode::Ooo
        );
        assert_eq!(opts.with_lookahead(7).resolved_lookahead(), 7);
    }

    #[test]
    fn method_all_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for m in Method::ALL {
            assert!(seen.insert(m), "{m:?} listed twice");
        }
        assert_eq!(seen.len(), Method::ALL.len());
    }

    #[test]
    fn factor_panel_matches_full_potrf() {
        // A (len x c) panel whose full (len x len) completion is SPD.
        let (c, len) = (3usize, 7usize);
        let mut m = rlchol_dense::DMat::from_fn(len, len, |i, j| {
            if i == j {
                12.0
            } else {
                -1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let mut panel: Vec<f64> = (0..c)
            .flat_map(|j| (0..len).map(move |i| (i, j)))
            .map(|(i, j)| m[(i, j)])
            .collect();
        factor_panel(&mut panel, len, c, len - c, &mut Vec::new()).unwrap();
        rlchol_dense::potrf(len, m.as_mut_slice(), len).unwrap();
        for j in 0..c {
            for i in j..len {
                assert!(
                    (panel[j * len + i] - m[(i, j)]).abs() < 1e-12,
                    "panel ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn factor_panel_reports_pivot() {
        let mut bad = vec![0.0; 6]; // 3x2 panel, zero diagonal
        assert_eq!(factor_panel(&mut bad, 3, 2, 1, &mut Vec::new()), Err(0));
    }

    #[test]
    fn best_cpu_picks_minimum() {
        let mk = |flops_scale: usize| {
            let mut trace = Trace::new();
            trace.push(TraceOp::Gemm {
                m: 100 * flops_scale,
                n: 100,
                k: 100,
            });
            CpuRun {
                factor: FactorData { sn: vec![] },
                trace,
                wall: Duration::ZERO,
            }
        };
        let cheap = mk(1);
        let pricey = mk(50);
        let (t, m, th) = best_cpu_time(&cheap, &pricey);
        assert_eq!(m, Method::RlCpu);
        assert!(t > 0.0);
        assert!(PAPER_THREAD_SWEEP.contains(&th));
    }
}
