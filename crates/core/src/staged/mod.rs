//! The staged solver API: analyze **once**, factor **many**, solve
//! **many**.
//!
//! Workloads that re-factor a fixed sparsity pattern with new values —
//! interior-point iterations, time stepping, parameter sweeps — pay the
//! ordering + symbolic-analysis cost only once:
//!
//! ```text
//! let handle = CholeskySolver::analyze(&a, &opts);   // order + analyze
//! let mut fact = handle.factor_with(&a)?;            // numeric factor
//! loop {
//!     a.values_mut()...;                             // same pattern, new values
//!     handle.refactor(&mut fact, &a)?;               // reuses factor storage
//!     handle.solve_into(&fact, &b, &mut x, &mut ws); // zero allocation
//! }
//! ```
//!
//! * [`SymbolicCholesky`] owns the composed permutation, the symbolic
//!   factor, and the engine-resolved resources
//!   ([`EngineWorkspace`](crate::registry::EngineWorkspace): pool lanes,
//!   GPU stream pairs, recycled factor storage, per-engine scratch).
//! * [`SymbolicCholesky::factor_with`] /
//!   [`SymbolicCholesky::refactor`] accept any matrix with the analyzed
//!   pattern (a different pattern is the typed
//!   [`FactorError::PatternMismatch`]); `refactor` reuses the
//!   [`Factorization`]'s storage — no re-ordering, no re-analysis, no
//!   factor reallocation — and produces values bit-identical to a fresh
//!   one-shot factorization with the same engine.
//! * [`SymbolicCholesky::solve_into`] / [`solve_many`] /
//!   [`solve_refined`](SymbolicCholesky::solve_refined) run in caller
//!   buffers over a reusable [`SolveWorkspace`]: zero heap allocations
//!   per call once the workspace is warm.
//! * The handle is **`Send + Sync` and takes `&self` everywhere**, so an
//!   `Arc<SymbolicCholesky>` (or a scoped borrow) serves many threads at
//!   once: engine resources live in a [`lanes`] pool of independent
//!   workspaces (`factor_lanes` of them, see
//!   [`SolverOptions::factor_lanes`]), so concurrent
//!   `factor_with`/`refactor` calls run truly in parallel — each
//!   bit-identical to the serial path — and
//!   [`batch_factor`](SymbolicCholesky::batch_factor) fans a whole batch
//!   of value sets across the lanes on [`rlchol_dense::pool`].

pub mod lanes;

use std::time::Instant;

use rlchol_ordering::order;
use rlchol_sparse::{Permutation, SymCsc};
use rlchol_symbolic::{analyze_instrumented, SymbolicFactor};

use crate::engine::Method;
use crate::error::{FactorError, SolveError};
use crate::registry::{engine_for, FactorInfo, NumericEngine};
use crate::resilience::{
    CancelToken, Deadline, RecoveryAction, RecoveryEvent, RetryPolicy, RunCtl,
};
use crate::solve::{self, SolveInfo, SolvePlan};
use crate::solver::SolverOptions;
use crate::storage::FactorData;

use lanes::{Lane, LaneStats, WorkspaceLanes};

/// A numeric factor produced by [`SymbolicCholesky::factor_with`] and
/// refreshed in place by [`SymbolicCholesky::refactor`].
#[derive(Debug)]
pub struct Factorization {
    data: FactorData,
    info: FactorInfo,
    /// Cleared when a failed `refactor` consumes the storage; an
    /// explicit flag (rather than inspecting `data`) so a legitimately
    /// factored degenerate system stays valid.
    valid: bool,
}

impl Factorization {
    /// The numeric factor values.
    pub fn data(&self) -> &FactorData {
        &self.data
    }

    /// The engine's uniform report for the most recent (re)factorization.
    pub fn info(&self) -> &FactorInfo {
        &self.info
    }

    /// False after a numerically failed [`SymbolicCholesky::refactor`]
    /// consumed this factorization's storage: the handle stays usable
    /// (the next successful `refactor` revalidates it), but solving
    /// against an invalidated factorization is a caller bug and panics
    /// with this message. Callers that need the *previous* factor as a
    /// fallback after a failed update should `factor_with` into a
    /// separate [`Factorization`] instead of refactoring in place.
    pub fn is_valid(&self) -> bool {
        self.valid
    }
}

/// Reusable scratch for the permutation-transparent solves. One
/// workspace serves any number of sequential solves against any
/// [`Factorization`] of the same handle; buffers grow to the largest
/// request seen and are never shrunk, so steady-state calls allocate
/// nothing.
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    /// Permuted right-hand side / solution block (`n × k` capacity).
    perm: Vec<f64>,
    /// Residual in original ordering (iterative refinement).
    resid: Vec<f64>,
    /// Correction in original ordering (iterative refinement).
    corr: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        SolveWorkspace::default()
    }

    /// Pre-grows the buffers for `n`-sized systems with up to `k`
    /// simultaneous right-hand sides, so even the first solve allocates
    /// nothing.
    pub fn warm(n: usize, k: usize) -> Self {
        SolveWorkspace {
            perm: vec![0.0; n * k.max(1)],
            resid: vec![0.0; n],
            corr: vec![0.0; n],
        }
    }
}

/// Grows `buf` to at least `len` entries (never shrinks).
fn ensure_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Resolves the solve lane count once, at handle construction: an
/// explicit option wins, else `RLCHOL_SOLVE_THREADS`, else the pool
/// default. Returns `(lanes, forced)` — `forced` marks the first two
/// sources, which bypass the automatic small-system serial cutoff.
fn resolve_solve_threads(option: usize) -> (usize, bool) {
    if option > 0 {
        return (option, true);
    }
    match solve::env_solve_threads() {
        Some(t) => (t, true),
        None => (rlchol_dense::pool::default_threads(), false),
    }
}

/// Resolves the analyze lane count, same precedence as the solve lanes:
/// an explicit [`SolverOptions::analyze_threads`] wins, else
/// `RLCHOL_ANALYZE_THREADS`, else the pool default. `forced` marks the
/// first two sources, which bypass the small-system serial cutoff.
fn resolve_analyze_threads(option: usize) -> (usize, bool) {
    if option > 0 {
        return (option, true);
    }
    match crate::engine::env_positive("RLCHOL_ANALYZE_THREADS") {
        Some(t) => (t, true),
        None => (rlchol_dense::pool::default_threads(), false),
    }
}

/// Below these sizes an automatically-sized analysis stays serial: the
/// pool dispatch and per-thread scratch cost more than the stages save.
/// A forced lane count (explicit option or environment) skips the
/// cutoff, which is what the bit-identity tests rely on.
const ANALYZE_PAR_MIN_N: usize = 1024;
const ANALYZE_PAR_MIN_NNZ: usize = 16_384;

/// Wall-clock breakdown of one symbolic analysis, stage by stage — the
/// instrumentation behind `rlchol analyze` and the service's cache-miss
/// metrics. All stages sum to (just under) the analyze wall: `etree`
/// through `relind` come from [`rlchol_symbolic::analyze_instrumented`];
/// `solve_plan` and `value_map` are the handle-construction stages added
/// on top of the symbolic factor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeBreakdown {
    /// Elimination tree + postorder + permutation (serial, fused).
    pub etree: std::time::Duration,
    /// Column counts via row-subtree traversal.
    pub colcount: std::time::Duration,
    /// Supernode detection, amalgamation, partition refinement.
    pub merge: std::time::Duration,
    /// Per-supernode row structures and relative-index blocks.
    pub relind: std::time::Duration,
    /// Level sets + gather segments for the tree-parallel sweeps.
    pub solve_plan: std::time::Duration,
    /// The input → factor-order value scatter map.
    pub value_map: std::time::Duration,
    /// The lane count the analysis actually ran with (after the
    /// automatic cutoff).
    pub threads: usize,
}

impl AnalyzeBreakdown {
    /// Sum of all instrumented stages.
    pub fn total(&self) -> std::time::Duration {
        self.etree + self.colcount + self.merge + self.relind + self.solve_plan + self.value_map
    }
}

/// Precomputes where each input value lands in factor order: entry
/// `(i, j)` of the input lower triangle becomes `(pi, pj)` sorted so the
/// larger index is the row — exactly what `permute` does.
///
/// With `threads > 1` the destination of every input entry is computed
/// first, into disjoint per-column-chunk slices on the pool, and the
/// map is then scattered serially. The map is a bijection (each factor
/// position receives exactly one input position), so the scatter's
/// result is independent of the chunking and identical to the serial
/// loop.
fn build_value_map(
    a: &SymCsc,
    a_fact: &SymCsc,
    total_perm: &Permutation,
    threads: usize,
) -> Vec<usize> {
    let n = a.n();
    let colptr = a.colptr();
    let nnz = a.nnz_lower();
    let mut value_map = vec![0usize; nnz];
    // Destination of input entry (i, j): the factor-order position of
    // the permuted entry.
    let dst_of = |j: usize, i: usize| -> usize {
        let pj = total_perm.new_of(j);
        let pi = total_perm.new_of(i);
        let (r, c) = if pi >= pj { (pi, pj) } else { (pj, pi) };
        let pos = a_fact
            .col_rows(c)
            .binary_search(&r)
            .expect("permuted entry exists in permuted pattern");
        a_fact.colptr()[c] + pos
    };
    if threads <= 1 || n < 2 * threads {
        for j in 0..n {
            for (off, &i) in a.col_rows(j).iter().enumerate() {
                value_map[dst_of(j, i)] = colptr[j] + off;
            }
        }
        return value_map;
    }
    // Phase 1 (parallel): per-entry destinations into `dst`, chunked at
    // nnz-balanced column boundaries so each task owns a disjoint slice.
    let mut dst = vec![0usize; nnz];
    let mut bounds = Vec::with_capacity(threads + 1);
    bounds.push(0usize);
    for t in 1..threads {
        let target = colptr[n] * t / threads;
        let cut = colptr.partition_point(|&p| p < target).min(n);
        bounds.push((*bounds.last().unwrap()).max(cut));
    }
    bounds.push(n);
    {
        let dst_of = &dst_of;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(threads);
        let mut rest = dst.as_mut_slice();
        let mut consumed = 0usize;
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo == hi {
                continue;
            }
            let take = colptr[hi] - consumed;
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = consumed;
            consumed = colptr[hi];
            tasks.push(Box::new(move || {
                for j in lo..hi {
                    for (off, &i) in a.col_rows(j).iter().enumerate() {
                        mine[colptr[j] + off - base] = dst_of(j, i);
                    }
                }
            }));
        }
        rlchol_dense::pool::global().run(tasks);
    }
    // Phase 2 (serial): scatter. Exactly the serial loop's writes, in a
    // different order over a bijection — same map.
    for (k, &d) in dst.iter().enumerate() {
        value_map[d] = k;
    }
    value_map
}

/// The analyzed half of the pipeline: composed permutation, symbolic
/// factor, resolved numeric engine, and the resources reused across
/// repeated factorizations. Produced by [`CholeskySolver::analyze`]
/// (`CholeskySolver` in [`crate::solver`]).
pub struct SymbolicCholesky {
    sym: SymbolicFactor,
    /// Original ordering → factor ordering.
    total_perm: Permutation,
    method: Method,
    engine: &'static dyn NumericEngine,
    /// Level sets + gather segments for the tree-parallel sweeps,
    /// computed once here (pattern-only) and consulted on every solve.
    plan: SolvePlan,
    /// Resolved solve lane count and whether it was forced (explicit
    /// [`SolverOptions::solve_threads`] or `RLCHOL_SOLVE_THREADS`)
    /// rather than derived from the pool default. Resolved **once** at
    /// construction (or [`set_solve_threads`](Self::set_solve_threads)):
    /// an environment read allocates, and the solve hot path must not.
    solve_lanes: usize,
    solve_forced: bool,
    /// Whether the parallel sweeps dispatch asynchronously (dependency
    /// counters, no level barrier) rather than as barriered level sets.
    /// Follows the handle's resolved retirement mode
    /// ([`GpuOptions::resolved_retire`](crate::engine::GpuOptions::resolved_retire)),
    /// resolved once at construction like the lane counts.
    solve_async: bool,
    /// The analyzed pattern (lower triangle of the *input* matrix), kept
    /// to reject same-handle calls with a different pattern.
    pattern_colptr: Vec<usize>,
    pattern_rowind: Vec<usize>,
    /// `a_fact.values[k] = a.values[value_map[k]]` — the precomputed
    /// scatter that moves input values into factor order without
    /// re-permuting the structure.
    value_map: Vec<usize>,
    /// The pool of independent engine workspaces (each with its own
    /// factor-ordered matrix) that lets `factor_with(&self, ..)` run
    /// concurrently from shared borrows — see [`lanes`].
    lanes: WorkspaceLanes,
    /// Fallback engines (degradation order), resolved once from
    /// [`SolverOptions::fallback`] — the registry lookup must not run on
    /// the recovery path.
    chain: Vec<(Method, &'static dyn NumericEngine)>,
    /// Bounded retries for transient device faults.
    retry: RetryPolicy,
    /// Per-factorization wall / simulated-seconds budget.
    deadline: Deadline,
    /// Handle-wide cancellation flag; armed into every factorization's
    /// [`RunCtl`] and checked by `batch_factor` before starting a slot.
    cancel: CancelToken,
    /// Stage-by-stage wall breakdown of the analysis that built this
    /// handle (see [`AnalyzeBreakdown`]).
    analyze_stages: AnalyzeBreakdown,
}

impl SymbolicCholesky {
    /// Orders and analyzes the pattern of `a`, resolving the engine and
    /// its resources from `opts`. Runs no numeric factorization.
    ///
    /// Resource precedence: explicit [`SolverOptions::threads`] /
    /// [`GpuOptions::streams`](crate::engine::GpuOptions::streams) win;
    /// a `0` in either defers to the `RLCHOL_THREADS` /
    /// `RLCHOL_STREAMS` environment variables (read at use), which in
    /// turn default to the machine's parallelism / the runtime default.
    pub fn new(a: &SymCsc, opts: &SolverOptions) -> Self {
        // Analyze lane count: explicit option / environment force it;
        // an automatic count stays serial below the cutoff, where the
        // pool dispatch costs more than the stages save.
        let (analyze_opt, analyze_forced) = resolve_analyze_threads(opts.analyze_threads);
        let analyze_lanes =
            if analyze_forced || a.n() >= ANALYZE_PAR_MIN_N || a.nnz_lower() >= ANALYZE_PAR_MIN_NNZ
            {
                analyze_opt.max(1)
            } else {
                1
            };

        let fill = order(a, opts.ordering);
        let a_fill = a.permute(&fill);
        let (sym, sym_stages) = analyze_instrumented(&a_fill, &opts.symbolic, analyze_lanes);
        let total_perm = sym.perm.compose(&fill);
        let a_fact = a_fill.permute(&sym.perm);

        let mut analyze_stages = AnalyzeBreakdown {
            etree: sym_stages.etree,
            colcount: sym_stages.colcount,
            merge: sym_stages.merge,
            relind: sym_stages.relind,
            threads: analyze_lanes,
            ..AnalyzeBreakdown::default()
        };

        let t = Instant::now();
        let value_map = build_value_map(a, &a_fact, &total_perm, analyze_lanes);
        analyze_stages.value_map = t.elapsed();

        let engine = engine_for(opts.method);
        // Fault plans flow down: an explicit GpuOptions plan wins, else
        // the solver-level plan, else (inside the lane pool, resolved
        // once) the RLCHOL_FAULTS environment variable.
        let mut gpu = opts.gpu.clone();
        if gpu.faults.is_none() {
            gpu.faults = opts.faults.clone();
        }
        let solve_async = gpu.resolved_retire() == crate::engine::RetireMode::Ooo;
        let lanes =
            WorkspaceLanes::new(opts.factor_lanes, opts.threads, gpu, a_fact, opts.lane_wait);
        let chain = opts
            .fallback
            .methods
            .iter()
            .map(|&m| (m, engine_for(m)))
            .collect();
        let t = Instant::now();
        let plan = SolvePlan::build_par(&sym, analyze_lanes);
        analyze_stages.solve_plan = t.elapsed();
        let (solve_lanes, solve_forced) = resolve_solve_threads(opts.solve_threads);
        SymbolicCholesky {
            sym,
            total_perm,
            method: opts.method,
            engine,
            plan,
            solve_lanes,
            solve_forced,
            solve_async,
            pattern_colptr: a.colptr().to_vec(),
            pattern_rowind: a.rowind().to_vec(),
            value_map,
            lanes,
            chain,
            retry: opts.retry,
            deadline: opts.deadline,
            cancel: CancelToken::new(),
            analyze_stages,
        }
    }

    /// The symbolic factor (structure, counts, supernodes).
    pub fn symbolic(&self) -> &SymbolicFactor {
        &self.sym
    }

    /// Stage-by-stage wall breakdown of the analysis that built this
    /// handle, including the lane count it actually ran with.
    pub fn analyze_breakdown(&self) -> AnalyzeBreakdown {
        self.analyze_stages
    }

    /// True when `other` encodes the identical analysis: symbolic
    /// factor, composed permutation, solve plan, value map and analyzed
    /// pattern all compare equal. Engine resources, lane counts and
    /// stage timings are ignored — this is the handle-level statement of
    /// "the analysis is bit-identical", which the parallel-analyze tests
    /// assert across thread counts.
    pub fn analysis_eq(&self, other: &SymbolicCholesky) -> bool {
        self.sym == other.sym
            && self.total_perm == other.total_perm
            && self.plan == other.plan
            && self.value_map == other.value_map
            && self.pattern_colptr == other.pattern_colptr
            && self.pattern_rowind == other.pattern_rowind
    }

    /// The composed permutation from the input ordering to factor order.
    pub fn permutation(&self) -> &Permutation {
        &self.total_perm
    }

    /// The numeric engine this handle dispatches to.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.sym.n
    }

    /// Factor nonzeros (including amalgamation padding).
    pub fn factor_nnz(&self) -> u64 {
        self.sym.nnz
    }

    /// Estimated resident bytes of this handle: the symbolic structure,
    /// the cached solve plan, the retained pattern copy and value map,
    /// plus a worst-case workspace estimate for every lane the pool may
    /// create ([`factor_lanes`](Self::factor_lanes) ×
    /// [`lane_memory_bytes`](Self::lane_memory_bytes) — lanes are built
    /// lazily, so a lightly used handle occupies less; a cache evicting
    /// on this number never under-accounts). Counts element storage, not
    /// allocator slack.
    pub fn memory_bytes(&self) -> u64 {
        let usz = std::mem::size_of::<usize>() as u64;
        self.sym.memory_bytes()
            + self.plan.memory_bytes()
            + 2 * self.sym.n as u64 * usz // total_perm: old_of + new_of
            + (self.pattern_colptr.len() + self.pattern_rowind.len() + self.value_map.len())
                as u64
                * usz
            + self.factor_lanes() as u64 * self.lane_memory_bytes()
    }

    /// Worst-case heap bytes of one workspace lane: its private
    /// factor-ordered matrix plus the engine's factor storage, the
    /// dense update-matrix scratch (RL forms one `r × r` update per
    /// supernode), and the diagonal-block scratch.
    pub fn lane_memory_bytes(&self) -> u64 {
        let f64b = std::mem::size_of::<f64>() as u64;
        let max_diag = (0..self.sym.nsup())
            .map(|s| self.sym.sn_ncols(s) * self.sym.sn_ncols(s))
            .max()
            .unwrap_or(0) as u64;
        self.lanes.template_bytes()
            + self.sym.total_storage_entries() * f64b
            + self.sym.max_update_matrix_entries() as u64 * f64b
            + max_diag * f64b
    }

    /// Checks that `a` has exactly the analyzed sparsity pattern.
    fn check_pattern(&self, a: &SymCsc) -> Result<(), FactorError> {
        let expected_nnz = self.pattern_rowind.len();
        let mismatch = |column: usize| FactorError::PatternMismatch {
            column,
            expected_nnz,
            found_nnz: a.nnz_lower(),
        };
        let n = self.pattern_colptr.len() - 1;
        if a.n() != n {
            return Err(mismatch(a.n().min(n)));
        }
        if a.colptr() != self.pattern_colptr.as_slice()
            || a.rowind() != self.pattern_rowind.as_slice()
        {
            // Locate the first differing column for the error report.
            for j in 0..n {
                let lo = self.pattern_colptr[j];
                let hi = self.pattern_colptr[j + 1];
                if a.colptr()[j] != lo
                    || a.colptr()[j + 1] != hi
                    || a.col_rows(j) != &self.pattern_rowind[lo..hi]
                {
                    return Err(mismatch(j));
                }
            }
            return Err(mismatch(n));
        }
        Ok(())
    }

    /// Factors `a` — any matrix with the analyzed pattern — reusing the
    /// symbolic structure. Returns a new [`Factorization`]; to reuse an
    /// existing one's storage, call [`refactor`](Self::refactor) (or
    /// hand finished factorizations back with [`recycle`](Self::recycle)
    /// so later `factor_with` calls reuse their storage).
    ///
    /// Takes `&self`: up to [`factor_lanes`](Self::factor_lanes) calls
    /// run concurrently on independent workspace lanes, each producing a
    /// factor bit-identical to a serial call with the same engine;
    /// beyond that, callers block until a lane frees up — at most the
    /// handle's wait budget ([`SolverOptions::lane_wait`]), after which
    /// the call sheds with [`FactorError::LanesExhausted`].
    ///
    /// Device-side failures degrade per the handle's
    /// [`RetryPolicy`]/[`FallbackChain`](crate::resilience::FallbackChain)
    /// (each step recorded in [`FactorInfo::recovery`]); a factorization
    /// that still ends in a device error **quarantines its lane** — the
    /// possibly-poisoned workspace is torn down and rebuilt fresh on the
    /// next checkout.
    pub fn factor_with(&self, a: &SymCsc) -> Result<Factorization, FactorError> {
        self.factor_with_ctl(a, self.deadline, &self.cancel)
    }

    /// [`factor_with`](Self::factor_with) with a per-call [`Deadline`]
    /// and [`CancelToken`] overriding the handle defaults — the entry
    /// point a serving front end arms per request, so one shared handle
    /// can enforce a different remaining budget for every caller without
    /// re-analyzing. The deadline spans the whole call including
    /// retries/fallbacks, exactly like the handle-wide one.
    pub fn factor_with_ctl(
        &self,
        a: &SymCsc,
        deadline: Deadline,
        cancel: &CancelToken,
    ) -> Result<Factorization, FactorError> {
        self.check_pattern(a)?;
        let mut guard = self.lanes.checkout()?;
        let result = self.run_engine(guard.lane(), a, deadline, cancel);
        if let Err(e) = &result {
            if e.is_device() {
                guard.quarantine();
            }
        }
        result
    }

    /// Factors a batch of same-pattern value sets, fanning the work
    /// across the workspace lanes on [`rlchol_dense::pool`]. Results
    /// come back in input order, each independently `Ok` or `Err` — one
    /// indefinite matrix fails its own slot and nothing else. With `L`
    /// lanes and a pool of `t` threads, `min(L, t)` factorizations are
    /// in flight at a time. Cancelling the handle's
    /// [`cancel_token`](Self::cancel_token) fails not-yet-started slots
    /// with [`FactorError::Cancelled`] (in-flight ones abort at their
    /// next executor checkpoint).
    pub fn batch_factor(&self, batch: &[&SymCsc]) -> Vec<Result<Factorization, FactorError>> {
        self.batch_factor_ctl(batch, self.deadline, &self.cancel)
    }

    /// [`batch_factor`](Self::batch_factor) with a per-call [`Deadline`]
    /// and [`CancelToken`] overriding the handle defaults: every slot of
    /// the batch runs under the caller's budget, so a serving front end
    /// can bound a whole batch request without touching the shared
    /// handle's configuration.
    pub fn batch_factor_ctl(
        &self,
        batch: &[&SymCsc],
        deadline: Deadline,
        cancel: &CancelToken,
    ) -> Vec<Result<Factorization, FactorError>> {
        let mut out: Vec<Option<Result<Factorization, FactorError>>> =
            (0..batch.len()).map(|_| None).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = batch
            .iter()
            .zip(out.iter_mut())
            .map(|(&a, slot)| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    *slot = Some(if cancel.is_cancelled() {
                        Err(FactorError::Cancelled)
                    } else {
                        self.factor_with_ctl(a, deadline, cancel)
                    });
                });
                task
            })
            .collect();
        rlchol_dense::pool::global().run(tasks);
        out.into_iter()
            .map(|r| r.expect("every batch task ran"))
            .collect()
    }

    /// Re-factors into `fact`, reusing both the symbolic structure and
    /// the factorization's storage: no re-ordering, no re-analysis, no
    /// factor reallocation. On [`FactorError::PatternMismatch`] the old
    /// factor is left untouched; on a numeric error (e.g.
    /// [`FactorError::NotPositiveDefinite`]) the storage was already
    /// consumed by the failed attempt, so `fact` is **invalidated**
    /// ([`Factorization::is_valid`] turns false and its stale `info` is
    /// cleared) until the next successful `refactor` — callers that
    /// need the previous factor as a fallback should `factor_with` into
    /// a separate [`Factorization`] instead.
    pub fn refactor(&self, fact: &mut Factorization, a: &SymCsc) -> Result<(), FactorError> {
        self.check_pattern(a)?;
        let mut guard = self.lanes.checkout()?;
        let lane = guard.lane();
        lane.ws.recycle(std::mem::take(&mut fact.data));
        // The replaced report's trace buffer feeds the new recording, so
        // a steady refactor loop never regrows it.
        if let Some(trace) = fact.info.trace.take() {
            lane.ws.recycle_trace(trace);
        }
        match self.run_engine(lane, a, self.deadline, &self.cancel) {
            Ok(fresh) => {
                *fact = fresh;
                Ok(())
            }
            Err(e) => {
                // Don't let stale data or a stale report masquerade as
                // the (failed) current state.
                fact.info = FactorInfo::default();
                fact.valid = false;
                if e.is_device() {
                    guard.quarantine();
                }
                Err(e)
            }
        }
    }

    /// Returns a finished [`Factorization`]'s storage (and trace buffer)
    /// to the lane pool, so subsequent [`factor_with`](Self::factor_with)
    /// calls reuse it instead of allocating. A serving loop of
    /// `factor_with` + `recycle` touches the heap only during warm-up —
    /// the factorization-side analogue of the zero-alloc solves.
    pub fn recycle(&self, fact: Factorization) {
        let Factorization { data, mut info, .. } = fact;
        let trace_ops = info.trace.take().map(|t| t.ops);
        self.lanes.recycle_parts(data, trace_ops);
    }

    /// Maximum concurrent factorizations this handle admits (the lane
    /// cap — precedence: [`SolverOptions::factor_lanes`] >
    /// `RLCHOL_FACTOR_LANES` > the pool default).
    pub fn factor_lanes(&self) -> usize {
        self.lanes.cap()
    }

    /// Usage counters of the workspace lane pool (lanes created, peak
    /// concurrency, contended checkouts, quarantined lanes).
    pub fn lane_stats(&self) -> LaneStats {
        self.lanes.stats()
    }

    /// The handle's cancellation token: clone it to any thread, call
    /// [`cancel`](CancelToken::cancel), and every in-flight
    /// factorization aborts with [`FactorError::Cancelled`] at its next
    /// executor checkpoint ([`batch_factor`](Self::batch_factor) also
    /// skips slots it has not started). [`reset`](CancelToken::reset)
    /// re-opens the handle for further work.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Scatters `a`'s values into the lane's factor-ordered matrix and
    /// runs the engine under the degradation policy: transient device
    /// faults retry on the same engine (bounded by the handle's
    /// [`RetryPolicy`]), persistent device failures move down the
    /// fallback chain reusing the already-scattered values, and data or
    /// control errors surface immediately. Every step lands in
    /// [`FactorInfo::recovery`].
    fn run_engine(
        &self,
        lane: &mut Lane,
        a: &SymCsc,
        deadline: Deadline,
        cancel: &CancelToken,
    ) -> Result<Factorization, FactorError> {
        let Lane { ws, a_fact } = lane;
        let src = a.values();
        for (dst, &from) in a_fact.values_mut().iter_mut().zip(&self.value_map) {
            *dst = src[from];
        }
        // One arming per factorization: the wall budget spans retries
        // and fallbacks (the attempts are one user-visible call), while
        // the simulated budget is checked per attempt against each
        // attempt's fresh device clock.
        ws.ctl = RunCtl::armed(deadline, cancel.clone());
        let mut recovery: Vec<RecoveryEvent> = Vec::new();
        let mut step = 0usize; // 0 = primary engine, 1.. = chain index
        let run = 'chain: loop {
            let (method, engine) = if step == 0 {
                (self.method, self.engine)
            } else {
                self.chain[step - 1]
            };
            let mut attempt = 0u32;
            loop {
                // Deadline/cancel strike between attempts too, so a
                // retry/fallback loop over CPU engines (which have no
                // internal checkpoints) still honors the budget.
                if let Err(e) = ws.ctl.check() {
                    break 'chain Err(e);
                }
                let err = match engine.factor(&self.sym, a_fact, ws) {
                    Ok(run) => break 'chain Ok(run),
                    Err(e) => e,
                };
                if err.is_transient() && attempt < self.retry.max_retries {
                    recovery.push(RecoveryEvent {
                        method,
                        attempt,
                        action: RecoveryAction::Retried,
                        error: err,
                    });
                    attempt += 1;
                    if !self.retry.backoff.is_zero() {
                        std::thread::sleep(self.retry.backoff);
                    }
                    continue;
                }
                if err.is_device() && step < self.chain.len() {
                    recovery.push(RecoveryEvent {
                        method,
                        attempt,
                        action: RecoveryAction::FellBack {
                            to: self.chain[step].0,
                        },
                        error: err,
                    });
                    step += 1;
                    continue 'chain;
                }
                break 'chain Err(err);
            }
        };
        let mut run = run?;
        run.info.recovery = recovery;
        Ok(Factorization {
            data: run.factor,
            info: run.info,
            valid: true,
        })
    }

    /// Overrides the handle's solve lane count (`0` restores the
    /// `RLCHOL_SOLVE_THREADS` / automatic resolution). Lets one analyzed
    /// handle serve configurations with different solve parallelism —
    /// e.g. a thread-sweep benchmark — without re-analyzing.
    pub fn set_solve_threads(&mut self, threads: usize) {
        let (lanes, forced) = resolve_solve_threads(threads);
        self.solve_lanes = lanes;
        self.solve_forced = forced;
    }

    /// How this handle's solves will run: plan shape (levels, width)
    /// plus the resolved thread count and selected path. The solve-side
    /// analogue of [`FactorInfo`].
    pub fn solve_info(&self) -> SolveInfo {
        let (threads, level_set) = self.solve_path();
        SolveInfo {
            levels: self.plan.num_levels(),
            max_width: self.plan.max_width(),
            threads,
            level_set,
            async_dispatch: level_set && self.solve_async,
        }
    }

    /// The cached solve plan (level sets, gather segments).
    pub fn solve_plan(&self) -> &SolvePlan {
        &self.plan
    }

    /// Serial/parallel selection. The level-set path needs lanes *and*
    /// level width to pay for its barriers; under automatic resolution
    /// small systems stay serial too ([`solve::AUTO_MIN_N`]), while a
    /// forced thread count trusts the caller. Selection never affects
    /// results — the paths are bit-identical — only wall clock.
    fn solve_path(&self) -> (usize, bool) {
        let threads = self.solve_lanes;
        let wide = self.plan.max_width() > 1;
        let level_set =
            threads > 1 && wide && (self.solve_forced || self.sym.n >= solve::AUTO_MIN_N);
        (threads, level_set)
    }

    /// Runs the planned forward + backward sweeps on the factor-ordered
    /// block `bp` (`n × k`, column-major).
    fn run_sweeps(&self, fact: &Factorization, bp: &mut [f64], k: usize) {
        let (threads, level_set) = self.solve_path();
        if level_set && self.solve_async {
            solve::solve_forward_async(&self.sym, &self.plan, &fact.data, bp, k, threads);
            solve::solve_backward_async(&self.sym, &self.plan, &fact.data, bp, k, threads);
        } else if level_set {
            solve::solve_forward_level_set(&self.sym, &self.plan, &fact.data, bp, k, threads);
            solve::solve_backward_level_set(&self.sym, &self.plan, &fact.data, bp, k, threads);
        } else if k == 1 {
            solve::solve_forward(&self.sym, &fact.data, bp);
            solve::solve_backward(&self.sym, &fact.data, bp);
        } else {
            solve::solve_forward_multi(&self.sym, &fact.data, bp, k);
            solve::solve_backward_multi(&self.sym, &fact.data, bp, k);
        }
    }

    /// Checks one buffer's length against `n × k`.
    fn check_dim(
        &self,
        len: usize,
        k: usize,
        mk: fn(usize, usize) -> SolveError,
    ) -> Result<(), SolveError> {
        let expected = self.sym.n * k;
        if len != expected {
            return Err(mk(expected, len));
        }
        Ok(())
    }

    /// Solves `A x = b` (original ordering) into the caller's `x`,
    /// drawing scratch from `ws` — zero heap allocations once `ws` is
    /// warm. Takes the level-set path when the handle's solve plan
    /// selected it (see [`solve_info`](Self::solve_info)); results are
    /// bit-identical either way.
    pub fn solve_into(
        &self,
        fact: &Factorization,
        b: &[f64],
        x: &mut [f64],
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolveError> {
        self.solve_perm(fact, b, x, &mut ws.perm)
    }

    /// Inner single-RHS solve against an explicit permutation scratch
    /// (lets refinement use the other workspace fields simultaneously).
    fn solve_perm(
        &self,
        fact: &Factorization,
        b: &[f64],
        x: &mut [f64],
        scratch: &mut Vec<f64>,
    ) -> Result<(), SolveError> {
        assert!(
            fact.is_valid(),
            "factorization was invalidated by a failed refactor; \
             refactor successfully before solving"
        );
        self.check_dim(b.len(), 1, |expected, found| SolveError::RhsDimension {
            expected,
            found,
        })?;
        self.check_dim(x.len(), 1, |expected, found| {
            SolveError::SolutionDimension { expected, found }
        })?;
        let n = self.sym.n;
        ensure_len(scratch, n);
        let bp = &mut scratch[..n];
        self.total_perm.apply_into(b, bp);
        self.run_sweeps(fact, bp, 1);
        self.total_perm.apply_inv_into(bp, x);
        Ok(())
    }

    /// Solves `A X = B` for `k` right-hand sides stored column-major in
    /// `b` (an `n × k` block, leading dimension `n`), writing the
    /// solutions into `x` with the same layout. The forward/backward
    /// sweeps are blocked over the supernodes (each panel is read once
    /// per sweep, not once per RHS) and take the level-set path when
    /// selected; zero heap allocations once `ws` is warm. `k == 0` is a
    /// valid empty request.
    pub fn solve_many(
        &self,
        fact: &Factorization,
        b: &[f64],
        x: &mut [f64],
        k: usize,
        ws: &mut SolveWorkspace,
    ) -> Result<(), SolveError> {
        assert!(
            fact.is_valid(),
            "factorization was invalidated by a failed refactor; \
             refactor successfully before solving"
        );
        self.check_dim(b.len(), k, |expected, found| SolveError::RhsDimension {
            expected,
            found,
        })?;
        self.check_dim(x.len(), k, |expected, found| {
            SolveError::SolutionDimension { expected, found }
        })?;
        if k == 0 || self.sym.n == 0 {
            return Ok(());
        }
        let n = self.sym.n;
        ensure_len(&mut ws.perm, n * k);
        let bp = &mut ws.perm[..n * k];
        for rhs in 0..k {
            self.total_perm
                .apply_into(&b[rhs * n..(rhs + 1) * n], &mut bp[rhs * n..(rhs + 1) * n]);
        }
        self.run_sweeps(fact, bp, k);
        for rhs in 0..k {
            self.total_perm
                .apply_inv_into(&bp[rhs * n..(rhs + 1) * n], &mut x[rhs * n..(rhs + 1) * n]);
        }
        Ok(())
    }

    /// Solves with iterative refinement on the in-place path, writing
    /// the solution into `x`; returns the final `‖b − A x‖∞`. Stops
    /// early when the residual stops improving (keeping the best
    /// iterate) or hits exactly zero; a NaN/Inf residual is the typed
    /// [`SolveError::NonFinite`] — non-finite inputs (or a corrupted
    /// factor) cannot converge, and a serving loop should reject the
    /// request rather than return a silently poisoned solution. Zero
    /// heap allocations once `ws` is warm.
    pub fn solve_refined(
        &self,
        fact: &Factorization,
        a: &SymCsc,
        b: &[f64],
        x: &mut [f64],
        max_iters: usize,
        ws: &mut SolveWorkspace,
    ) -> Result<f64, SolveError> {
        let n = self.sym.n;
        if a.n() != n {
            return Err(SolveError::MatrixDimension {
                expected: n,
                found: a.n(),
            });
        }
        let SolveWorkspace { perm, resid, corr } = ws;
        ensure_len(resid, n);
        ensure_len(corr, n);
        let resid = &mut resid[..n];
        let corr = &mut corr[..n];
        self.solve_perm(fact, b, x, perm)?;
        let mut last = f64::INFINITY;
        for iteration in 0..max_iters {
            a.matvec(x, resid);
            for i in 0..n {
                resid[i] = b[i] - resid[i];
            }
            // `f64::max` ignores NaN, so an all-NaN residual would fold
            // to 0.0 and read as converged; sum the absolute values
            // first (NaN-propagating) to catch any non-finite entry.
            if !resid.iter().map(|v| v.abs()).sum::<f64>().is_finite() {
                return Err(SolveError::NonFinite { iteration });
            }
            let norm = resid.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            if norm >= last || norm == 0.0 {
                last = norm.min(last);
                break;
            }
            last = norm;
            self.solve_perm(fact, resid, corr, perm)
                .expect("workspace buffers are sized to n");
            for i in 0..n {
                x[i] += corr[i];
            }
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CholeskySolver;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};

    fn staged_default(a: &SymCsc) -> (SymbolicCholesky, Factorization) {
        let sc = SymbolicCholesky::new(a, &SolverOptions::default());
        let fact = sc.factor_with(a).unwrap();
        (sc, fact)
    }

    #[test]
    fn factor_with_matches_one_shot() {
        let a = grid3d(5, 4, 3, Stencil::Star7, 1, 9);
        let (sc, fact) = staged_default(&a);
        let one_shot = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        assert_eq!(fact.data(), one_shot.factor_data());
        assert_eq!(sc.factor_nnz(), one_shot.factor_nnz());
    }

    #[test]
    fn refactor_reuses_storage_bit_identically() {
        let a1 = laplace2d(9, 21);
        let a2 = laplace2d(9, 22); // same pattern, different values
        let (sc, mut fact) = staged_default(&a1);
        let ptr = fact.data().sn[0].as_ptr();
        sc.refactor(&mut fact, &a2).unwrap();
        assert_eq!(
            fact.data().sn[0].as_ptr(),
            ptr,
            "refactor must reuse the factor storage"
        );
        let fresh = CholeskySolver::factor(&a2, &SolverOptions::default()).unwrap();
        assert_eq!(fact.data(), fresh.factor_data());
    }

    #[test]
    fn pattern_mismatch_is_typed_and_leaves_factor_intact() {
        let a = laplace2d(8, 3);
        let other = laplace2d(9, 3);
        let (sc, mut fact) = staged_default(&a);
        let before = fact.data().clone();
        match sc.factor_with(&other) {
            Err(FactorError::PatternMismatch { .. }) => {}
            r => panic!("expected PatternMismatch, got {r:?}"),
        }
        match sc.refactor(&mut fact, &other) {
            Err(FactorError::PatternMismatch { .. }) => {}
            r => panic!("expected PatternMismatch, got {r:?}"),
        }
        assert_eq!(fact.data(), &before);
        // Same nnz but shifted pattern must also be rejected.
        let mut t = rlchol_sparse::TripletMatrix::new(a.n(), a.n());
        for j in 0..a.n() {
            t.push(j, j, 4.0);
        }
        let diag = SymCsc::from_lower_triplets(&t).unwrap();
        assert!(matches!(
            sc.factor_with(&diag),
            Err(FactorError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn solve_into_and_many_match_allocating_path() {
        let a = grid3d(4, 4, 4, Stencil::Star7, 1, 5);
        let n = a.n();
        let (sc, fact) = staged_default(&a);
        let solver = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        let mut ws = SolveWorkspace::new();
        let k = 3;
        let b: Vec<f64> = (0..n * k).map(|i| ((i * 13) % 31) as f64 - 15.0).collect();
        let mut x = vec![0.0; n];
        let mut xs = vec![0.0; n * k];
        sc.solve_many(&fact, &b, &mut xs, k, &mut ws).unwrap();
        for rhs in 0..k {
            let col = &b[rhs * n..(rhs + 1) * n];
            sc.solve_into(&fact, col, &mut x, &mut ws).unwrap();
            let reference = solver.solve(col);
            for i in 0..n {
                assert_eq!(x[i], reference[i], "solve_into rhs {rhs} entry {i}");
                assert_eq!(
                    xs[rhs * n + i],
                    reference[i],
                    "solve_many rhs {rhs} entry {i}"
                );
            }
        }
    }

    #[test]
    fn solve_refined_reduces_residual_in_place() {
        let a = laplace2d(12, 6);
        let n = a.n();
        let (sc, fact) = staged_default(&a);
        let b: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut x = vec![0.0; n];
        let mut ws = SolveWorkspace::warm(n, 1);
        let resid = sc.solve_refined(&fact, &a, &b, &mut x, 3, &mut ws).unwrap();
        assert!(resid < 1e-9, "refined residual {resid}");
    }

    #[test]
    fn solve_dimension_mismatches_are_typed() {
        let a = laplace2d(6, 3);
        let n = a.n();
        let (sc, fact) = staged_default(&a);
        let mut ws = SolveWorkspace::new();
        let long = vec![1.0; n + 1];
        let mut x = vec![0.0; n];
        assert_eq!(
            sc.solve_into(&fact, &long, &mut x, &mut ws),
            Err(SolveError::RhsDimension {
                expected: n,
                found: n + 1
            })
        );
        let b = vec![1.0; n];
        let mut short = vec![0.0; n - 1];
        assert_eq!(
            sc.solve_into(&fact, &b, &mut short, &mut ws),
            Err(SolveError::SolutionDimension {
                expected: n,
                found: n - 1
            })
        );
        // Blocked entry point: the expected length scales with k.
        let mut x2 = vec![0.0; 2 * n];
        assert_eq!(
            sc.solve_many(&fact, &b, &mut x2, 2, &mut ws),
            Err(SolveError::RhsDimension {
                expected: 2 * n,
                found: n
            })
        );
        assert_eq!(
            sc.solve_refined(&fact, &a, &long, &mut x, 2, &mut ws),
            Err(SolveError::RhsDimension {
                expected: n,
                found: n + 1
            })
        );
        // A wrong-dimension matrix is rejected before any sweep runs.
        let other = laplace2d(7, 3);
        assert_eq!(
            sc.solve_refined(&fact, &other, &b, &mut x, 2, &mut ws),
            Err(SolveError::MatrixDimension {
                expected: n,
                found: other.n()
            })
        );
        // A failed call leaves the buffers usable for a correct one.
        sc.solve_into(&fact, &b, &mut x, &mut ws).unwrap();
    }

    #[test]
    fn zero_rhs_and_empty_system_solve_cleanly() {
        // k = 0: a valid empty request, not an assertion failure.
        let a = laplace2d(5, 2);
        let (sc, fact) = staged_default(&a);
        let mut ws = SolveWorkspace::new();
        sc.solve_many(&fact, &[], &mut [], 0, &mut ws).unwrap();
        // n = 0: an empty SPD system end to end — analyze, factor,
        // every solve entry point.
        let t = rlchol_sparse::TripletMatrix::new(0, 0);
        let empty = SymCsc::from_lower_triplets(&t).unwrap();
        let (sc0, fact0) = staged_default(&empty);
        sc0.solve_into(&fact0, &[], &mut [], &mut ws).unwrap();
        sc0.solve_many(&fact0, &[], &mut [], 3, &mut ws).unwrap();
        let r = sc0
            .solve_refined(&fact0, &empty, &[], &mut [], 2, &mut ws)
            .unwrap();
        assert_eq!(r, 0.0);
        let info = sc0.solve_info();
        assert_eq!(info.levels, 0);
        assert!(!info.level_set);
    }

    #[test]
    fn solve_info_reports_plan_and_forced_path() {
        let a = grid3d(6, 6, 5, Stencil::Star7, 1, 31);
        let mut sc = SymbolicCholesky::new(
            &a,
            &SolverOptions {
                solve_threads: 4,
                ..SolverOptions::default()
            },
        );
        let info = sc.solve_info();
        assert!(info.levels > 1);
        assert!(info.max_width > 1, "ND-ordered 3-D grid has level width");
        assert_eq!(info.threads, 4);
        assert!(
            info.level_set,
            "explicit threads > 1 force the level-set path"
        );
        sc.set_solve_threads(1);
        assert!(!sc.solve_info().level_set, "1 thread forces serial");
    }

    #[test]
    fn handle_is_send_sync_and_reports_lane_usage() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SymbolicCholesky>();

        let a = laplace2d(6, 2);
        let sc = SymbolicCholesky::new(
            &a,
            &SolverOptions {
                factor_lanes: 3,
                ..SolverOptions::default()
            },
        );
        assert_eq!(sc.factor_lanes(), 3);
        let f = sc.factor_with(&a).unwrap();
        let st = sc.lane_stats();
        assert_eq!(
            (st.cap, st.created, st.in_use, st.checkouts),
            (3, 1, 0, 1),
            "one serial call creates exactly one lane and returns it"
        );
        // Recycled storage is reused by the next factorization.
        let ptr = f.data().sn[0].as_ptr();
        sc.recycle(f);
        let f2 = sc.factor_with(&a).unwrap();
        assert_eq!(
            f2.data().sn[0].as_ptr(),
            ptr,
            "factor_with must pick up recycled storage"
        );
    }

    #[test]
    fn batch_factor_matches_serial_and_isolates_errors() {
        let a0 = laplace2d(9, 4);
        let mut sets: Vec<SymCsc> = (5..9).map(|s| laplace2d(9, s)).collect();
        // Same pattern, indefinite values in slot 2 only.
        let dpos = sets[2].colptr()[4];
        sets[2].values_mut()[dpos] = -40.0;
        let sc = SymbolicCholesky::new(
            &a0,
            &SolverOptions {
                factor_lanes: 2,
                ..SolverOptions::default()
            },
        );
        let refs: Vec<&SymCsc> = sets.iter().collect();
        let results = sc.batch_factor(&refs);
        assert_eq!(results.len(), sets.len());
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert!(
                    matches!(r, Err(FactorError::NotPositiveDefinite { .. })),
                    "indefinite slot must fail alone, got {r:?}"
                );
            } else {
                let fresh = CholeskySolver::factor(&sets[i], &SolverOptions::default()).unwrap();
                assert_eq!(
                    r.as_ref().unwrap().data(),
                    fresh.factor_data(),
                    "batch slot {i} differs from serial"
                );
            }
        }
        assert!(sc.lane_stats().peak_in_use <= 2, "lane cap respected");
        // An empty batch is a valid empty request.
        assert!(sc.batch_factor(&[]).is_empty());
    }

    #[test]
    fn memory_bytes_scales_with_lanes_and_covers_the_factor() {
        let a = grid3d(5, 4, 3, Stencil::Star7, 1, 2);
        let lanes = |n: usize| SolverOptions {
            factor_lanes: n,
            ..SolverOptions::default()
        };
        let one = SymbolicCholesky::new(&a, &lanes(1));
        let four = SymbolicCholesky::new(&a, &lanes(4));
        let base = one.memory_bytes();
        assert!(base > 0);
        // The per-lane estimate includes at least the lane's private
        // factor-ordered matrix copy.
        assert!(one.lane_memory_bytes() >= a.memory_bytes());
        // The estimate is linear in the lane cap beyond the shared part.
        assert_eq!(four.memory_bytes(), base + 3 * one.lane_memory_bytes());
        // It covers the real factor storage a lane ends up holding.
        let fact = one.factor_with(&a).unwrap();
        let stored: u64 = fact.data().sn.iter().map(|v| v.len() as u64 * 8).sum();
        assert!(
            one.lane_memory_bytes() >= stored,
            "estimate {} under-counts factor storage {stored}",
            one.lane_memory_bytes()
        );
    }

    #[test]
    fn per_request_ctl_overrides_handle_defaults() {
        let a = grid3d(4, 4, 3, Stencil::Star7, 1, 3);
        let sc = SymbolicCholesky::new(&a, &SolverOptions::default());
        // An already-expired per-request wall budget trips the first
        // checkpoint without touching the handle's (unlimited) default.
        let r = sc.factor_with_ctl(
            &a,
            Deadline::wall(std::time::Duration::ZERO),
            &CancelToken::new(),
        );
        assert!(
            matches!(r, Err(FactorError::DeadlineExceeded { .. })),
            "{r:?}"
        );
        assert!(sc.factor_with(&a).is_ok(), "handle default unaffected");
        // A per-request cancel token aborts only its own request.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        assert!(matches!(
            sc.factor_with_ctl(&a, Deadline::none(), &cancelled),
            Err(FactorError::Cancelled)
        ));
        let by_batch = sc.batch_factor_ctl(&[&a, &a], Deadline::none(), &cancelled);
        assert!(by_batch
            .iter()
            .all(|r| matches!(r, Err(FactorError::Cancelled))));
        assert!(sc.factor_with(&a).is_ok(), "handle token still open");
    }

    #[test]
    fn non_pd_refactor_reports_error_and_handle_recovers() {
        let a = laplace2d(7, 2);
        let (sc, mut fact) = staged_default(&a);
        // Same pattern, indefinite values: negate a diagonal entry.
        let mut bad = a.clone();
        let dpos = bad.colptr()[3];
        bad.values_mut()[dpos] = -50.0;
        assert!(matches!(
            sc.refactor(&mut fact, &bad),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
        // The failed refactor consumed the storage: the factorization is
        // invalidated (no stale data/info), not silently half-written.
        assert!(!fact.is_valid());
        assert!(fact.info().trace.is_none());
        // The handle stays usable: a good refactor matches one-shot.
        sc.refactor(&mut fact, &a).unwrap();
        assert!(fact.is_valid());
        let fresh = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        assert_eq!(fact.data(), fresh.factor_data());
    }
}
