//! The workspace lane pool behind a shared [`SymbolicCholesky`].
//!
//! A numeric factorization needs mutable engine resources — the
//! factor-ordered matrix whose values are overwritten per call, the
//! engines' scratch buffers, recycled factor storage. Historically one
//! [`EngineWorkspace`] lived behind a handle-wide mutex, so concurrent
//! `factor_with` calls on a shared handle serialized completely. This
//! module replaces that lock with a pool of **lanes**: each lane is an
//! independent `(EngineWorkspace, factor-ordered matrix)` pair, so up to
//! `cap` factorizations of *different value sets* run concurrently on
//! one symbolic structure.
//!
//! * **Sizing.** The cap follows the workspace-wide precedence rule:
//!   an explicit [`SolverOptions::factor_lanes`](crate::SolverOptions)
//!   wins, else the `RLCHOL_FACTOR_LANES` environment variable, else the
//!   pool default ([`rlchol_dense::pool::default_threads`]). Resolved
//!   once at handle construction — environment reads allocate, and the
//!   factorization hot path must not.
//! * **Lazy growth, LIFO recycling.** Lanes are created on demand (a
//!   handle used from one thread ever pays for one lane) and returned to
//!   a free list on drop of the checkout guard; the most recently used
//!   lane — with its cache-warm scratch — is handed out first. When all
//!   `cap` lanes are in flight, [`checkout`](WorkspaceLanes::checkout)
//!   blocks until one returns — except on a thread that already holds a
//!   lane (a nested factorization picked up while an engine waits on
//!   the thread pool), which gets a temporary beyond-cap *overflow*
//!   lane instead, because blocking there could deadlock on a lane held
//!   further down its own stack. A lane is always returned, including
//!   on error and panic paths (the guard's `Drop` does it), so an
//!   indefinite value set in one lane never wedges the others.
//! * **Per-lane GPU stream options.** Each lane's workspace owns its own
//!   [`GpuOptions`] with the stream-pair count, assignment policy,
//!   retirement mode and lookahead pre-resolved
//!   ([`GpuOptions::resolved_streams`] /
//!   [`resolved_assign`](GpuOptions::resolved_assign) /
//!   [`resolved_retire`](GpuOptions::resolved_retire) /
//!   [`resolved_lookahead`](GpuOptions::resolved_lookahead)), so
//!   concurrent pipelined-engine factorizations each drive their own
//!   full set of simulated compute/copy pairs and never re-read
//!   `RLCHOL_STREAMS` / `RLCHOL_STREAM_ASSIGN` / `RLCHOL_RETIRE` /
//!   `RLCHOL_LOOKAHEAD` mid-flight. Staged lanes also enable **device
//!   residency**: the pipelined engines keep their simulated device
//!   session (streams, per-lane buffers, uploaded pattern metadata)
//!   alive inside the lane between same-pattern refactorizations.
//! * **Shared recycle bins.** Factor storage and trace buffers returned
//!   through [`SymbolicCholesky::recycle`](crate::SymbolicCholesky::recycle)
//!   land in pool-wide bins (bounded by the lane cap) and are restocked
//!   into whichever lane is checked out next, so a
//!   `factor_with`/`recycle` serving loop allocates nothing after
//!   warm-up — the `factor_with` analogue of the zero-alloc solves.

use std::cell::Cell;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;

use crate::engine::GpuOptions;
use crate::error::FactorError;
use crate::registry::EngineWorkspace;
use crate::storage::FactorData;

/// One independent factorization lane: the engine resources plus the
/// factor-ordered matrix template whose values are overwritten through
/// the handle's value map on every (re)factorization.
pub(crate) struct Lane {
    /// Engine-resolved resources (scratch, recycled storage, per-lane
    /// GPU stream options).
    pub(crate) ws: EngineWorkspace,
    /// Structure of `P A Pᵀ` in factor order, private to this lane.
    pub(crate) a_fact: SymCsc,
}

/// Counters describing how a handle's lane pool has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Maximum concurrent factorizations the pool admits.
    pub cap: usize,
    /// Lanes created so far (lazily grown, never beyond `cap`;
    /// temporary overflow lanes are counted separately).
    pub created: usize,
    /// Lanes checked out right now (may briefly exceed `cap` when
    /// overflow lanes are in flight).
    pub in_use: usize,
    /// High-water mark of concurrently checked-out lanes.
    pub peak_in_use: usize,
    /// Total checkouts served.
    pub checkouts: u64,
    /// Checkouts that had to block for a lane to come back (counted
    /// once per blocked checkout, however many wakeups it took).
    pub contended: u64,
    /// Temporary beyond-cap lanes created for nested checkouts — a
    /// thread already holding a lane must never block on the pool (see
    /// [`HELD_LANES`]); dropped on return instead of joining the free
    /// list.
    pub overflow: u64,
    /// Lanes torn down instead of rejoining the free list because the
    /// factorization they served ended in a device fault or a panic.
    /// The cap slot is released, so the next checkout builds a fresh
    /// lane — possibly-poisoned scratch never serves another caller.
    pub quarantined: u64,
}

thread_local! {
    /// Lanes currently held by this OS thread, across **all** handles.
    /// A nested checkout happens when the engine inside `factor_with`
    /// waits on `rlchol_dense::pool` and the waiting thread pops another
    /// queued factorization (e.g. a sibling `batch_factor` task) to help
    /// out: blocking on the condvar there could deadlock, because the
    /// lane the pool is waiting for is held further down this very
    /// stack. A positive count therefore routes checkout to a temporary
    /// overflow lane instead of the wait loop.
    static HELD_LANES: Cell<usize> = const { Cell::new(0) };
}

struct LaneState {
    /// Returned lanes, most recently used last (LIFO handout).
    free: Vec<Lane>,
    /// Returned overflow lanes, cached (bounded by the cap) so repeated
    /// nested checkouts under sustained work-stealing contention reuse
    /// a built lane instead of re-cloning the template each time. Kept
    /// separate from `free`: these never satisfy a blocked waiter (no
    /// cap slot backs them).
    overflow_free: Vec<Lane>,
    created: usize,
    in_use: usize,
    peak_in_use: usize,
    checkouts: u64,
    contended: u64,
    overflow: u64,
    quarantined: u64,
    /// Factor storage returned via `recycle`, restocked at checkout.
    factors: Vec<FactorData>,
    /// Trace buffers returned via `recycle`, restocked at checkout.
    traces: Vec<Vec<TraceOp>>,
}

/// The pool of [`Lane`]s owned by a
/// [`SymbolicCholesky`](crate::SymbolicCholesky) handle.
pub(crate) struct WorkspaceLanes {
    cap: usize,
    /// Lanes for the task-parallel CPU engines inside one factorization.
    threads: usize,
    /// The per-lane GPU options (streams, assignment and fault plan
    /// pre-resolved).
    gpu: GpuOptions,
    /// Pristine factor-ordered structure new lanes are cloned from.
    template: SymCsc,
    /// How long a blocked checkout waits before giving up with
    /// [`FactorError::LanesExhausted`].
    wait: Duration,
    state: Mutex<LaneState>,
    /// Signalled when a lane returns to the free list (or a cap slot is
    /// released by quarantine).
    returned: Condvar,
}

/// Lane cap from the environment: `RLCHOL_FACTOR_LANES` when set to a
/// positive integer.
fn env_factor_lanes() -> Option<usize> {
    crate::engine::env_positive("RLCHOL_FACTOR_LANES")
}

/// Checkout wait budget from the environment: `RLCHOL_LANE_WAIT_MS`
/// when set to a positive integer (milliseconds).
fn env_lane_wait() -> Option<Duration> {
    crate::engine::env_positive("RLCHOL_LANE_WAIT_MS").map(|ms| Duration::from_millis(ms as u64))
}

/// Default checkout wait budget: long enough that a healthy pool under
/// momentary load never trips it, short enough that a wedged lane set
/// surfaces as a typed error rather than a hang.
const DEFAULT_LANE_WAIT: Duration = Duration::from_secs(30);

impl WorkspaceLanes {
    /// Builds the pool. `cap_option` is
    /// [`SolverOptions::factor_lanes`](crate::SolverOptions): `0` defers
    /// to `RLCHOL_FACTOR_LANES`, then the pool default. No lane is
    /// created yet — the first checkout does that.
    pub(crate) fn new(
        cap_option: usize,
        threads: usize,
        gpu: GpuOptions,
        template: SymCsc,
        wait_option: Option<Duration>,
    ) -> Self {
        let cap = if cap_option > 0 {
            cap_option
        } else {
            env_factor_lanes().unwrap_or_else(rlchol_dense::pool::default_threads)
        }
        .max(1);
        let wait = wait_option
            .or_else(env_lane_wait)
            .unwrap_or(DEFAULT_LANE_WAIT);
        // Pre-resolve stream options and the fault plan once so every
        // lane's engine runs with explicit, stable settings (no env
        // reads per call, and `RLCHOL_FAULTS` cannot change mid-handle).
        let streams = gpu.resolved_streams();
        let assign = gpu.resolved_assign();
        let retire = gpu.resolved_retire();
        let lookahead = gpu.resolved_lookahead();
        let faults = gpu.resolved_faults();
        let mut gpu = gpu
            .with_streams(streams)
            .with_assign(assign)
            .with_retire(retire)
            .with_lookahead(lookahead);
        gpu.faults = faults;
        WorkspaceLanes {
            cap,
            threads,
            gpu,
            template,
            wait,
            state: Mutex::new(LaneState {
                free: Vec::new(),
                overflow_free: Vec::new(),
                created: 0,
                in_use: 0,
                peak_in_use: 0,
                checkouts: 0,
                contended: 0,
                overflow: 0,
                quarantined: 0,
                factors: Vec::new(),
                traces: Vec::new(),
            }),
            returned: Condvar::new(),
        }
    }

    /// Maximum concurrent factorizations.
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }

    /// Heap bytes of one lane's private factor-ordered matrix template
    /// (every lane clones it at construction).
    pub(crate) fn template_bytes(&self) -> u64 {
        self.template.memory_bytes()
    }

    /// Usage counters (cheap snapshot under the pool lock).
    pub(crate) fn stats(&self) -> LaneStats {
        let st = self.state.lock().unwrap();
        LaneStats {
            cap: self.cap,
            created: st.created,
            in_use: st.in_use,
            peak_in_use: st.peak_in_use,
            checkouts: st.checkouts,
            contended: st.contended,
            overflow: st.overflow,
            quarantined: st.quarantined,
        }
    }

    /// Checks a lane out: a free lane if one is ready, a newly created
    /// one while the pool is below its cap, otherwise blocks until a
    /// lane returns — unless this thread already holds a lane (nested
    /// checkout via pool work-stealing), where blocking could deadlock
    /// and a temporary overflow lane is built instead. A blocked
    /// checkout waits at most the pool's wait budget
    /// (`SolverOptions::lane_wait` / `RLCHOL_LANE_WAIT_MS` / 30 s)
    /// before giving up with [`FactorError::LanesExhausted`] — the
    /// admission-control signal that sheds load instead of queueing it
    /// forever. The returned guard hands the lane back on drop (also on
    /// panic), so a failed factorization cannot leak a lane.
    pub(crate) fn checkout(&self) -> Result<LaneGuard<'_>, FactorError> {
        let nested = HELD_LANES.with(|h| h.get()) > 0;
        let mut overflow = false;
        let mut st = self.state.lock().unwrap();
        st.checkouts += 1;
        let mut wait_started: Option<Instant> = None;
        let mut lane = loop {
            if let Some(lane) = st.free.pop() {
                break Some(lane);
            }
            if st.created < self.cap {
                st.created += 1;
                break None; // reserved a cap slot; build outside the lock
            }
            if nested {
                // Waiting here could wait on a lane held further down
                // this thread's own stack — never block, overflow.
                overflow = true;
                st.overflow += 1;
                break st.overflow_free.pop();
            }
            let started = *wait_started.get_or_insert_with(|| {
                st.contended += 1;
                Instant::now()
            });
            let elapsed = started.elapsed();
            let Some(remaining) = self.wait.checked_sub(elapsed) else {
                return Err(FactorError::LanesExhausted {
                    cap: self.cap,
                    waited: elapsed,
                });
            };
            st = self.returned.wait_timeout(st, remaining).unwrap().0;
        };
        if lane.is_none() {
            // Build the lane outside the lock: cloning the template of a
            // large pattern must not stall concurrent checkouts/returns.
            drop(st);
            // Staged lanes live across factorizations, so the pipelined
            // engines may keep their simulated device session resident
            // between same-pattern refactor calls.
            let mut ws = EngineWorkspace::new(self.threads, self.gpu.clone());
            ws.residency_enabled = true;
            let fresh = Lane {
                ws,
                a_fact: self.template.clone(),
            };
            st = self.state.lock().unwrap();
            lane = Some(fresh);
        }
        let mut lane = lane.expect("lane obtained above");
        // Restock from the shared recycle bins so a factor_with/recycle
        // loop reuses storage no matter which lane serves it.
        if !lane.ws.has_recycled_factor() {
            if let Some(data) = st.factors.pop() {
                lane.ws.recycle(data);
            }
        }
        if lane.ws.trace_ops.capacity() == 0 {
            if let Some(ops) = st.traces.pop() {
                lane.ws.trace_ops = ops;
            }
        }
        st.in_use += 1;
        st.peak_in_use = st.peak_in_use.max(st.in_use);
        drop(st);
        HELD_LANES.with(|h| h.set(h.get() + 1));
        Ok(LaneGuard {
            lanes: self,
            lane: Some(lane),
            overflow,
            quarantine: false,
        })
    }

    /// Returns factor storage and a trace buffer to the shared bins
    /// (bounded by the lane cap; surplus is dropped).
    pub(crate) fn recycle_parts(&self, data: FactorData, trace_ops: Option<Vec<TraceOp>>) {
        let mut st = self.state.lock().unwrap();
        if !data.sn.is_empty() && st.factors.len() < self.cap {
            st.factors.push(data);
        }
        if let Some(ops) = trace_ops {
            if ops.capacity() > 0 && st.traces.len() < self.cap {
                st.traces.push(ops);
            }
        }
    }

    fn hand_back(&self, lane: Lane, overflow: bool, quarantine: bool) {
        HELD_LANES.with(|h| h.set(h.get() - 1));
        let mut st: MutexGuard<'_, LaneState> = self.state.lock().unwrap();
        st.in_use -= 1;
        if quarantine {
            // The factorization this lane served ended in a device
            // fault or a panic: its scratch, recycled storage and
            // simulated device state are suspect. Tear the lane down
            // instead of recycling it; a cap-backed slot is released so
            // the next checkout (or a blocked waiter) builds a fresh
            // lane from the pristine template.
            st.quarantined += 1;
            if !overflow {
                st.created -= 1;
            }
            drop(st);
            drop(lane);
            if !overflow {
                self.returned.notify_one();
            }
            return;
        }
        if overflow {
            // Beyond-cap lane: cache it for the next nested checkout
            // (bounded), salvaging its recyclables when the cache is
            // full. Never joins `free` and never wakes a waiter — no
            // cap slot backs it.
            if st.overflow_free.len() < self.cap {
                st.overflow_free.push(lane);
            } else {
                let Lane { mut ws, .. } = lane;
                if let Some(data) = ws.take_recycled() {
                    if st.factors.len() < self.cap {
                        st.factors.push(data);
                    }
                }
                let ops = std::mem::take(&mut ws.trace_ops);
                if ops.capacity() > 0 && st.traces.len() < self.cap {
                    st.traces.push(ops);
                }
            }
        } else {
            st.free.push(lane);
            drop(st);
            self.returned.notify_one();
        }
    }
}

/// Exclusive access to one checked-out [`Lane`]; returns it on drop.
pub(crate) struct LaneGuard<'a> {
    lanes: &'a WorkspaceLanes,
    lane: Option<Lane>,
    /// True for a temporary beyond-cap lane (nested checkout).
    overflow: bool,
    /// Set when the factorization this lane served ended in a device
    /// fault — the lane is torn down on drop instead of recycled.
    quarantine: bool,
}

impl LaneGuard<'_> {
    pub(crate) fn lane(&mut self) -> &mut Lane {
        self.lane.as_mut().expect("lane present until drop")
    }

    /// Marks the lane for teardown on drop: its scratch and simulated
    /// device state are suspect after a device fault and must not serve
    /// another factorization.
    pub(crate) fn quarantine(&mut self) {
        self.quarantine = true;
    }
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        if let Some(lane) = self.lane.take() {
            // A panic unwinding through the guard quarantines the lane
            // too: the engine stopped mid-write, so the lane's factor
            // storage and scratch are in an undefined state.
            let quarantine = self.quarantine || std::thread::panicking();
            self.lanes.hand_back(lane, self.overflow, quarantine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::laplace2d;

    fn pool(cap: usize) -> WorkspaceLanes {
        WorkspaceLanes::new(
            cap,
            1,
            GpuOptions::with_threshold(usize::MAX),
            laplace2d(4, 3),
            None,
        )
    }

    #[test]
    fn lanes_grow_lazily_and_recycle_lifo() {
        let lanes = pool(3);
        assert_eq!(lanes.stats().created, 0, "no lane before first checkout");
        {
            let mut g1 = lanes.checkout().unwrap();
            let mut g2 = lanes.checkout().unwrap();
            g1.lane().ws.lanes = 11; // tag the lanes to observe reuse
            g2.lane().ws.lanes = 22;
            assert_eq!(lanes.stats().created, 2);
            assert_eq!(lanes.stats().in_use, 2);
        }
        assert_eq!(lanes.stats().in_use, 0);
        // LIFO: the last lane returned comes back first (guards drop in
        // reverse declaration order, so g1's lane returned last).
        let mut g = lanes.checkout().unwrap();
        assert_eq!(g.lane().ws.lanes, 11);
        let st = lanes.stats();
        assert_eq!((st.created, st.checkouts, st.contended), (2, 3, 0));
    }

    #[test]
    fn checkout_blocks_at_cap_until_a_lane_returns() {
        let lanes = std::sync::Arc::new(pool(1));
        let guard = lanes.checkout().unwrap();
        let l2 = std::sync::Arc::clone(&lanes);
        let waiter = std::thread::spawn(move || {
            let _g = l2.checkout().unwrap(); // must block until the guard drops
            l2.stats().peak_in_use
        });
        // Give the waiter time to reach the condvar, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard);
        assert_eq!(waiter.join().unwrap(), 1, "cap 1 never admits 2 lanes");
        let st = lanes.stats();
        assert_eq!(st.created, 1);
        assert!(st.contended >= 1, "the second checkout had to wait");
    }

    #[test]
    fn exhausted_checkout_times_out_with_a_typed_error() {
        let lanes = WorkspaceLanes::new(
            1,
            1,
            GpuOptions::with_threshold(usize::MAX),
            laplace2d(4, 3),
            Some(Duration::from_millis(30)),
        );
        let _held = lanes.checkout().unwrap();
        // Checkout from a fresh thread (no nested-overflow escape
        // hatch): it must give up after the wait budget, not hang.
        let err = std::thread::scope(|s| {
            s.spawn(|| lanes.checkout().map(|_| ()).unwrap_err())
                .join()
                .unwrap()
        });
        match err {
            FactorError::LanesExhausted { cap, waited } => {
                assert_eq!(cap, 1);
                assert!(waited >= Duration::from_millis(30), "waited {waited:?}");
            }
            other => panic!("expected LanesExhausted, got {other:?}"),
        }
        assert_eq!(lanes.stats().contended, 1);
    }

    #[test]
    fn quarantine_tears_the_lane_down_and_releases_the_cap_slot() {
        let lanes = pool(1);
        {
            let mut g = lanes.checkout().unwrap();
            g.lane().ws.lanes = 13; // tag: this lane must never come back
            g.quarantine();
        }
        let st = lanes.stats();
        assert_eq!(
            (st.created, st.in_use, st.quarantined),
            (0, 0, 1),
            "quarantine releases the cap slot instead of freeing the lane"
        );
        // The next checkout builds a fresh lane from the template.
        let mut g = lanes.checkout().unwrap();
        assert_ne!(g.lane().ws.lanes, 13, "quarantined lane must not return");
        assert_eq!(lanes.stats().created, 1);
    }

    #[test]
    fn panic_unwinding_through_the_guard_quarantines_the_lane() {
        let lanes = std::sync::Arc::new(pool(1));
        let l2 = std::sync::Arc::clone(&lanes);
        let joined = std::thread::spawn(move || {
            let mut g = l2.checkout().unwrap();
            g.lane().ws.lanes = 99;
            panic!("engine blew up mid-factorization");
        })
        .join();
        assert!(joined.is_err(), "the spawned thread must have panicked");
        let st = lanes.stats();
        assert_eq!((st.created, st.in_use, st.quarantined), (0, 0, 1));
        let mut g = lanes.checkout().unwrap();
        assert_ne!(g.lane().ws.lanes, 99, "poisoned lane must not be reused");
    }

    #[test]
    fn nested_checkout_overflows_instead_of_deadlocking() {
        // A thread that already holds a lane (an engine waiting on the
        // thread pool popped another queued factorization) must never
        // block on the condvar: with cap 1 that wait would be on the
        // lane held further down its own stack. It gets a temporary
        // overflow lane instead — this test deadlocks if it regresses.
        let lanes = pool(1);
        let outer = lanes.checkout().unwrap();
        let mut inner = lanes.checkout().unwrap();
        inner.lane().ws.lanes = 77; // tag the overflow lane
        let st = lanes.stats();
        assert_eq!((st.created, st.overflow, st.in_use), (1, 1, 2));
        drop(inner);
        drop(outer);
        let st = lanes.stats();
        assert_eq!((st.created, st.in_use), (1, 0));
        {
            // The overflow lane never joins the cap-backed free list; it
            // is cached separately for the next nested checkout.
            let inner_st = lanes.state.lock().unwrap();
            let lens = (inner_st.free.len(), inner_st.overflow_free.len());
            drop(inner_st);
            assert_eq!(lens, (1, 1));
        }
        // A later nested checkout reuses the cached lane instead of
        // cloning the template again.
        let _outer = lanes.checkout().unwrap();
        let mut inner = lanes.checkout().unwrap();
        assert_eq!(inner.lane().ws.lanes, 77, "cached overflow lane reused");
        assert_eq!(lanes.stats().overflow, 2);
    }

    #[test]
    fn recycle_bins_are_bounded_by_cap_and_restock_lanes() {
        let lanes = pool(1);
        let data = FactorData {
            sn: vec![vec![0.0; 4]],
        };
        lanes.recycle_parts(data.clone(), Some(vec![TraceOp::Potrf { n: 2 }]));
        // Cap 1: a second recycle is dropped, not hoarded.
        lanes.recycle_parts(data.clone(), Some(vec![TraceOp::Potrf { n: 3 }]));
        {
            let st = lanes.state.lock().unwrap();
            assert_eq!(st.factors.len(), 1);
            assert_eq!(st.traces.len(), 1);
        }
        // Checkout moves the binned storage into the lane's workspace.
        let mut g = lanes.checkout().unwrap();
        assert!(g.lane().ws.has_recycled_factor());
        assert!(g.lane().ws.trace_ops.capacity() > 0);
        drop(g);
        let st = lanes.state.lock().unwrap();
        assert!(st.factors.is_empty() && st.traces.is_empty());
    }
}
