//! Minimal hand-rolled JSON emission — the offline tree has no serde,
//! and the service wire protocol, the CLI's `--json` mode, and the
//! bench bins must all speak **one schema** for a factorization /
//! solve report. Everything here writes strict JSON (RFC 8259): keys
//! and strings are escaped, non-finite floats become `null` (JSON has
//! no NaN/Inf), and `f64` values print in shortest round-trip form.
//!
//! [`JsonObj`] is a consuming builder:
//!
//! ```
//! use rlchol_core::json::JsonObj;
//! let s = JsonObj::new().str("op", "factor").u64("n", 100).finish();
//! assert_eq!(s, r#"{"op":"factor","n":100}"#);
//! ```
//!
//! [`factor_info_json`] / [`solve_info_json`] are the shared report
//! serializers.

use crate::registry::FactorInfo;
use crate::solve::SolveInfo;

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite `f64` in shortest round-trip form; NaN/Inf become `null`
/// (JSON numbers cannot represent them).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// A JSON array from already-serialized element strings.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Consuming JSON object builder. Field order is insertion order;
/// values are emitted exactly once with no trailing separators, so the
/// output is always valid JSON.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// An empty object (`{}` until fields are added).
    pub fn new() -> Self {
        JsonObj { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// A field whose value is already-serialized JSON (nested object,
    /// array, or literal).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// A string field (escaped).
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// An unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// A float field (`null` when non-finite).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&num(v));
        self
    }

    /// An optional float field (`null` when absent or non-finite).
    pub fn opt_f64(self, k: &str, v: Option<f64>) -> Self {
        match v {
            Some(v) => self.f64(k, v),
            None => self.raw(k, "null"),
        }
    }

    /// A boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Closes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// The uniform factorization report as JSON — one schema shared by the
/// CLI's `factor --json`, the service's response frames, and any script
/// consuming either. The operation trace is omitted (it is a replay
/// artifact, not a report).
pub fn factor_info_json(info: &FactorInfo) -> String {
    let gpu = match &info.gpu {
        Some(stats) => JsonObj::new()
            .u64("kernel_launches", stats.kernel_launches)
            .u64("transfer_bytes", stats.total_transfer_bytes())
            .u64("peak_bytes", stats.peak_bytes)
            .finish(),
        None => "null".to_string(),
    };
    let retire = match info.retire {
        Some(mode) => format!("\"{}\"", mode.name()),
        None => "null".to_string(),
    };
    let recovery = array(
        info.recovery
            .iter()
            .map(|event| format!("\"{}\"", escape(&event.to_string()))),
    );
    JsonObj::new()
        .f64("wall_ms", info.wall.as_secs_f64() * 1e3)
        .opt_f64("sim_seconds", info.sim_seconds)
        .u64("sn_on_gpu", info.sn_on_gpu as u64)
        .u64("streams_used", info.streams_used as u64)
        .raw("retire", &retire)
        .u64("lookahead", info.lookahead as u64)
        .u64("transfers_saved", info.transfers_saved)
        .raw("gpu", &gpu)
        .raw("recovery", &recovery)
        .finish()
}

/// The per-stage analyze breakdown
/// ([`AnalyzeBreakdown`](crate::AnalyzeBreakdown)) as JSON — one schema
/// shared by the CLI's `analyze --json` and the service's cache-miss
/// metrics.
pub fn analyze_breakdown_json(b: &crate::AnalyzeBreakdown) -> String {
    JsonObj::new()
        .u64("threads", b.threads as u64)
        .f64("etree_ms", b.etree.as_secs_f64() * 1e3)
        .f64("colcount_ms", b.colcount.as_secs_f64() * 1e3)
        .f64("merge_ms", b.merge.as_secs_f64() * 1e3)
        .f64("relind_ms", b.relind.as_secs_f64() * 1e3)
        .f64("solve_plan_ms", b.solve_plan.as_secs_f64() * 1e3)
        .f64("value_map_ms", b.value_map.as_secs_f64() * 1e3)
        .f64("total_ms", b.total().as_secs_f64() * 1e3)
        .finish()
}

/// The solve-side report ([`SolveInfo`]) as JSON — plan shape plus the
/// resolved dispatch path.
pub fn solve_info_json(info: &SolveInfo) -> String {
    JsonObj::new()
        .u64("levels", info.levels as u64)
        .u64("max_width", info.max_width as u64)
        .u64("threads", info.threads as u64)
        .bool("level_set", info.level_set)
        .bool("async_dispatch", info.async_dispatch)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.1), "0.1");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        let v: f64 = 0.1 + 0.2;
        assert_eq!(num(v).parse::<f64>().unwrap(), v, "shortest round-trip");
    }

    #[test]
    fn object_builder_emits_valid_field_sequences() {
        assert_eq!(JsonObj::new().finish(), "{}");
        let s = JsonObj::new()
            .str("a", "x\"y")
            .u64("b", 7)
            .bool("c", false)
            .opt_f64("d", None)
            .raw("e", "[1,2]")
            .finish();
        assert_eq!(s, r#"{"a":"x\"y","b":7,"c":false,"d":null,"e":[1,2]}"#);
        assert_eq!(array(vec!["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn factor_info_serializes_cpu_and_recovery_shape() {
        let info = FactorInfo {
            wall: Duration::from_millis(2),
            ..FactorInfo::default()
        };
        let s = factor_info_json(&info);
        assert!(s.contains("\"wall_ms\":2"), "{s}");
        assert!(s.contains("\"sim_seconds\":null"), "{s}");
        assert!(s.contains("\"gpu\":null"), "{s}");
        assert!(s.contains("\"recovery\":[]"), "{s}");
        assert!(s.contains("\"retire\":null"), "{s}");
    }
}
