//! End-to-end solver pipeline: ordering → symbolic → numeric → solve.
//!
//! [`CholeskySolver`] is the one-shot convenience entry point: it runs
//! [`CholeskySolver::analyze`] (ordering, symbolic analysis, engine
//! resolution — producing a [`SymbolicCholesky`] handle) and
//! [`SymbolicCholesky::factor_with`] in one call, and keeps a reusable
//! [`SolveWorkspace`] so its permutation-transparent solves allocate
//! only their output vectors. Workloads that re-factor a fixed pattern
//! with new values should hold the [`SymbolicCholesky`] handle directly
//! and use `factor_with`/`refactor`/`solve_into` — see
//! [`crate::staged`].

use rlchol_ordering::OrderingMethod;
use rlchol_sparse::{Permutation, SymCsc};
use rlchol_symbolic::{SymbolicFactor, SymbolicOptions};

use std::sync::Mutex;

use crate::engine::{GpuOptions, Method};
use crate::error::FactorError;
use crate::registry::FactorInfo;
use crate::staged::{Factorization, SolveWorkspace, SymbolicCholesky};
use crate::storage::FactorData;

/// Options for [`CholeskySolver::factor`] / [`CholeskySolver::analyze`].
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Fill-reducing ordering (paper: METIS nested dissection).
    pub ordering: OrderingMethod,
    /// Symbolic pipeline options (merging, partition refinement).
    pub symbolic: SymbolicOptions,
    /// Numeric engine.
    pub method: Method,
    /// GPU engine options (ignored by the CPU methods).
    pub gpu: GpuOptions,
    /// Lanes for the task-parallel CPU engines ([`Method::RlCpuPar`],
    /// [`Method::RlbCpuPar`]); `0` means `RLCHOL_THREADS` / available
    /// parallelism. Ignored by the serial and GPU methods.
    pub threads: usize,
    /// Lanes for the level-set (tree-parallel) triangular solves. `0`
    /// means automatic: `RLCHOL_SOLVE_THREADS` if set, else the pool
    /// default with a small-system serial cutoff. `1` forces the serial
    /// sweeps, `> 1` forces the level-set path whenever the elimination
    /// tree has level width. Both paths produce bit-identical solutions.
    pub solve_threads: usize,
    /// Workspace lanes of the staged handle: how many `factor_with` /
    /// `refactor` calls may run **concurrently** on one shared
    /// [`SymbolicCholesky`] (each lane owns an independent engine
    /// workspace; lanes are created lazily, so unused capacity costs
    /// nothing). `0` means automatic: `RLCHOL_FACTOR_LANES` if set, else
    /// the pool default. The lane count never affects results — every
    /// lane's factor is bit-identical to the serial path.
    pub factor_lanes: usize,
    /// Lanes for the thread-parallel symbolic analysis (column counts,
    /// relative indices, solve plan, value map). `0` means automatic:
    /// `RLCHOL_ANALYZE_THREADS` if set, else the pool default with a
    /// small-system serial cutoff. `1` forces the serial pipeline,
    /// `> 1` forces the parallel one. The analysis is bit-identical at
    /// every lane count — only the analyze wall clock changes.
    pub analyze_threads: usize,
    /// Engines to degrade to (in order) when the primary engine fails
    /// with a device-side error. Empty (the default) surfaces the typed
    /// error instead; [`FallbackChain::recommended`] builds the
    /// stay-in-family GPU → CPU path.
    pub fallback: crate::resilience::FallbackChain,
    /// Bounded retries for device faults marked transient (default:
    /// none).
    pub retry: crate::resilience::RetryPolicy,
    /// Wall-clock / simulated-seconds budget per factorization (default:
    /// unlimited). Expiry surfaces as
    /// [`FactorError::DeadlineExceeded`](crate::FactorError::DeadlineExceeded).
    pub deadline: crate::resilience::Deadline,
    /// Deterministic fault-injection plan for the simulated device
    /// (testing). `None` defers to [`GpuOptions::faults`], then the
    /// `RLCHOL_FAULTS` environment variable, resolved once at handle
    /// construction.
    pub faults: Option<rlchol_gpu::FaultPlan>,
    /// How long a `factor_with`/`refactor` call may wait for a free
    /// workspace lane before failing with
    /// [`FactorError::LanesExhausted`](crate::FactorError::LanesExhausted).
    /// `None` resolves to `RLCHOL_LANE_WAIT_MS`, else a generous 30 s —
    /// long enough for any real factorization to return a lane, short
    /// enough that a wedged lane cannot hang a service forever.
    pub lane_wait: Option<std::time::Duration>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            ordering: OrderingMethod::NestedDissection,
            symbolic: SymbolicOptions::default(),
            method: Method::RlCpu,
            gpu: GpuOptions::with_threshold(usize::MAX),
            threads: 0,
            solve_threads: 0,
            factor_lanes: 0,
            analyze_threads: 0,
            fallback: crate::resilience::FallbackChain::none(),
            retry: crate::resilience::RetryPolicy::default(),
            deadline: crate::resilience::Deadline::none(),
            faults: None,
            lane_wait: None,
        }
    }
}

/// A factored SPD system ready for repeated solves.
///
/// Thin wrapper over the staged path: holds the [`SymbolicCholesky`]
/// handle, one [`Factorization`], and a reusable [`SolveWorkspace`].
pub struct CholeskySolver {
    staged: SymbolicCholesky,
    fact: Factorization,
    solve_ws: Mutex<SolveWorkspace>,
    /// Simulated seconds of the factorization (GPU engines only).
    pub sim_seconds: Option<f64>,
    /// Supernodes computed on the (simulated) GPU.
    pub sn_on_gpu: usize,
}

impl CholeskySolver {
    /// Orders and analyzes `a`, returning the staged handle for
    /// analyze-once / factor-many workloads. Runs no numeric
    /// factorization.
    pub fn analyze(a: &SymCsc, opts: &SolverOptions) -> SymbolicCholesky {
        SymbolicCholesky::new(a, opts)
    }

    /// Orders, analyzes and factors `a` in one shot.
    pub fn factor(a: &SymCsc, opts: &SolverOptions) -> Result<Self, FactorError> {
        let staged = Self::analyze(a, opts);
        let fact = staged.factor_with(a)?;
        Ok(CholeskySolver {
            sim_seconds: fact.info().sim_seconds,
            sn_on_gpu: fact.info().sn_on_gpu,
            staged,
            fact,
            solve_ws: Mutex::new(SolveWorkspace::new()),
        })
    }

    /// The staged handle (permutation, symbolic factor, engine).
    pub fn staged(&self) -> &SymbolicCholesky {
        &self.staged
    }

    /// The held factorization.
    pub fn factorization(&self) -> &Factorization {
        &self.fact
    }

    /// The engine's uniform report for this factorization.
    pub fn info(&self) -> &FactorInfo {
        self.fact.info()
    }

    /// The symbolic factor (structure, counts, supernodes).
    pub fn symbolic(&self) -> &SymbolicFactor {
        self.staged.symbolic()
    }

    /// The numeric factor values.
    pub fn factor_data(&self) -> &FactorData {
        self.fact.data()
    }

    /// The composed permutation from the input ordering to factor order.
    pub fn permutation(&self) -> &Permutation {
        self.staged.permutation()
    }

    /// Factor nonzeros (including amalgamation padding).
    pub fn factor_nnz(&self) -> u64 {
        self.staged.factor_nnz()
    }

    /// Solves `A x = b` with `b` in the original ordering. Internal
    /// scratch comes from the solver's reusable workspace; only the
    /// returned vector is allocated.
    ///
    /// # Panics
    /// When `b.len()` does not match the system dimension — use
    /// [`SymbolicCholesky::solve_into`] for the typed
    /// [`SolveError`](crate::error::SolveError) instead.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; b.len()];
        let result = match self.solve_ws.try_lock() {
            Ok(mut ws) => self.staged.solve_into(&self.fact, b, &mut x, &mut ws),
            // Contended (or poisoned) workspace: solve with a local one
            // — the cost of the old allocating path, no serialization.
            Err(_) => {
                let mut ws = SolveWorkspace::new();
                self.staged.solve_into(&self.fact, b, &mut x, &mut ws)
            }
        };
        result.unwrap_or_else(|e| panic!("{e}"));
        x
    }

    /// Solves with iterative refinement; returns `(x, final_residual_inf)`.
    ///
    /// # Panics
    /// When `b.len()` does not match the system dimension — use
    /// [`SymbolicCholesky::solve_refined`] for the typed
    /// [`SolveError`](crate::error::SolveError) instead.
    pub fn solve_refined(&self, a: &SymCsc, b: &[f64], max_iters: usize) -> (Vec<f64>, f64) {
        let mut x = vec![0.0; b.len()];
        let resid = match self.solve_ws.try_lock() {
            Ok(mut ws) => self
                .staged
                .solve_refined(&self.fact, a, b, &mut x, max_iters, &mut ws),
            Err(_) => {
                let mut ws = SolveWorkspace::new();
                self.staged
                    .solve_refined(&self.fact, a, b, &mut x, max_iters, &mut ws)
            }
        };
        (x, resid.unwrap_or_else(|e| panic!("{e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};

    fn check_pipeline(method: Method, gpu: GpuOptions) {
        let a = grid3d(5, 5, 4, Stencil::Star7, 1, 77);
        let opts = SolverOptions {
            method,
            gpu,
            ..SolverOptions::default()
        };
        let solver = CholeskySolver::factor(&a, &opts).unwrap();
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        let x = solver.solve(&b);
        let err = x
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
        assert!(err < 1e-8, "{method:?}: error {err}");
    }

    #[test]
    fn all_methods_solve_correctly() {
        for method in Method::ALL {
            let threshold = if method.is_gpu() { 200 } else { usize::MAX };
            // The pipelined engines resolve streams from RLCHOL_STREAMS
            // here (streams: 0), so the CI matrix exercises both
            // degenerate and multi-stream configurations through this
            // test.
            check_pipeline(method, GpuOptions::with_threshold(threshold));
        }
    }

    #[test]
    fn orderings_reduce_fill_on_grids() {
        let a = laplace2d(20, 5);
        let natural = CholeskySolver::factor(
            &a,
            &SolverOptions {
                ordering: OrderingMethod::Natural,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let nd = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        assert!(
            nd.factor_nnz() < natural.factor_nnz(),
            "ND {} vs natural {}",
            nd.factor_nnz(),
            natural.factor_nnz()
        );
    }

    #[test]
    fn refinement_improves_or_keeps_residual() {
        let a = laplace2d(12, 6);
        let solver = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        let n = a.n();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let (x, resid) = solver.solve_refined(&a, &b, 3);
        assert!(resid < 1e-9, "refined residual {resid}");
        assert_eq!(x.len(), n);
    }

    #[test]
    fn gpu_method_reports_sim_time() {
        let a = laplace2d(10, 7);
        let opts = SolverOptions {
            method: Method::RlGpu,
            gpu: GpuOptions::with_threshold(0),
            ..SolverOptions::default()
        };
        let s = CholeskySolver::factor(&a, &opts).unwrap();
        assert!(s.sim_seconds.unwrap() > 0.0);
        assert_eq!(s.sn_on_gpu, s.symbolic().nsup());
        // The uniform report carries the same numbers plus device stats.
        assert_eq!(s.info().sim_seconds, s.sim_seconds);
        assert!(s.info().gpu.as_ref().unwrap().kernel_launches > 0);
    }

    #[test]
    fn analyze_then_factor_matches_one_shot() {
        let a = laplace2d(11, 4);
        let opts = SolverOptions::default();
        let handle = CholeskySolver::analyze(&a, &opts);
        let fact = handle.factor_with(&a).unwrap();
        let one_shot = CholeskySolver::factor(&a, &opts).unwrap();
        assert_eq!(fact.data(), one_shot.factor_data());
    }
}
