//! End-to-end solver pipeline: ordering → symbolic → numeric → solve.
//!
//! [`CholeskySolver`] is the public entry point a downstream user calls:
//! it owns the composed permutation (fill-reducing order, postorder,
//! merge reordering, partition refinement), the symbolic factor and the
//! numeric factor, and exposes permutation-transparent solves with
//! optional iterative refinement.

use rlchol_ordering::{order, OrderingMethod};
use rlchol_sparse::{Permutation, SymCsc};
use rlchol_symbolic::{analyze, SymbolicFactor, SymbolicOptions};

use crate::engine::{GpuOptions, GpuRun, Method};
use crate::error::FactorError;
use crate::gpu_rl::factor_rl_gpu;
use crate::gpu_rlb::{factor_rlb_gpu, RlbGpuVersion};
use crate::rl::factor_rl_cpu;
use crate::rlb::factor_rlb_cpu;
use crate::solve;
use crate::storage::FactorData;

/// Options for [`CholeskySolver::factor`].
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Fill-reducing ordering (paper: METIS nested dissection).
    pub ordering: OrderingMethod,
    /// Symbolic pipeline options (merging, partition refinement).
    pub symbolic: SymbolicOptions,
    /// Numeric engine.
    pub method: Method,
    /// GPU engine options (ignored by the CPU methods).
    pub gpu: GpuOptions,
    /// Lanes for the task-parallel CPU engines ([`Method::RlCpuPar`],
    /// [`Method::RlbCpuPar`]); `0` means `RLCHOL_THREADS` / available
    /// parallelism. Ignored by the serial and GPU methods.
    pub threads: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            ordering: OrderingMethod::NestedDissection,
            symbolic: SymbolicOptions::default(),
            method: Method::RlCpu,
            gpu: GpuOptions::with_threshold(usize::MAX),
            threads: 0,
        }
    }
}

impl SolverOptions {
    /// Resolved lane count for the task-parallel engines.
    fn lanes(&self) -> usize {
        if self.threads == 0 {
            rlchol_dense::pool::default_threads()
        } else {
            self.threads
        }
    }
}

/// A factored SPD system ready for repeated solves.
pub struct CholeskySolver {
    sym: SymbolicFactor,
    /// Original ordering → factor ordering.
    total_perm: Permutation,
    factor: FactorData,
    /// Simulated seconds of the factorization (GPU engines only).
    pub sim_seconds: Option<f64>,
    /// Supernodes computed on the (simulated) GPU.
    pub sn_on_gpu: usize,
}

impl CholeskySolver {
    /// Orders, analyzes and factors `a`.
    pub fn factor(a: &SymCsc, opts: &SolverOptions) -> Result<Self, FactorError> {
        let fill = order(a, opts.ordering);
        let a_fill = a.permute(&fill);
        let sym = analyze(&a_fill, &opts.symbolic);
        let total_perm = sym.perm.compose(&fill);
        let a_fact = a_fill.permute(&sym.perm);
        let (factor, sim_seconds, sn_on_gpu) = match opts.method {
            Method::RlCpu => {
                let run = factor_rl_cpu(&sym, &a_fact)?;
                (run.factor, None, 0)
            }
            Method::RlbCpu => {
                let run = factor_rlb_cpu(&sym, &a_fact)?;
                (run.factor, None, 0)
            }
            Method::RlCpuPar => {
                let run = crate::sched::factor_rl_cpu_par(&sym, &a_fact, opts.lanes())?;
                (run.factor, None, 0)
            }
            Method::RlbCpuPar => {
                let run = crate::sched::factor_rlb_cpu_par(&sym, &a_fact, opts.lanes())?;
                (run.factor, None, 0)
            }
            Method::LlCpu => {
                let run = crate::ll::factor_ll_cpu(&sym, &a_fact)?;
                (run.factor, None, 0)
            }
            Method::MfCpu => {
                let run = crate::multifrontal::factor_multifrontal_cpu(&sym, &a_fact)?;
                (run.run.factor, None, 0)
            }
            Method::RlGpu => {
                let run: GpuRun = factor_rl_gpu(&sym, &a_fact, &opts.gpu)?;
                (run.factor, Some(run.sim_seconds), run.sn_on_gpu)
            }
            Method::RlbGpuV1 => {
                let run = factor_rlb_gpu(&sym, &a_fact, &opts.gpu, RlbGpuVersion::V1)?;
                (run.factor, Some(run.sim_seconds), run.sn_on_gpu)
            }
            Method::RlbGpuV2 => {
                let run = factor_rlb_gpu(&sym, &a_fact, &opts.gpu, RlbGpuVersion::V2)?;
                (run.factor, Some(run.sim_seconds), run.sn_on_gpu)
            }
            Method::RlGpuPipe => {
                let run = crate::sched::factor_rl_gpu_pipe(&sym, &a_fact, &opts.gpu)?;
                (run.factor, Some(run.sim_seconds), run.sn_on_gpu)
            }
            Method::RlbGpuPipe => {
                let run = crate::sched::factor_rlb_gpu_pipe(&sym, &a_fact, &opts.gpu)?;
                (run.factor, Some(run.sim_seconds), run.sn_on_gpu)
            }
        };
        Ok(CholeskySolver {
            sym,
            total_perm,
            factor,
            sim_seconds,
            sn_on_gpu,
        })
    }

    /// The symbolic factor (structure, counts, supernodes).
    pub fn symbolic(&self) -> &SymbolicFactor {
        &self.sym
    }

    /// The numeric factor values.
    pub fn factor_data(&self) -> &FactorData {
        &self.factor
    }

    /// The composed permutation from the input ordering to factor order.
    pub fn permutation(&self) -> &Permutation {
        &self.total_perm
    }

    /// Factor nonzeros (including amalgamation padding).
    pub fn factor_nnz(&self) -> u64 {
        self.sym.nnz
    }

    /// Solves `A x = b` with `b` in the original ordering.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let bp = self.total_perm.apply_vec(b);
        let xp = solve::solve(&self.sym, &self.factor, &bp);
        self.total_perm.apply_inv_vec(&xp)
    }

    /// Solves with iterative refinement; returns `(x, final_residual_inf)`.
    pub fn solve_refined(&self, a: &SymCsc, b: &[f64], max_iters: usize) -> (Vec<f64>, f64) {
        let n = b.len();
        let mut x = self.solve(b);
        let mut resid = vec![0.0; n];
        let mut last = f64::INFINITY;
        for _ in 0..max_iters {
            a.matvec(&x, &mut resid);
            for i in 0..n {
                resid[i] = b[i] - resid[i];
            }
            let norm = resid.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            if norm >= last || norm == 0.0 {
                last = norm.min(last);
                break;
            }
            last = norm;
            let dx = self.solve(&resid);
            for i in 0..n {
                x[i] += dx[i];
            }
        }
        (x, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};

    fn check_pipeline(method: Method, gpu: GpuOptions) {
        let a = grid3d(5, 5, 4, Stencil::Star7, 1, 77);
        let opts = SolverOptions {
            method,
            gpu,
            ..SolverOptions::default()
        };
        let solver = CholeskySolver::factor(&a, &opts).unwrap();
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut b = vec![0.0; n];
        a.matvec(&x_true, &mut b);
        let x = solver.solve(&b);
        let err = x
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
        assert!(err < 1e-8, "{method:?}: error {err}");
    }

    #[test]
    fn all_methods_solve_correctly() {
        check_pipeline(Method::RlCpu, GpuOptions::with_threshold(usize::MAX));
        check_pipeline(Method::RlbCpu, GpuOptions::with_threshold(usize::MAX));
        check_pipeline(Method::LlCpu, GpuOptions::with_threshold(usize::MAX));
        check_pipeline(Method::MfCpu, GpuOptions::with_threshold(usize::MAX));
        check_pipeline(Method::RlGpu, GpuOptions::with_threshold(200));
        check_pipeline(Method::RlbGpuV1, GpuOptions::with_threshold(200));
        check_pipeline(Method::RlbGpuV2, GpuOptions::with_threshold(200));
        // The pipelined engines resolve streams from RLCHOL_STREAMS here
        // (streams: 0), so the CI matrix exercises both degenerate and
        // multi-stream configurations through this test.
        check_pipeline(Method::RlGpuPipe, GpuOptions::with_threshold(200));
        check_pipeline(Method::RlbGpuPipe, GpuOptions::with_threshold(200));
    }

    #[test]
    fn orderings_reduce_fill_on_grids() {
        let a = laplace2d(20, 5);
        let natural = CholeskySolver::factor(
            &a,
            &SolverOptions {
                ordering: OrderingMethod::Natural,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let nd = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        assert!(
            nd.factor_nnz() < natural.factor_nnz(),
            "ND {} vs natural {}",
            nd.factor_nnz(),
            natural.factor_nnz()
        );
    }

    #[test]
    fn refinement_improves_or_keeps_residual() {
        let a = laplace2d(12, 6);
        let solver = CholeskySolver::factor(&a, &SolverOptions::default()).unwrap();
        let n = a.n();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let (x, resid) = solver.solve_refined(&a, &b, 3);
        assert!(resid < 1e-9, "refined residual {resid}");
        assert_eq!(x.len(), n);
    }

    #[test]
    fn gpu_method_reports_sim_time() {
        let a = laplace2d(10, 7);
        let opts = SolverOptions {
            method: Method::RlGpu,
            gpu: GpuOptions::with_threshold(0),
            ..SolverOptions::default()
        };
        let s = CholeskySolver::factor(&a, &opts).unwrap();
        assert!(s.sim_seconds.unwrap() > 0.0);
        assert_eq!(s.sn_on_gpu, s.symbolic().nsup());
    }
}
