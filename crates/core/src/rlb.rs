//! RLB: the right-looking *blocked* method (§II-B).
//!
//! The panel factorization is identical to RL's; the update is then
//! decomposed over the supernode's row blocks. For each pair of blocks
//! `B` (giving the target columns) and `B′` at or below it:
//!
//! * `B′ = B` — a DSYRK updates the diagonal part `L[B,B]` of the
//!   ancestor supernode holding `B`;
//! * `B′ > B` — a DGEMM updates `L[B′, B]` inside that same ancestor.
//!
//! On the CPU the updates are applied **directly into factor storage** —
//! no temporary update matrix exists — and each block needs just one
//! generalized relative index (its offset in the ancestor's index list),
//! since consecutive global indices stay consecutive there.
//!
//! The sweep itself ([`rlb_target_runs`] + [`rlb_run_updates`]) is shared
//! with the task-parallel scheduler and the GPU engines' CPU path, which
//! differ only in locking, tracing and kernel dispatch — the relative
//! index arithmetic lives here and nowhere else.

use std::time::Instant;

use rlchol_dense::{gemm_nt, syrk_ln};
use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::relind::relative_index_of;
use rlchol_symbolic::SymbolicFactor;

use crate::engine::{factor_panel, CpuRun};
use crate::error::FactorError;
use crate::registry::EngineWorkspace;

/// A maximal run of consecutive row blocks of one source supernode aimed
/// at a single target supernode, with the target geometry resolved once.
///
/// Blocks are listed in ascending row order and targets are ancestors in
/// ascending order too, so each target owns exactly one run — callers may
/// treat runs as disjoint (`split_at_mut`, one lock, one pool job).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RlbTargetRun {
    /// Target supernode.
    pub(crate) target: usize,
    /// Target's leading dimension (`sn_len`) — the `ldc` of every kernel
    /// in the run.
    pub(crate) p_len: usize,
    /// Range of the source's block list covered by this run.
    pub(crate) b_start: usize,
    pub(crate) b_end: usize,
}

/// One SYRK (`diagonal`) or GEMM update of the RLB sweep, with all
/// relative-index arithmetic resolved: kernels read the source panel at
/// `a_off`/`b_off` and write `m × n` values at `dst_off` of the target
/// (leading dimension [`RlbTargetRun::p_len`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RlbUpdate {
    pub(crate) diagonal: bool,
    /// Update rows (`== n` for the diagonal SYRK).
    pub(crate) m: usize,
    /// Update columns.
    pub(crate) n: usize,
    /// Source-panel offset of the `B′` rows.
    pub(crate) a_off: usize,
    /// Source-panel offset of the `B` rows.
    pub(crate) b_off: usize,
    /// Offset in the target supernode's storage.
    pub(crate) dst_off: usize,
}

/// Groups supernode `s`'s row blocks into target runs, in ascending
/// target order. Allocation-free (the iterator walks the block list).
pub(crate) fn rlb_target_runs(
    sym: &SymbolicFactor,
    s: usize,
) -> impl Iterator<Item = RlbTargetRun> + '_ {
    let blocks = &sym.blocks[s];
    let mut b1 = 0usize;
    std::iter::from_fn(move || {
        if b1 >= blocks.len() {
            return None;
        }
        let target = blocks[b1].target;
        let b_end = blocks[b1..]
            .iter()
            .position(|b| b.target != target)
            .map_or(blocks.len(), |off| b1 + off);
        let run = RlbTargetRun {
            target,
            p_len: sym.sn_len(target),
            b_start: b1,
            b_end,
        };
        b1 = b_end;
        Some(run)
    })
}

/// Enumerates the block updates of one target run — the single home of
/// the RLB relative-index arithmetic (§II-B's generalized relative
/// indices). For each outer block `B` in the run: a diagonal SYRK update
/// `L[B, B]`, then one GEMM update `L[B′, B]` per block `B′` below it
/// (below-blocks may extend past the run — their *rows* live in later
/// ancestors but the written columns stay inside this run's target).
pub(crate) fn rlb_run_updates(
    sym: &SymbolicFactor,
    s: usize,
    c: usize,
    run: &RlbTargetRun,
    mut kernel: impl FnMut(&RlbUpdate),
) {
    let blocks = &sym.blocks[s];
    let p = run.target;
    let p_first = sym.sn.first_col(p);
    let p_ncols = sym.sn_ncols(p);
    for (bi, blk) in blocks.iter().enumerate().take(run.b_end).skip(run.b_start) {
        // Target columns: the block's columns inside supernode p.
        let tcol = blk.first - p_first;
        kernel(&RlbUpdate {
            diagonal: true,
            m: blk.len,
            n: blk.len,
            a_off: c + blk.offset,
            b_off: c + blk.offset,
            dst_off: tcol * run.p_len + tcol,
        });
        for blk2 in &blocks[bi + 1..] {
            // One generalized relative index per block: the offset of
            // B′'s first row in p's index list (consecutive indices
            // remain consecutive there). The single-index lookup keeps
            // the update loop allocation-free.
            let roff = relative_index_of(blk2.first, p_first, p_ncols, &sym.rows[p]);
            kernel(&RlbUpdate {
                diagonal: false,
                m: blk2.len,
                n: blk.len,
                a_off: c + blk2.offset,
                b_off: c + blk.offset,
                dst_off: tcol * run.p_len + roff,
            });
        }
    }
}

/// Factors `a` (permuted into factor order) with CPU-only RLB.
pub fn factor_rlb_cpu(sym: &SymbolicFactor, a: &SymCsc) -> Result<CpuRun, FactorError> {
    factor_rlb_cpu_ws(sym, a, &mut EngineWorkspace::default())
}

/// [`factor_rlb_cpu`] drawing factor storage and scratch from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rlb_cpu_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    ws: &mut EngineWorkspace,
) -> Result<CpuRun, FactorError> {
    let t0 = Instant::now();
    let mut data = ws.take_factor(sym, a);
    let mut trace = ws.take_trace();

    for s in 0..sym.nsup() {
        let c = sym.sn_ncols(s);
        let r = sym.sn_nrows_below(s);
        let len = sym.sn_len(s);
        let first = sym.sn.first_col(s);
        {
            let arr = &mut data.sn[s];
            factor_panel(arr, len, c, r, &mut ws.l11).map_err(|pivot| {
                FactorError::NotPositiveDefinite {
                    column: first + pivot,
                }
            })?;
        }
        trace.push(TraceOp::Potrf { n: c });
        if r == 0 {
            continue;
        }
        trace.push(TraceOp::Trsm { m: r, n: c });

        // Per-block direct updates. Targets are strict ancestors (> s),
        // so a split borrow separates the source panel from the targets.
        let (head, tail) = data.sn.split_at_mut(s + 1);
        let src = head.last().expect("source supernode exists");
        for run in rlb_target_runs(sym, s) {
            let parr = &mut tail[run.target - s - 1];
            rlb_run_updates(sym, s, c, &run, |u| {
                if u.diagonal {
                    // Diagonal part L[B, B] via DSYRK.
                    syrk_ln(
                        u.n,
                        c,
                        -1.0,
                        &src[u.a_off..],
                        len,
                        1.0,
                        &mut parr[u.dst_off..],
                        run.p_len,
                    );
                    trace.push(TraceOp::Syrk { n: u.n, k: c });
                } else {
                    // Lower part L[B′, B] via DGEMM.
                    gemm_nt(
                        u.m,
                        u.n,
                        c,
                        -1.0,
                        &src[u.a_off..],
                        len,
                        &src[u.b_off..],
                        len,
                        1.0,
                        &mut parr[u.dst_off..],
                        run.p_len,
                    );
                    trace.push(TraceOp::Gemm {
                        m: u.m,
                        n: u.n,
                        k: c,
                    });
                }
            });
        }
    }
    Ok(CpuRun {
        factor: data,
        trace,
        wall: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    #[test]
    fn factors_small_spd_with_tiny_residual() {
        let a = laplace2d(8, 3);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rlb_cpu(&sym, &ap).unwrap();
        let res = run.factor.residual(&sym, &ap, 3);
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn rl_and_rlb_produce_the_same_factor() {
        let a = grid3d(5, 5, 5, Stencil::Star7, 1, 11);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let rl = factor_rl_cpu(&sym, &ap).unwrap();
        let rlb = factor_rlb_cpu(&sym, &ap).unwrap();
        let diff = rl.factor.max_rel_diff(&rlb.factor);
        assert!(diff < 1e-11, "factor mismatch {diff}");
    }

    #[test]
    fn rlb_issues_more_blas_calls_than_rl() {
        // RLB decomposes each update into per-block calls, so on any
        // matrix with multi-block supernodes it must issue at least as
        // many BLAS calls as RL (strictly more unless every supernode has
        // a single block).
        let a = laplace2d(10, 5);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let rl = factor_rl_cpu(&sym, &ap).unwrap();
        let rlb = factor_rlb_cpu(&sym, &ap).unwrap();
        assert!(rlb.trace.blas_calls() >= rl.trace.blas_calls());
    }

    #[test]
    fn rlb_has_no_assembly_records() {
        // The defining feature: direct updates, no scatter step.
        let a = laplace2d(8, 4);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rlb_cpu(&sym, &ap).unwrap();
        assert!(run
            .trace
            .ops
            .iter()
            .all(|o| !matches!(o, TraceOp::Assemble { .. })));
    }

    #[test]
    fn partition_refinement_reduces_gemm_calls() {
        // PR exists to shrink the number of blocks; compare RLB call
        // counts with and without it on a 3-D problem.
        let a = grid3d(6, 6, 6, Stencil::Star7, 1, 5);
        let with_pr = SymbolicOptions::default();
        let without_pr = SymbolicOptions {
            partition_refine: false,
            ..SymbolicOptions::default()
        };
        let sym1 = analyze(&a, &with_pr);
        let sym2 = analyze(&a, &without_pr);
        let r1 = factor_rlb_cpu(&sym1, &a.permute(&sym1.perm)).unwrap();
        let r2 = factor_rlb_cpu(&sym2, &a.permute(&sym2.perm)).unwrap();
        assert!(
            r1.trace.blas_calls() <= r2.trace.blas_calls(),
            "PR should not increase call count: {} vs {}",
            r1.trace.blas_calls(),
            r2.trace.blas_calls()
        );
    }
}
