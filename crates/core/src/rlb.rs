//! RLB: the right-looking *blocked* method (§II-B).
//!
//! The panel factorization is identical to RL's; the update is then
//! decomposed over the supernode's row blocks. For each pair of blocks
//! `B` (giving the target columns) and `B′` at or below it:
//!
//! * `B′ = B` — a DSYRK updates the diagonal part `L[B,B]` of the
//!   ancestor supernode holding `B`;
//! * `B′ > B` — a DGEMM updates `L[B′, B]` inside that same ancestor.
//!
//! On the CPU the updates are applied **directly into factor storage** —
//! no temporary update matrix exists — and each block needs just one
//! generalized relative index (its offset in the ancestor's index list),
//! since consecutive global indices stay consecutive there.

use std::time::Instant;

use rlchol_dense::{gemm_nt, syrk_ln};
use rlchol_perfmodel::{Trace, TraceOp};
use rlchol_sparse::SymCsc;
use rlchol_symbolic::relind::relative_index_of;
use rlchol_symbolic::SymbolicFactor;

use crate::engine::{factor_panel, CpuRun};
use crate::error::FactorError;
use crate::storage::FactorData;

/// Factors `a` (permuted into factor order) with CPU-only RLB.
pub fn factor_rlb_cpu(sym: &SymbolicFactor, a: &SymCsc) -> Result<CpuRun, FactorError> {
    let t0 = Instant::now();
    let mut data = FactorData::load(sym, a);
    let mut trace = Trace::new();
    let mut l11 = Vec::new();

    for s in 0..sym.nsup() {
        let c = sym.sn_ncols(s);
        let r = sym.sn_nrows_below(s);
        let len = sym.sn_len(s);
        let first = sym.sn.first_col(s);
        {
            let arr = &mut data.sn[s];
            factor_panel(arr, len, c, r, &mut l11).map_err(|pivot| {
                FactorError::NotPositiveDefinite {
                    column: first + pivot,
                }
            })?;
        }
        trace.push(TraceOp::Potrf { n: c });
        if r == 0 {
            continue;
        }
        trace.push(TraceOp::Trsm { m: r, n: c });

        // Per-block direct updates. Targets are strict ancestors (> s),
        // so a split borrow separates the source panel from the targets.
        let (head, tail) = data.sn.split_at_mut(s + 1);
        let src = head.last().expect("source supernode exists");
        let blocks = &sym.blocks[s];
        for (b1, blk) in blocks.iter().enumerate() {
            let p = blk.target;
            let p_first = sym.sn.first_col(p);
            let p_ncols = sym.sn_ncols(p);
            let p_len = sym.sn_len(p);
            let parr = &mut tail[p - s - 1];
            // Target columns: the block's columns inside supernode p.
            let tcol = blk.first - p_first;
            // Diagonal part L[B, B] via DSYRK.
            {
                let cblock = &mut parr[tcol * p_len + tcol..];
                syrk_ln(
                    blk.len,
                    c,
                    -1.0,
                    &src[c + blk.offset..],
                    len,
                    1.0,
                    cblock,
                    p_len,
                );
            }
            trace.push(TraceOp::Syrk { n: blk.len, k: c });
            // Lower parts L[B′, B] via DGEMM, one call per lower block.
            for blk2 in &blocks[b1 + 1..] {
                // One generalized relative index per block: the offset of
                // B′'s first row in p's index list (consecutive indices
                // remain consecutive there). The single-index lookup keeps
                // the update loop allocation-free.
                let roff = relative_index_of(blk2.first, p_first, p_ncols, &sym.rows[p]);
                let cblock = &mut parr[tcol * p_len + roff..];
                gemm_nt(
                    blk2.len,
                    blk.len,
                    c,
                    -1.0,
                    &src[c + blk2.offset..],
                    len,
                    &src[c + blk.offset..],
                    len,
                    1.0,
                    cblock,
                    p_len,
                );
                trace.push(TraceOp::Gemm {
                    m: blk2.len,
                    n: blk.len,
                    k: c,
                });
            }
        }
    }
    Ok(CpuRun {
        factor: data,
        trace,
        wall: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    #[test]
    fn factors_small_spd_with_tiny_residual() {
        let a = laplace2d(8, 3);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rlb_cpu(&sym, &ap).unwrap();
        let res = run.factor.residual(&sym, &ap, 3);
        assert!(res < 1e-12, "residual {res}");
    }

    #[test]
    fn rl_and_rlb_produce_the_same_factor() {
        let a = grid3d(5, 5, 5, Stencil::Star7, 1, 11);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let rl = factor_rl_cpu(&sym, &ap).unwrap();
        let rlb = factor_rlb_cpu(&sym, &ap).unwrap();
        let diff = rl.factor.max_rel_diff(&rlb.factor);
        assert!(diff < 1e-11, "factor mismatch {diff}");
    }

    #[test]
    fn rlb_issues_more_blas_calls_than_rl() {
        // RLB decomposes each update into per-block calls, so on any
        // matrix with multi-block supernodes it must issue at least as
        // many BLAS calls as RL (strictly more unless every supernode has
        // a single block).
        let a = laplace2d(10, 5);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let rl = factor_rl_cpu(&sym, &ap).unwrap();
        let rlb = factor_rlb_cpu(&sym, &ap).unwrap();
        assert!(rlb.trace.blas_calls() >= rl.trace.blas_calls());
    }

    #[test]
    fn rlb_has_no_assembly_records() {
        // The defining feature: direct updates, no scatter step.
        let a = laplace2d(8, 4);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rlb_cpu(&sym, &ap).unwrap();
        assert!(run
            .trace
            .ops
            .iter()
            .all(|o| !matches!(o, TraceOp::Assemble { .. })));
    }

    #[test]
    fn partition_refinement_reduces_gemm_calls() {
        // PR exists to shrink the number of blocks; compare RLB call
        // counts with and without it on a 3-D problem.
        let a = grid3d(6, 6, 6, Stencil::Star7, 1, 5);
        let with_pr = SymbolicOptions::default();
        let without_pr = SymbolicOptions {
            partition_refine: false,
            ..SymbolicOptions::default()
        };
        let sym1 = analyze(&a, &with_pr);
        let sym2 = analyze(&a, &without_pr);
        let r1 = factor_rlb_cpu(&sym1, &a.permute(&sym1.perm)).unwrap();
        let r2 = factor_rlb_cpu(&sym2, &a.permute(&sym2.perm)).unwrap();
        assert!(
            r1.trace.blas_calls() <= r2.trace.blas_calls(),
            "PR should not increase call count: {} vs {}",
            r1.trace.blas_calls(),
            r2.trace.blas_calls()
        );
    }
}
