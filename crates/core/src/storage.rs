//! Supernodal factor storage.
//!
//! Each supernode `s` with `c` columns and `r` below-diagonal rows is one
//! dense column-major array of `len × c` doubles (`len = c + r`), exactly
//! as in the paper ("a supernode is stored in a dense array", §II-A —
//! e.g. J1 in a 5×2 array). Row `0..c` of the array is the (lower)
//! triangular diagonal block; rows `c..len` are indexed by the
//! supernode's `rows` list.

use rlchol_sparse::SymCsc;
use rlchol_symbolic::SymbolicFactor;

/// The numeric values of a supernodal factor (structure lives in
/// [`SymbolicFactor`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FactorData {
    /// One dense column-major array per supernode; leading dimension is
    /// the supernode length.
    pub sn: Vec<Vec<f64>>,
}

impl FactorData {
    /// Allocates zeroed storage for all supernodes.
    pub fn zeros(sym: &SymbolicFactor) -> Self {
        let sn = (0..sym.nsup())
            .map(|s| vec![0.0f64; sym.sn_len(s) * sym.sn_ncols(s)])
            .collect();
        FactorData { sn }
    }

    /// Loads the values of `a` (already permuted into factor order) into
    /// supernodal storage; entries outside `A`'s pattern stay zero.
    pub fn load(sym: &SymbolicFactor, a: &SymCsc) -> Self {
        let mut f = FactorData::zeros(sym);
        f.reload(sym, a);
        f
    }

    /// True when this factor's per-supernode arrays match `sym`'s shapes
    /// — the precondition for [`reload`](Self::reload).
    pub fn shape_matches(&self, sym: &SymbolicFactor) -> bool {
        self.sn.len() == sym.nsup()
            && (0..sym.nsup()).all(|s| self.sn[s].len() == sym.sn_len(s) * sym.sn_ncols(s))
    }

    /// Reloads the values of `a` into this factor's existing storage
    /// (zeroing it first) — the refactorization path: same symbolic
    /// structure, new values, **no reallocation**.
    pub fn reload(&mut self, sym: &SymbolicFactor, a: &SymCsc) {
        assert_eq!(a.n(), sym.n);
        assert!(self.shape_matches(sym), "factor storage shape mismatch");
        for arr in &mut self.sn {
            arr.fill(0.0);
        }
        let f = self;
        for s in 0..sym.nsup() {
            let first = sym.sn.first_col(s);
            let end = sym.sn.end_col(s);
            let len = sym.sn_len(s);
            let rows = &sym.rows[s];
            let arr = &mut f.sn[s];
            for j in first..end {
                let lc = j - first;
                let mut cursor = 0usize; // two-pointer over rows (sorted)
                for (&i, &v) in a.col_rows(j).iter().zip(a.col_values(j)) {
                    debug_assert!(i >= j);
                    let lr = if i < end {
                        i - first
                    } else {
                        while rows[cursor] < i {
                            cursor += 1;
                        }
                        debug_assert_eq!(rows[cursor], i, "A entry outside factor pattern");
                        end - first + cursor
                    };
                    arr[lc * len + lr] = v;
                }
            }
        }
    }

    /// Entry `L[i, j]` (global indices, `i >= j`); zero when outside the
    /// supernodal pattern.
    pub fn get(&self, sym: &SymbolicFactor, i: usize, j: usize) -> f64 {
        let s = sym.sn.col_to_sn[j];
        let first = sym.sn.first_col(s);
        let end = sym.sn.end_col(s);
        let len = sym.sn_len(s);
        let lc = j - first;
        let lr = if i < end {
            i - first
        } else {
            match sym.rows[s].binary_search(&i) {
                Ok(pos) => end - first + pos,
                Err(_) => return 0.0,
            }
        };
        self.sn[s][lc * len + lr]
    }

    /// Maximum relative elementwise difference against another factor
    /// with the same structure (used to compare engines).
    pub fn max_rel_diff(&self, other: &FactorData) -> f64 {
        let mut worst = 0.0f64;
        for (a, b) in self.sn.iter().zip(&other.sn) {
            for (&x, &y) in a.iter().zip(b) {
                let scale = x.abs().max(y.abs()).max(1.0);
                worst = worst.max((x - y).abs() / scale);
            }
        }
        worst
    }

    /// `y = Lᵀ x` over the supernodal structure.
    pub fn lt_matvec(&self, sym: &SymbolicFactor, x: &[f64]) -> Vec<f64> {
        let n = sym.n;
        assert_eq!(x.len(), n);
        let mut y = vec![0.0f64; n];
        for s in 0..sym.nsup() {
            let first = sym.sn.first_col(s);
            let end = sym.sn.end_col(s);
            let len = sym.sn_len(s);
            let c = end - first;
            let arr = &self.sn[s];
            let rows = &sym.rows[s];
            for lc in 0..c {
                let col = &arr[lc * len..(lc + 1) * len];
                let mut acc = 0.0;
                for (li, &v) in col.iter().enumerate().skip(lc) {
                    if v != 0.0 {
                        let gi = if li < c { first + li } else { rows[li - c] };
                        acc += v * x[gi];
                    }
                }
                y[first + lc] = acc;
            }
        }
        y
    }

    /// `z = L y` over the supernodal structure.
    pub fn l_matvec(&self, sym: &SymbolicFactor, y: &[f64]) -> Vec<f64> {
        let n = sym.n;
        assert_eq!(y.len(), n);
        let mut z = vec![0.0f64; n];
        for s in 0..sym.nsup() {
            let first = sym.sn.first_col(s);
            let end = sym.sn.end_col(s);
            let len = sym.sn_len(s);
            let c = end - first;
            let arr = &self.sn[s];
            let rows = &sym.rows[s];
            for lc in 0..c {
                let yj = y[first + lc];
                if yj == 0.0 {
                    continue;
                }
                let col = &arr[lc * len..(lc + 1) * len];
                for (li, &v) in col.iter().enumerate().skip(lc) {
                    if v != 0.0 {
                        let gi = if li < c { first + li } else { rows[li - c] };
                        z[gi] += v * yj;
                    }
                }
            }
        }
        z
    }

    /// Probabilistic reconstruction residual:
    /// `max_trials ‖A x − L(Lᵀ x)‖∞ / (‖A‖_max · ‖x‖₁)` over seeded random
    /// vectors — an O(nnz)-per-trial check suitable for large matrices.
    pub fn residual(&self, sym: &SymbolicFactor, a: &SymCsc, trials: usize) -> f64 {
        let n = sym.n;
        let mut amax = 0.0f64;
        for v in a.values() {
            amax = amax.max(v.abs());
        }
        let mut worst = 0.0f64;
        // Simple deterministic pseudo-random vectors (xorshift), avoiding
        // an extra dependency in this hot path.
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..trials.max(1) {
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            let x1: f64 = x.iter().map(|v| v.abs()).sum();
            let mut ax = vec![0.0; n];
            a.matvec(&x, &mut ax);
            let llx = self.l_matvec(sym, &self.lt_matvec(sym, &x));
            let err = ax
                .iter()
                .zip(&llx)
                .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
            worst = worst.max(err / (amax.max(1e-300) * x1.max(1e-300)));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_sparse::TripletMatrix;
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn small_spd() -> SymCsc {
        // 5x5 SPD with an arrow-ish pattern.
        let mut t = TripletMatrix::new(5, 5);
        for j in 0..5 {
            t.push(j, j, 8.0 + j as f64);
        }
        t.push(1, 0, -1.0);
        t.push(4, 0, -2.0);
        t.push(3, 2, -1.5);
        t.push(4, 3, -0.5);
        SymCsc::from_lower_triplets(&t).unwrap()
    }

    #[test]
    fn load_round_trips_entries() {
        let a = small_spd();
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let f = FactorData::load(&sym, &ap);
        for j in 0..5 {
            for i in j..5 {
                assert_eq!(
                    f.get(&sym, i, j),
                    ap.get(i, j),
                    "mismatch at permuted ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn zeros_have_correct_shapes() {
        let a = small_spd();
        let sym = analyze(&a, &SymbolicOptions::default());
        let f = FactorData::zeros(&sym);
        for s in 0..sym.nsup() {
            assert_eq!(f.sn[s].len(), sym.sn_len(s) * sym.sn_ncols(s));
        }
    }

    #[test]
    fn matvecs_match_dense_reference() {
        let a = small_spd();
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let f = FactorData::load(&sym, &ap);
        // Treat the loaded values as a lower-triangular L and compare
        // L x / Lᵀ x against an explicit dense triangle.
        let n = 5;
        let mut dense = vec![0.0f64; n * n];
        for j in 0..n {
            for i in j..n {
                dense[j * n + i] = f.get(&sym, i, j);
            }
        }
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let lx = f.l_matvec(&sym, &x);
        let ltx = f.lt_matvec(&sym, &x);
        for i in 0..n {
            let mut expect_l = 0.0;
            let mut expect_lt = 0.0;
            for j in 0..n {
                if i >= j {
                    expect_l += dense[j * n + i] * x[j];
                }
                if j >= i {
                    expect_lt += dense[i * n + j] * x[j];
                }
            }
            assert!((lx[i] - expect_l).abs() < 1e-12, "L x mismatch at {i}");
            assert!((ltx[i] - expect_lt).abs() < 1e-12, "Lt x mismatch at {i}");
        }
    }

    #[test]
    fn residual_reacts_to_wrong_factors() {
        // For a diagonal matrix, the true factor has diag 2.0 (since
        // A = 4 I). Loaded (unfactored) values give a large residual; the
        // correct factor gives ~0.
        let mut t = TripletMatrix::new(3, 3);
        for j in 0..3 {
            t.push(j, j, 4.0);
        }
        let a = SymCsc::from_lower_triplets(&t).unwrap();
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let mut f = FactorData::load(&sym, &ap);
        assert!(f.residual(&sym, &ap, 2) > 1e-3);
        for s in 0..sym.nsup() {
            for v in f.sn[s].iter_mut() {
                if *v != 0.0 {
                    *v = 2.0;
                }
            }
        }
        assert!(f.residual(&sym, &ap, 2) < 1e-14);
    }
}
