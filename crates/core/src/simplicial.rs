//! Simplicial (non-supernodal) left-looking Cholesky — the correctness
//! baseline the supernodal engines are validated against.
//!
//! Classic sparse column algorithm: column `j` starts from `A[:, j]`,
//! subtracts `L[j,k] · L[:,k]` for every earlier column `k` with
//! `L[j,k] ≠ 0` (tracked with per-row lists), scales by the pivot square
//! root, and records its structure on the fly. No supernodes, no BLAS —
//! a completely independent code path.

use rlchol_sparse::{CscMatrix, SymCsc};

use crate::error::FactorError;

/// Computes the sparse Cholesky factor `L` (lower, diagonal included) of
/// `a` in its *given* ordering.
pub fn simplicial_cholesky(a: &SymCsc) -> Result<CscMatrix, FactorError> {
    let n = a.n();
    let mut colptr = vec![0usize; n + 1];
    let mut rowind: Vec<usize> = Vec::with_capacity(a.nnz_lower() * 2);
    let mut values: Vec<f64> = Vec::with_capacity(a.nnz_lower() * 2);
    // row_lists[i]: finished columns k with L[i,k] != 0 — each entry is
    // (k, position of row i inside column k's storage).
    let mut row_lists: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    // Dense accumulator + touched set.
    let mut acc = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut in_touched = vec![false; n];

    for j in 0..n {
        // Start from A's column (lower part).
        for (&i, &v) in a.col_rows(j).iter().zip(a.col_values(j)) {
            acc[i] = v;
            if !in_touched[i] {
                in_touched[i] = true;
                touched.push(i);
            }
        }
        // Subtract contributions of earlier columns hitting row j.
        for &(k, pos_in_k) in &row_lists[j] {
            let ljk = values[pos_in_k];
            // Walk column k from row j downward (entries are appended in
            // increasing row order, so the tail from pos_in_k is >= j).
            for idx in pos_in_k..colptr[k + 1] {
                let i = rowind[idx];
                let v = ljk * values[idx];
                if !in_touched[i] {
                    in_touched[i] = true;
                    touched.push(i);
                    acc[i] = 0.0;
                }
                acc[i] -= v;
            }
        }
        // Pivot.
        let d = acc[j];
        if d <= 0.0 || !d.is_finite() {
            return Err(FactorError::NotPositiveDefinite { column: j });
        }
        let piv = d.sqrt();
        // Emit column j sorted by row.
        touched.sort_unstable();
        let col_start = values.len();
        for &i in &touched {
            debug_assert!(i >= j, "structure below the diagonal only");
            let v = if i == j { piv } else { acc[i] / piv };
            if i == j || v != 0.0 {
                rowind.push(i);
                values.push(v);
            }
            in_touched[i] = false;
            acc[i] = 0.0;
        }
        touched.clear();
        colptr[j + 1] = values.len();
        // Register this column in the row lists of its off-diagonal rows.
        for idx in col_start + 1..values.len() {
            let i = rowind[idx];
            row_lists[i].push((j, idx));
        }
    }
    Ok(CscMatrix::from_parts(n, n, colptr, rowind, values)
        .expect("emitted columns are sorted and in range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::laplace2d;
    use rlchol_sparse::TripletMatrix;

    #[test]
    fn matches_dense_cholesky() {
        let a = laplace2d(5, 9);
        let l = simplicial_cholesky(&a).unwrap();
        // Dense reference.
        let n = a.n();
        let mut dense = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..n {
                dense[j * n + i] = a.get(i, j);
            }
        }
        rlchol_dense::potrf(n, &mut dense, n).unwrap();
        for j in 0..n {
            for i in j..n {
                let got = l.get(i, j);
                let want = dense[j * n + i];
                assert!((got - want).abs() < 1e-10, "({i},{j}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn reconstructs_a() {
        let a = laplace2d(7, 4);
        let l = simplicial_cholesky(&a).unwrap();
        // ‖A - L Lᵀ‖ via matvec probing.
        let n = a.n();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut ax = vec![0.0; n];
        a.matvec(&x, &mut ax);
        let lt = l.transpose();
        let mut ltx = vec![0.0; n];
        lt.matvec(&x, &mut ltx);
        let mut llx = vec![0.0; n];
        l.matvec(&ltx, &mut llx);
        for i in 0..n {
            assert!((ax[i] - llx[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn detects_indefiniteness() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0);
        let a = SymCsc::from_lower_triplets(&t).unwrap();
        assert!(matches!(
            simplicial_cholesky(&a),
            Err(FactorError::NotPositiveDefinite { column: 1 })
        ));
    }

    #[test]
    fn keeps_fill_pattern_superset_of_a() {
        let a = laplace2d(4, 2);
        let l = simplicial_cholesky(&a).unwrap();
        assert!(l.nnz() >= a.nnz_lower());
    }
}
