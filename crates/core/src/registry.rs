//! The numeric-engine registry: one trait, eleven engines.
//!
//! Historically the solver dispatched on `opts.method` with an 11-arm
//! `match`, and each engine family reported results through its own
//! shape (`CpuRun` with a trace, `GpuRun` with simulated seconds and
//! device counters, `MultifrontalRun` with stack statistics). This
//! module funnels all of them through one interface:
//!
//! * [`NumericEngine`] — `factor(sym, a, ws)` produces an [`EngineRun`]:
//!   the factor plus a uniform [`FactorInfo`] (wall time, simulated
//!   seconds, supernodes on GPU, stream count, per-stream device stats,
//!   CPU trace).
//! * [`EngineWorkspace`] — the engine-resolved resources a
//!   [`SymbolicCholesky`](crate::SymbolicCholesky) handle owns across
//!   repeated factorizations: pool lanes, GPU options (threshold,
//!   stream pairs), recycled factor storage, and the serial engines'
//!   scratch buffers. Refactoring a same-pattern matrix reuses all of
//!   it — no factor reallocation, no scratch regrowth.
//! * [`engine_for`] — the registry lookup keyed by [`Method`]. Every
//!   variant of [`Method::ALL`] is registered; the exhaustiveness test
//!   below keeps the two lists in lock-step.

use std::time::Duration;

use rlchol_gpu::GpuStats;
use rlchol_perfmodel::{Trace, TraceOp};
use rlchol_sparse::SymCsc;
use rlchol_symbolic::SymbolicFactor;

use crate::engine::{CpuRun, GpuOptions, GpuRun, Method, RetireMode};
use crate::error::FactorError;
use crate::storage::FactorData;

/// Uniform per-factorization report, shared by every engine.
#[derive(Debug, Clone, Default)]
pub struct FactorInfo {
    /// Real wall-clock duration of the factorization.
    pub wall: Duration,
    /// Simulated end-to-end seconds on the paper platform (GPU engines
    /// only).
    pub sim_seconds: Option<f64>,
    /// Supernodes whose BLAS ran on the (simulated) device.
    pub sn_on_gpu: usize,
    /// Compute/copy stream pairs used (0 for the CPU engines; the
    /// pipelined engines may shed pairs to fit device memory).
    pub streams_used: usize,
    /// Device counters, including the per-stream kernel/transfer
    /// breakdown (GPU engines only).
    pub gpu: Option<GpuStats>,
    /// Retirement discipline the pipelined executor ran under
    /// (pipelined GPU engines only).
    pub retire: Option<RetireMode>,
    /// Final out-of-order lookahead window (0 when in-order or not a
    /// pipelined GPU engine; under adaptive lookahead this is the
    /// window's closing value).
    pub lookahead: usize,
    /// Host-to-device pattern-metadata transfers skipped because the
    /// staged handle kept the previous factorization's uploads resident
    /// (0 on cold runs and for non-pipelined engines).
    pub transfers_saved: u64,
    /// Operation trace, replayable under the performance model (CPU
    /// engines only).
    pub trace: Option<Trace>,
    /// Recovery steps the staged handle took to produce this factor
    /// (retries, fallbacks, lane quarantines); empty on a clean run.
    pub recovery: Vec<crate::resilience::RecoveryEvent>,
}

/// What an engine hands back: the numeric factor plus its report.
#[derive(Debug)]
pub struct EngineRun {
    /// The numeric factor.
    pub factor: FactorData,
    /// The uniform report.
    pub info: FactorInfo,
}

impl EngineRun {
    fn from_cpu(run: CpuRun) -> Self {
        EngineRun {
            factor: run.factor,
            info: FactorInfo {
                wall: run.wall,
                trace: Some(run.trace),
                ..FactorInfo::default()
            },
        }
    }

    fn from_gpu(run: GpuRun) -> Self {
        EngineRun {
            factor: run.factor,
            info: FactorInfo {
                wall: run.wall,
                sim_seconds: Some(run.sim_seconds),
                sn_on_gpu: run.sn_on_gpu,
                streams_used: run.streams_used,
                gpu: Some(run.stats),
                retire: Some(run.retire),
                lookahead: run.lookahead,
                transfers_saved: run.transfers_saved,
                ..FactorInfo::default()
            },
        }
    }
}

/// Engine-resolved resources, owned by a
/// [`SymbolicCholesky`](crate::SymbolicCholesky) handle and threaded
/// through every factorization it runs.
#[derive(Debug, Default)]
pub struct EngineWorkspace {
    /// Pool lanes for the task-parallel CPU engines; `0` resolves to
    /// `RLCHOL_THREADS` / available parallelism at use.
    pub lanes: usize,
    /// GPU engine options (threshold, machine model, stream pairs).
    /// `streams == 0` resolves to `RLCHOL_STREAMS` / its default.
    pub gpu: Option<GpuOptions>,
    /// Factor storage recycled from a previous same-pattern
    /// factorization; [`take_factor`](Self::take_factor) reuses it
    /// instead of reallocating.
    recycle: Option<FactorData>,
    /// RL's preallocated update-matrix workspace (§II-A), kept across
    /// refactorizations.
    pub(crate) upd: Vec<f64>,
    /// Diagonal-block copy scratch shared by the serial panel kernels.
    pub(crate) l11: Vec<f64>,
    /// Recycled trace buffer: [`take_trace`](Self::take_trace) hands it
    /// to the engine, the lane pool restocks it from factorizations
    /// returned through `SymbolicCholesky::recycle` — so the serial CPU
    /// engines' trace recording allocates nothing at steady state.
    pub(crate) trace_ops: Vec<TraceOp>,
    /// Deadline/cancellation control the `Frontier` executors check per
    /// supernode. Unarmed (a no-op) by default; the staged handle arms
    /// it per factorization.
    pub ctl: crate::resilience::RunCtl,
    /// Simulated device session (streams, per-lane buffers, uploaded
    /// pattern metadata) kept alive between same-pattern refactorizations
    /// by the pipelined engines. Only populated when
    /// [`residency_enabled`](Self::residency_enabled) is set.
    pub(crate) residency: Option<crate::sched::gpu::GpuResidency>,
    /// Whether the pipelined engines may keep their device session
    /// resident across calls. Off by default (one-shot `factor_*` calls
    /// get a fresh device each time, preserving allocation-ordinal
    /// determinism); the staged handle turns it on for its lanes.
    pub residency_enabled: bool,
}

impl EngineWorkspace {
    /// Workspace with explicitly resolved resources.
    pub fn new(lanes: usize, gpu: GpuOptions) -> Self {
        EngineWorkspace {
            lanes,
            gpu: Some(gpu),
            ..EngineWorkspace::default()
        }
    }

    /// Resolved lane count for the task-parallel engines.
    pub fn resolved_lanes(&self) -> usize {
        if self.lanes == 0 {
            rlchol_dense::pool::default_threads()
        } else {
            self.lanes
        }
    }

    /// Resolved GPU options (defaults to an everything-on-CPU threshold
    /// when none were provided).
    pub fn resolved_gpu(&self) -> GpuOptions {
        self.gpu
            .clone()
            .unwrap_or_else(|| GpuOptions::with_threshold(usize::MAX))
    }

    /// Hands storage for a factorization of `a`: the recycled factor
    /// when its shape matches `sym` (zeroed and reloaded in place),
    /// fresh storage otherwise.
    pub fn take_factor(&mut self, sym: &SymbolicFactor, a: &SymCsc) -> FactorData {
        match self.recycle.take() {
            Some(mut data) if data.shape_matches(sym) => {
                data.reload(sym, a);
                data
            }
            _ => FactorData::load(sym, a),
        }
    }

    /// Returns factor storage for reuse by the next
    /// [`take_factor`](Self::take_factor) call.
    pub fn recycle(&mut self, data: FactorData) {
        self.recycle = Some(data);
    }

    /// Whether recycled factor storage is already staged (the lane pool
    /// skips restocking from its shared bin when it is).
    pub fn has_recycled_factor(&self) -> bool {
        self.recycle.is_some()
    }

    /// Removes and returns the staged recycled storage, if any (the
    /// lane pool salvages it from overflow lanes before dropping them).
    pub fn take_recycled(&mut self) -> Option<FactorData> {
        self.recycle.take()
    }

    /// An empty [`Trace`] backed by the workspace's recycled buffer, so
    /// steady-state trace recording performs no heap allocation. The
    /// trace leaves with the engine's run; its buffer flows back through
    /// [`recycle_trace`](Self::recycle_trace) or the lane pool's bin.
    pub fn take_trace(&mut self) -> Trace {
        let mut ops = std::mem::take(&mut self.trace_ops);
        ops.clear();
        Trace { ops }
    }

    /// Returns a trace's buffer for reuse by the next
    /// [`take_trace`](Self::take_trace) call (keeps the larger of the
    /// two buffers).
    pub fn recycle_trace(&mut self, trace: Trace) {
        if trace.ops.capacity() > self.trace_ops.capacity() {
            self.trace_ops = trace.ops;
        }
    }

    /// Grows (never shrinks) the RL update workspace to `entries`.
    pub(crate) fn upd_mut(&mut self, entries: usize) -> &mut [f64] {
        if self.upd.len() < entries {
            self.upd.resize(entries, 0.0);
        }
        &mut self.upd
    }
}

/// A numeric factorization engine, dispatchable by [`Method`].
pub trait NumericEngine: Sync {
    /// The [`Method`] this engine implements (the registry key).
    fn method(&self) -> Method;

    /// Factors `a` (already permuted into factor order) for the
    /// structure `sym`, drawing storage and resources from `ws`.
    fn factor(
        &self,
        sym: &SymbolicFactor,
        a: &SymCsc,
        ws: &mut EngineWorkspace,
    ) -> Result<EngineRun, FactorError>;
}

macro_rules! cpu_engine {
    ($name:ident, $method:expr, $call:expr) => {
        struct $name;
        impl NumericEngine for $name {
            fn method(&self) -> Method {
                $method
            }
            fn factor(
                &self,
                sym: &SymbolicFactor,
                a: &SymCsc,
                ws: &mut EngineWorkspace,
            ) -> Result<EngineRun, FactorError> {
                #[allow(clippy::redundant_closure_call)]
                ($call)(sym, a, ws).map(EngineRun::from_cpu)
            }
        }
    };
}

macro_rules! gpu_engine {
    ($name:ident, $method:expr, $call:expr) => {
        struct $name;
        impl NumericEngine for $name {
            fn method(&self) -> Method {
                $method
            }
            fn factor(
                &self,
                sym: &SymbolicFactor,
                a: &SymCsc,
                ws: &mut EngineWorkspace,
            ) -> Result<EngineRun, FactorError> {
                let opts = ws.resolved_gpu();
                #[allow(clippy::redundant_closure_call)]
                ($call)(sym, a, &opts, ws).map(EngineRun::from_gpu)
            }
        }
    };
}

cpu_engine!(RlCpuEngine, Method::RlCpu, crate::rl::factor_rl_cpu_ws);
cpu_engine!(RlbCpuEngine, Method::RlbCpu, crate::rlb::factor_rlb_cpu_ws);
cpu_engine!(LlCpuEngine, Method::LlCpu, crate::ll::factor_ll_cpu_ws);
cpu_engine!(
    RlCpuParEngine,
    Method::RlCpuPar,
    |sym: &SymbolicFactor, a: &SymCsc, ws: &mut EngineWorkspace| {
        let lanes = ws.resolved_lanes();
        crate::sched::factor_rl_cpu_par_ws(sym, a, lanes, ws)
    }
);
cpu_engine!(
    RlbCpuParEngine,
    Method::RlbCpuPar,
    |sym: &SymbolicFactor, a: &SymCsc, ws: &mut EngineWorkspace| {
        let lanes = ws.resolved_lanes();
        crate::sched::factor_rlb_cpu_par_ws(sym, a, lanes, ws)
    }
);
cpu_engine!(
    MfCpuEngine,
    Method::MfCpu,
    |sym: &SymbolicFactor, a: &SymCsc, ws: &mut EngineWorkspace| {
        crate::multifrontal::factor_multifrontal_cpu_ws(sym, a, ws).map(|r| r.run)
    }
);
gpu_engine!(RlGpuEngine, Method::RlGpu, crate::gpu_rl::factor_rl_gpu_ws);
gpu_engine!(
    RlbGpuV1Engine,
    Method::RlbGpuV1,
    |sym: &SymbolicFactor, a: &SymCsc, opts: &GpuOptions, ws: &mut EngineWorkspace| {
        crate::gpu_rlb::factor_rlb_gpu_ws(sym, a, opts, crate::gpu_rlb::RlbGpuVersion::V1, ws)
    }
);
gpu_engine!(
    RlbGpuV2Engine,
    Method::RlbGpuV2,
    |sym: &SymbolicFactor, a: &SymCsc, opts: &GpuOptions, ws: &mut EngineWorkspace| {
        crate::gpu_rlb::factor_rlb_gpu_ws(sym, a, opts, crate::gpu_rlb::RlbGpuVersion::V2, ws)
    }
);
gpu_engine!(
    RlGpuPipeEngine,
    Method::RlGpuPipe,
    crate::sched::factor_rl_gpu_pipe_ws
);
gpu_engine!(
    RlbGpuPipeEngine,
    Method::RlbGpuPipe,
    crate::sched::factor_rlb_gpu_pipe_ws
);

/// The registry, in [`Method::ALL`] order.
static ENGINES: [&dyn NumericEngine; 11] = [
    &RlCpuEngine,
    &RlbCpuEngine,
    &RlCpuParEngine,
    &RlbCpuParEngine,
    &LlCpuEngine,
    &MfCpuEngine,
    &RlGpuEngine,
    &RlbGpuV1Engine,
    &RlbGpuV2Engine,
    &RlGpuPipeEngine,
    &RlbGpuPipeEngine,
];

/// Looks up the engine registered for `method`.
pub fn engine_for(method: Method) -> &'static dyn NumericEngine {
    ENGINES
        .iter()
        .copied()
        .find(|e| e.method() == method)
        .expect("every Method variant is registered")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_method() {
        for m in Method::ALL {
            assert_eq!(engine_for(m).method(), m);
        }
        assert_eq!(ENGINES.len(), Method::ALL.len());
    }

    #[test]
    fn workspace_recycles_matching_storage() {
        use rlchol_matgen::laplace2d;
        use rlchol_symbolic::{analyze, SymbolicOptions};

        let a = laplace2d(6, 3);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let mut ws = EngineWorkspace::default();
        let first = ws.take_factor(&sym, &ap);
        let ptr = first.sn[0].as_ptr();
        ws.recycle(first);
        let second = ws.take_factor(&sym, &ap);
        assert_eq!(second.sn[0].as_ptr(), ptr, "storage must be reused");
        assert_eq!(second, FactorData::load(&sym, &ap));
        // A shape mismatch falls back to fresh allocation.
        let b = laplace2d(7, 3);
        let sym_b = analyze(&b, &SymbolicOptions::default());
        let bp = b.permute(&sym_b.perm);
        ws.recycle(second);
        let third = ws.take_factor(&sym_b, &bp);
        assert_eq!(third, FactorData::load(&sym_b, &bp));
    }
}
