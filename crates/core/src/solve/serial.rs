//! Serial supernodal triangular sweeps — the reference arithmetic.
//!
//! Every other solve path in the subsystem (the level-set sweeps in
//! [`super::levelset`], the blocked multi-RHS variants) is defined as
//! "bit-identical to this module": per solution entry, the same
//! floating-point operations in the same order. These functions are also
//! the production path for small systems and single-lane configurations,
//! where the level-set machinery is pure overhead.

use rlchol_symbolic::SymbolicFactor;

use crate::storage::FactorData;

/// Forward substitution `L y = b`, in place.
pub fn solve_forward(sym: &SymbolicFactor, f: &FactorData, b: &mut [f64]) {
    assert_eq!(b.len(), sym.n);
    for s in 0..sym.nsup() {
        let first = sym.sn.first_col(s);
        let c = sym.sn_ncols(s);
        let len = sym.sn_len(s);
        let arr = &f.sn[s];
        // Dense forward solve on the diagonal block.
        rlchol_dense::trsv_ln(c, arr, len, &mut b[first..first + c]);
        // Propagate into below-diagonal rows: b[rows] -= L21 · y.
        let rows = &sym.rows[s];
        for lc in 0..c {
            let yj = b[first + lc];
            if yj == 0.0 {
                continue;
            }
            let col = &arr[lc * len + c..(lc + 1) * len];
            for (pos, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    b[rows[pos]] -= v * yj;
                }
            }
        }
    }
}

/// Backward substitution `Lᵀ x = y`, in place.
pub fn solve_backward(sym: &SymbolicFactor, f: &FactorData, b: &mut [f64]) {
    assert_eq!(b.len(), sym.n);
    for s in (0..sym.nsup()).rev() {
        let first = sym.sn.first_col(s);
        let c = sym.sn_ncols(s);
        let len = sym.sn_len(s);
        let arr = &f.sn[s];
        let rows = &sym.rows[s];
        // Gather below-diagonal contributions, then solve the block.
        for lc in (0..c).rev() {
            let col = &arr[lc * len..(lc + 1) * len];
            let mut acc = b[first + lc];
            for li in lc + 1..c {
                acc -= col[li] * b[first + li];
            }
            for (pos, &v) in col[c..].iter().enumerate() {
                if v != 0.0 {
                    acc -= v * b[rows[pos]];
                }
            }
            b[first + lc] = acc / col[lc];
        }
    }
}

/// Full solve `(L Lᵀ) x = b` in factor ordering; returns `x`.
pub fn solve(sym: &SymbolicFactor, f: &FactorData, b: &[f64]) -> Vec<f64> {
    let mut x = b.to_vec();
    solve_forward(sym, f, &mut x);
    solve_backward(sym, f, &mut x);
    x
}

/// Forward substitution for `nrhs` right-hand sides stored column-major
/// in `b` (leading dimension `n`): the diagonal-block solves become
/// level-3 TRSM calls, the propagation a GEMM-shaped loop.
pub fn solve_forward_multi(sym: &SymbolicFactor, f: &FactorData, b: &mut [f64], nrhs: usize) {
    let n = sym.n;
    assert_eq!(b.len(), n * nrhs);
    for s in 0..sym.nsup() {
        let first = sym.sn.first_col(s);
        let c = sym.sn_ncols(s);
        let len = sym.sn_len(s);
        let arr = &f.sn[s];
        let rows = &sym.rows[s];
        for rhs in 0..nrhs {
            let col = &mut b[rhs * n..(rhs + 1) * n];
            rlchol_dense::trsv_ln(c, arr, len, &mut col[first..first + c]);
            for lc in 0..c {
                let yj = col[first + lc];
                if yj == 0.0 {
                    continue;
                }
                let lcol = &arr[lc * len + c..(lc + 1) * len];
                for (pos, &v) in lcol.iter().enumerate() {
                    if v != 0.0 {
                        col[rows[pos]] -= v * yj;
                    }
                }
            }
        }
    }
}

/// Backward substitution for `nrhs` column-major right-hand sides,
/// blocked like the forward sweep: one pass over the supernodes
/// (outer), all right-hand sides inside (inner), so each supernode's
/// panel is read once per sweep instead of once per RHS. Per-column
/// arithmetic order is identical to [`solve_backward`], so results are
/// bit-identical to solving each RHS alone.
pub fn solve_backward_multi(sym: &SymbolicFactor, f: &FactorData, b: &mut [f64], nrhs: usize) {
    let n = sym.n;
    assert_eq!(b.len(), n * nrhs);
    for s in (0..sym.nsup()).rev() {
        let first = sym.sn.first_col(s);
        let c = sym.sn_ncols(s);
        let len = sym.sn_len(s);
        let arr = &f.sn[s];
        let rows = &sym.rows[s];
        for rhs in 0..nrhs {
            let col = &mut b[rhs * n..(rhs + 1) * n];
            for lc in (0..c).rev() {
                let lcol = &arr[lc * len..(lc + 1) * len];
                let mut acc = col[first + lc];
                for li in lc + 1..c {
                    acc -= lcol[li] * col[first + li];
                }
                for (pos, &v) in lcol[c..].iter().enumerate() {
                    if v != 0.0 {
                        acc -= v * col[rows[pos]];
                    }
                }
                col[first + lc] = acc / lcol[lc];
            }
        }
    }
}

/// Full multi-RHS solve; `b` holds `nrhs` columns of length `n`.
pub fn solve_multi(sym: &SymbolicFactor, f: &FactorData, b: &[f64], nrhs: usize) -> Vec<f64> {
    let mut x = b.to_vec();
    solve_forward_multi(sym, f, &mut x, nrhs);
    solve_backward_multi(sym, f, &mut x, nrhs);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn check_solve(a: &rlchol_sparse::SymCsc, tol: f64) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rl_cpu(&sym, &ap).unwrap();
        let n = a.n();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut b = vec![0.0; n];
        ap.matvec(&x_true, &mut b);
        let x = solve(&sym, &run.factor, &b);
        let err = x
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |m, (&p, &q)| m.max((p - q).abs()));
        assert!(err < tol, "solve error {err}");
    }

    #[test]
    fn solves_2d_problem() {
        check_solve(&laplace2d(9, 1), 1e-9);
    }

    #[test]
    fn solves_3d_problem() {
        check_solve(&grid3d(5, 4, 3, Stencil::Star7, 2, 2), 1e-9);
    }

    #[test]
    fn multi_rhs_matches_single_rhs() {
        let a = laplace2d(7, 8);
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rl_cpu(&sym, &ap).unwrap();
        let n = a.n();
        let nrhs = 3;
        let b: Vec<f64> = (0..n * nrhs)
            .map(|i| ((i * 29) % 23) as f64 - 11.0)
            .collect();
        let x_multi = solve_multi(&sym, &run.factor, &b, nrhs);
        for rhs in 0..nrhs {
            let x_single = solve(&sym, &run.factor, &b[rhs * n..(rhs + 1) * n]);
            for i in 0..n {
                assert!(
                    (x_multi[rhs * n + i] - x_single[i]).abs() < 1e-12,
                    "rhs {rhs} entry {i}"
                );
            }
        }
    }

    #[test]
    fn forward_then_backward_is_identity_on_identity_factor() {
        // A diagonal matrix with unit diagonal: L = I, solves are no-ops.
        let mut t = rlchol_sparse::TripletMatrix::new(4, 4);
        for j in 0..4 {
            t.push(j, j, 1.0);
        }
        let a = rlchol_sparse::SymCsc::from_lower_triplets(&t).unwrap();
        let sym = analyze(&a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        let run = factor_rl_cpu(&sym, &ap).unwrap();
        let b = vec![3.0, -1.0, 2.0, 0.5];
        let x = solve(&sym, &run.factor, &b);
        assert_eq!(x, b);
    }
}
