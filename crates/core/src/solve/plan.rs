//! The solve plan: level sets and gather segments, computed once per
//! symbolic factorization.
//!
//! Triangular solves carry the same dependency structure as the numeric
//! factorization (the frontier driver in [`crate::sched::driver`]): in
//! the forward sweep `L y = b`, supernode `s` may finish its columns of
//! `y` only after every descendant that updates those columns has
//! produced its own entries; the backward sweep `Lᵀ x = y` reverses the
//! edges. Grouping supernodes by their longest-path depth over those
//! edges yields *level sets* — all supernodes of one level are mutually
//! independent and can be solved concurrently, with a barrier between
//! levels (the classic level-scheduled triangular solve).
//!
//! The plan also rewrites the forward sweep from the serial *scatter*
//! orientation (a finished supernode pushes `−L₂₁ y` into ancestor
//! entries) into a *gather* orientation: each supernode pulls the
//! contributions of its already-finished descendants before solving its
//! own diagonal block. Gathering confines every write of a task to its
//! own column range — disjoint within a level — while reproducing the
//! serial arithmetic exactly: per entry, contributions still arrive in
//! ascending source-supernode order, column by column (see
//! [`GatherSeg`]). That is what makes the parallel sweeps bit-identical
//! to [`super::serial`].
//!
//! Everything here depends only on the sparsity pattern, so
//! [`SolvePlan::build`] runs once inside `CholeskySolver::analyze` and
//! the plan is cached on the `SymbolicCholesky` handle alongside the
//! symbolic factor.

use rlchol_symbolic::SymbolicFactor;

use crate::assemble::{segments, Segment};

/// One contiguous run of a source supernode's below-diagonal rows that
/// lands in a single target supernode's columns: positions
/// `lo..hi` of `sym.rows[src]`. The forward gather of a target replays
/// its incoming segments in ascending `src` order, which matches the
/// serial scatter's ascending processing order entry for entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherSeg {
    /// Source (descendant) supernode.
    pub src: usize,
    /// First row position of the run in `sym.rows[src]`.
    pub lo: usize,
    /// One past the last row position.
    pub hi: usize,
}

/// Level sets of the supernodal elimination structure plus the
/// per-supernode incoming gather segments and per-level work-balanced
/// slice boundaries — everything the level-set sweeps need, computed
/// once from the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolvePlan {
    /// `order[level_ptr[l]..level_ptr[l + 1]]` are the supernodes of
    /// level `l`, ascending. Level 0 holds the forest's leaves; the
    /// forward sweep walks levels ascending, the backward sweep
    /// descending.
    level_ptr: Vec<usize>,
    /// Supernodes grouped by level (see `level_ptr`).
    order: Vec<usize>,
    /// Prefix sums of the per-supernode work estimate, aligned with
    /// `order` (`cost_prefix.len() == order.len() + 1`). Slicing a level
    /// into `k` equal-cost chunks is a binary search here, so the
    /// parallel sweeps can balance work without allocating.
    cost_prefix: Vec<u64>,
    /// CSR over supernodes into `in_segs`: the incoming gather segments
    /// of supernode `s` are `in_segs[in_ptr[s]..in_ptr[s + 1]]`, sorted
    /// by ascending source.
    in_ptr: Vec<usize>,
    in_segs: Vec<GatherSeg>,
    /// CSR over supernodes into `out_list`: the targets supernode `s`
    /// updates (its forward-sweep dependents) are
    /// `out_list[out_ptr[s]..out_ptr[s + 1]]`, ascending. The transpose
    /// of the `in_ptr`/`in_segs` edge set, used by the asynchronous
    /// (counter-dispatched) sweeps to release work without a level
    /// barrier.
    out_ptr: Vec<usize>,
    out_list: Vec<usize>,
    /// Widest level (1 on path-shaped trees — nothing to parallelize).
    max_width: usize,
}

impl SolvePlan {
    /// Computes the plan for `sym`'s elimination structure.
    pub fn build(sym: &SymbolicFactor) -> SolvePlan {
        Self::build_par(sym, 1)
    }

    /// [`build`](Self::build) with the per-supernode gather-segment
    /// extraction — the dominant cost, a scan of every supernode's row
    /// list — fanned out over the persistent pool. The level and fill
    /// passes then replay serially from the precomputed lists;
    /// `segments` is a pure function of `(sym, s)` and the passes consume
    /// its output in the same order as [`build`], so the plan is
    /// identical for every `threads`.
    pub fn build_par(sym: &SymbolicFactor, threads: usize) -> SolvePlan {
        let nsup = sym.nsup();
        let segs: Vec<Vec<Segment>> = if threads > 1 && nsup >= 2 * threads {
            let mut segs: Vec<Vec<Segment>> = Vec::with_capacity(nsup);
            segs.resize_with(nsup, Vec::new);
            let chunk = nsup.div_ceil(threads);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = segs
                .chunks_mut(chunk)
                .enumerate()
                .map(|(t, slot)| {
                    let base = t * chunk;
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        for (off, dst) in slot.iter_mut().enumerate() {
                            *dst = segments(sym, base + off);
                        }
                    });
                    task
                })
                .collect();
            rlchol_dense::pool::global().run(tasks);
            segs
        } else {
            (0..nsup).map(|s| segments(sym, s)).collect()
        };
        // Longest-path depth: every updater finishes strictly before its
        // target, so one ascending pass suffices (sources precede their
        // targets in the postordered supernode numbering).
        let mut level = vec![0usize; nsup];
        let mut in_counts = vec![0usize; nsup];
        for (s, list) in segs.iter().enumerate() {
            for seg in list {
                level[seg.target] = level[seg.target].max(level[s] + 1);
                in_counts[seg.target] += 1;
            }
        }
        let nlev = level.iter().map(|&l| l + 1).max().unwrap_or(0);

        // Counting sort into level groups; ascending `s` within a level
        // falls out of the stable fill order.
        let mut level_ptr = vec![0usize; nlev + 1];
        for &l in &level {
            level_ptr[l + 1] += 1;
        }
        for l in 0..nlev {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut order = vec![0usize; nsup];
        let mut fill = level_ptr.clone();
        for (s, &l) in level.iter().enumerate() {
            order[fill[l]] = s;
            fill[l] += 1;
        }
        let max_width = (0..nlev)
            .map(|l| level_ptr[l + 1] - level_ptr[l])
            .max()
            .unwrap_or(0);

        // Incoming gather segments (CSR), ascending source per target.
        let mut in_ptr = vec![0usize; nsup + 1];
        for (s, &c) in in_counts.iter().enumerate() {
            in_ptr[s + 1] = in_ptr[s] + c;
        }
        let mut in_segs = vec![
            GatherSeg {
                src: 0,
                lo: 0,
                hi: 0
            };
            in_ptr[nsup]
        ];
        let mut fill = in_ptr.clone();
        let mut gather_cost = vec![0u64; nsup];
        let mut out_ptr = vec![0usize; nsup + 1];
        let mut out_list = Vec::with_capacity(in_ptr[nsup]);
        for s in 0..nsup {
            let c = sym.sn_ncols(s) as u64;
            for seg in &segs[s] {
                in_segs[fill[seg.target]] = GatherSeg {
                    src: s,
                    lo: seg.lo,
                    hi: seg.hi,
                };
                fill[seg.target] += 1;
                gather_cost[seg.target] += (seg.hi - seg.lo) as u64 * c;
                // Targets come out of `segments` ascending, and the
                // outer loop ascends in `s`, so `out_list` is CSR with
                // ascending targets per source.
                out_list.push(seg.target);
            }
            out_ptr[s + 1] = out_list.len();
        }

        // Work estimate per supernode: its own panel entries (the
        // triangular solve / backward gather touches all of them) plus
        // the forward gather's incoming entries.
        let mut cost_prefix = vec![0u64; nsup + 1];
        for (pos, &s) in order.iter().enumerate() {
            let own = (sym.sn_ncols(s) * sym.sn_len(s)) as u64;
            cost_prefix[pos + 1] = cost_prefix[pos] + own.max(1) + gather_cost[s];
        }

        SolvePlan {
            level_ptr,
            order,
            cost_prefix,
            in_ptr,
            in_segs,
            out_ptr,
            out_list,
            max_width,
        }
    }

    /// Number of level sets (the tree height in supernodes; 0 for an
    /// empty matrix).
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Supernodes of the widest level.
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Heap bytes of the cached plan (level pointers, order, cost
    /// prefix, the gather-segment CSR and its transpose).
    pub fn memory_bytes(&self) -> u64 {
        let usz = std::mem::size_of::<usize>() as u64;
        (self.level_ptr.len()
            + self.order.len()
            + self.in_ptr.len()
            + self.out_ptr.len()
            + self.out_list.len()) as u64
            * usz
            + self.cost_prefix.len() as u64 * std::mem::size_of::<u64>() as u64
            + self.in_segs.len() as u64 * std::mem::size_of::<GatherSeg>() as u64
    }

    /// The supernodes of level `l`, ascending.
    pub fn level(&self, l: usize) -> &[usize] {
        &self.order[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// All supernodes in level order (positions index this slice).
    pub(crate) fn order(&self) -> &[usize] {
        &self.order
    }

    /// Incoming gather segments of supernode `s`, ascending by source.
    pub(crate) fn incoming(&self, s: usize) -> &[GatherSeg] {
        &self.in_segs[self.in_ptr[s]..self.in_ptr[s + 1]]
    }

    /// The supernodes `s` updates (its forward-sweep dependents),
    /// ascending. In the backward sweep the edges reverse: these are the
    /// supernodes `s` waits on.
    pub(crate) fn dependents(&self, s: usize) -> &[usize] {
        &self.out_list[self.out_ptr[s]..self.out_ptr[s + 1]]
    }

    /// Forward-sweep dependency count of supernode `s` (incoming edges);
    /// zero for leaves, which the asynchronous sweep seeds with.
    pub(crate) fn in_degree(&self, s: usize) -> usize {
        self.in_ptr[s + 1] - self.in_ptr[s]
    }

    /// Backward-sweep dependency count of supernode `s` (its dependents
    /// in the forward orientation); zero for roots.
    pub(crate) fn out_degree(&self, s: usize) -> usize {
        self.out_ptr[s + 1] - self.out_ptr[s]
    }

    /// Position range (into [`order`](Self::order)) of chunk `j` of `k`
    /// equal-cost chunks of level `l`. Chunks partition the level; some
    /// may be empty when costs are skewed. Every caller computing the
    /// same `(l, j, k)` gets the same bounds, so concurrent chunk tasks
    /// need no shared state.
    pub(crate) fn chunk_bounds(&self, l: usize, j: usize, k: usize) -> (usize, usize) {
        let lo = self.level_ptr[l];
        let hi = self.level_ptr[l + 1];
        let base = self.cost_prefix[lo];
        let total = self.cost_prefix[hi] - base;
        let k64 = k as u64;
        let bound = |j: usize| -> usize {
            let t = j as u64 * total;
            lo + self.cost_prefix[lo..hi].partition_point(|&p| (p - base) * k64 < t)
        };
        (bound(j), bound(j + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};
    use rlchol_ordering::{order, OrderingMethod};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn plan_for(a: &rlchol_sparse::SymCsc) -> (SymbolicFactor, SolvePlan) {
        let fill = order(a, OrderingMethod::NestedDissection);
        let af = a.permute(&fill);
        let sym = analyze(&af, &SymbolicOptions::default());
        let plan = SolvePlan::build(&sym);
        (sym, plan)
    }

    #[test]
    fn levels_partition_supernodes_and_respect_dependencies() {
        let a = grid3d(6, 5, 4, Stencil::Star7, 1, 3);
        let (sym, plan) = plan_for(&a);
        let mut level_of = vec![usize::MAX; sym.nsup()];
        let mut seen = 0usize;
        for l in 0..plan.num_levels() {
            for &s in plan.level(l) {
                assert_eq!(level_of[s], usize::MAX, "supernode {s} listed twice");
                level_of[s] = l;
                seen += 1;
            }
        }
        assert_eq!(seen, sym.nsup());
        // Every incoming source finished on a strictly earlier level,
        // and sources are ascending per target.
        for s in 0..sym.nsup() {
            let mut prev_src = None;
            for seg in plan.incoming(s) {
                assert!(seg.lo < seg.hi);
                assert!(
                    level_of[seg.src] < level_of[s],
                    "src {} level {} vs target {s} level {}",
                    seg.src,
                    level_of[seg.src],
                    level_of[s]
                );
                assert!(prev_src < Some(seg.src), "sources must ascend");
                prev_src = Some(seg.src);
                // The segment's rows all live in s's column range.
                let first = sym.sn.first_col(s);
                let end = first + sym.sn_ncols(s);
                for pos in seg.lo..seg.hi {
                    let row = sym.rows[seg.src][pos];
                    assert!(row >= first && row < end);
                }
            }
        }
    }

    #[test]
    fn incoming_segments_cover_every_below_diagonal_row_once() {
        let a = laplace2d(13, 4);
        let (sym, plan) = plan_for(&a);
        let mut covered: Vec<Vec<bool>> = (0..sym.nsup())
            .map(|s| vec![false; sym.rows[s].len()])
            .collect();
        for s in 0..sym.nsup() {
            for seg in plan.incoming(s) {
                for pos in seg.lo..seg.hi {
                    assert!(!covered[seg.src][pos], "row position claimed twice");
                    covered[seg.src][pos] = true;
                }
            }
        }
        for (s, c) in covered.iter().enumerate() {
            assert!(c.iter().all(|&b| b), "supernode {s} rows not all gathered");
        }
    }

    #[test]
    fn chunk_bounds_partition_each_level() {
        let a = grid3d(5, 5, 5, Stencil::Star7, 1, 8);
        let (_, plan) = plan_for(&a);
        for l in 0..plan.num_levels() {
            for k in [1usize, 2, 3, 7] {
                let mut expect = plan.chunk_bounds(l, 0, k).0;
                for j in 0..k {
                    let (lo, hi) = plan.chunk_bounds(l, j, k);
                    assert_eq!(lo, expect, "level {l} chunk {j} of {k}");
                    assert!(hi >= lo);
                    expect = hi;
                }
                let whole = plan.level(l).len();
                let first = plan.chunk_bounds(l, 0, k).0;
                assert_eq!(expect - first, whole, "level {l} k {k} must cover");
            }
        }
    }

    #[test]
    fn dependents_transpose_the_incoming_edges() {
        let a = grid3d(5, 5, 4, Stencil::Star7, 1, 7);
        let (sym, plan) = plan_for(&a);
        // Every incoming edge (src → s) appears exactly once in
        // src's dependents, and degrees agree with the CSR extents.
        let mut expect: Vec<Vec<usize>> = vec![Vec::new(); sym.nsup()];
        for s in 0..sym.nsup() {
            assert_eq!(plan.in_degree(s), plan.incoming(s).len());
            for seg in plan.incoming(s) {
                expect[seg.src].push(s);
            }
        }
        for s in 0..sym.nsup() {
            assert_eq!(plan.dependents(s), expect[s].as_slice(), "supernode {s}");
            assert_eq!(plan.out_degree(s), expect[s].len());
            assert!(
                plan.dependents(s).windows(2).all(|w| w[0] < w[1]),
                "dependents of {s} must ascend"
            );
        }
    }

    #[test]
    fn nd_ordered_grid_has_bushy_levels() {
        // The property the parallel sweeps rely on: a 3-D grid under
        // nested dissection has levels wider than one supernode.
        let a = grid3d(7, 7, 7, Stencil::Star7, 1, 5);
        let (_, plan) = plan_for(&a);
        assert!(plan.max_width() > 1, "ND grid3d must have parallel width");
        assert!(plan.num_levels() > 1);
    }

    #[test]
    fn parallel_build_matches_serial_exactly() {
        for (a, tag) in [
            (grid3d(6, 5, 4, Stencil::Star7, 1, 3), "grid"),
            (laplace2d(17, 4), "laplace"),
        ] {
            let fill = order(&a, OrderingMethod::NestedDissection);
            let af = a.permute(&fill);
            let sym = analyze(&af, &SymbolicOptions::default());
            let serial = SolvePlan::build(&sym);
            for threads in [1usize, 2, 4, 8] {
                assert_eq!(
                    SolvePlan::build_par(&sym, threads),
                    serial,
                    "{tag} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_matrix_yields_empty_plan() {
        let t = rlchol_sparse::TripletMatrix::new(0, 0);
        let a = rlchol_sparse::SymCsc::from_lower_triplets(&t).unwrap();
        let sym = analyze(&a, &SymbolicOptions::default());
        let plan = SolvePlan::build(&sym);
        assert_eq!(plan.num_levels(), 0);
        assert_eq!(plan.max_width(), 0);
    }
}
