//! Planned supernodal triangular solves — the "use the factors to
//! compute the solution" half of the pipeline, as a subsystem.
//!
//! Once factorization scales across threads and streams and the staged
//! API amortizes analysis over many factor/solve calls, the serial
//! forward/backward substitution is the last serial stage on the
//! repeated-solve hot path. This module splits the solve path into
//! three layers:
//!
//! * [`plan`] — the [`SolvePlan`]: level sets of supernodes derived
//!   from the elimination-tree dependency structure (the same structure
//!   the [frontier driver](crate::sched::driver) schedules the numeric
//!   factorization with), the per-supernode incoming *gather* segments
//!   that re-orient the forward sweep so parallel tasks write disjoint
//!   entries, and per-level equal-cost slice boundaries. Pattern-only:
//!   computed once in `CholeskySolver::analyze`, cached on the
//!   `SymbolicCholesky` handle.
//! * [`serial`] — the reference sweeps (single and blocked multi-RHS).
//!   Production path for small systems and single-lane configurations,
//!   and the bit-for-bit specification of every parallel path.
//! * [`levelset`] — the tree-parallel sweeps: each level's supernodes
//!   are dispatched onto [`rlchol_dense::pool`] through the
//!   allocation-free `run_for` parallel-for, with a barrier between
//!   levels. **Bit-identical to the serial sweeps at any thread count**
//!   (disjoint-target writes within a level; no reassociation), and
//!   zero-allocation after warm-up, like the rest of the staged solve
//!   path. The same module also hosts the **asynchronous** sweeps
//!   ([`solve_forward_async`] / [`solve_backward_async`]): per-supernode
//!   dependency counters instead of level barriers, the solve-side
//!   analogue of the factorization's out-of-order retirement, selected
//!   by the staged layer whenever the handle resolved
//!   [`RetireMode::Ooo`](crate::engine::RetireMode) — still bit-identical
//!   at any thread count.
//!
//! Path selection lives in the staged layer
//! ([`SymbolicCholesky`](crate::SymbolicCholesky)): an explicit
//! `SolverOptions::solve_threads` wins, else the
//! **`RLCHOL_SOLVE_THREADS`** environment variable, else an automatic
//! heuristic (parallel only when the pool has lanes, the tree has level
//! width, and the system is big enough to beat the barrier overhead).
//! [`SolveInfo`] reports the decision alongside the plan shape.

pub mod levelset;
pub mod plan;
pub mod serial;

pub use levelset::{
    solve_backward_async, solve_backward_level_set, solve_forward_async, solve_forward_level_set,
};
pub use plan::SolvePlan;
pub use serial::{
    solve, solve_backward, solve_backward_multi, solve_forward, solve_forward_multi, solve_multi,
};

/// Systems below this dimension always take the serial path under
/// automatic selection: a level barrier costs roughly a condvar
/// round-trip, which a small triangular solve cannot amortize.
pub(crate) const AUTO_MIN_N: usize = 512;

/// How the planned solve path will run for one handle — the solve-side
/// analogue of [`FactorInfo`](crate::registry::FactorInfo). Produced by
/// `SymbolicCholesky::solve_info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveInfo {
    /// Level sets in the plan (the supernodal tree height).
    pub levels: usize,
    /// Supernodes in the widest level (1 on path-shaped trees: no
    /// parallelism to exploit).
    pub max_width: usize,
    /// Resolved lane count the sweeps will use.
    pub threads: usize,
    /// Whether solves take the level-set (tree-parallel) path; `false`
    /// means the serial sweeps.
    pub level_set: bool,
    /// Whether the parallel path dispatches asynchronously by dependency
    /// counters (no level barrier) instead of barriered level sets.
    /// Follows the handle's resolved retirement mode; only meaningful
    /// when [`level_set`](Self::level_set) is set.
    pub async_dispatch: bool,
}

/// `RLCHOL_SOLVE_THREADS` if set to a positive integer.
pub(crate) fn env_solve_threads() -> Option<usize> {
    crate::engine::env_positive("RLCHOL_SOLVE_THREADS")
}
