//! Level-set (tree-parallel) and asynchronous (counter-dispatched)
//! triangular sweeps.
//!
//! Each level of the [`SolvePlan`] is dispatched onto the persistent
//! [`rlchol_dense::pool`] through its allocation-free
//! [`run_for`](rlchol_dense::pool::ThreadPool::run_for) parallel-for:
//! the level is cut into up to `threads` equal-cost chunks (boundaries
//! precomputed as prefix sums in the plan, resolved by binary search —
//! no per-call allocation), one task per chunk, and `run_for`'s
//! completion is the barrier before the next level. The sweeps are
//! therefore **zero-allocation** after pool warm-up, like the serial
//! path they replace.
//!
//! The **asynchronous sweeps** ([`solve_forward_async`] /
//! [`solve_backward_async`]) drop the per-level barrier entirely — the
//! solve-side analogue of the factorization's out-of-order retirement
//! ([`crate::sched::gpu`]). Each supernode carries an atomic dependency
//! counter seeded from the plan ([`SolvePlan::in_degree`] forward,
//! [`SolvePlan::out_degree`] backward); finishing a supernode
//! decrements its dependents' counters and pushes any that reach zero
//! onto a shared ready stack, so a worker never waits at a level
//! boundary for an unrelated subtree — a deep chain and a wide bushel
//! of leaves proceed concurrently. Writes stay confined to each
//! supernode's own columns and each gather still applies in ascending
//! source order, so the result is **bit-identical** to the serial
//! sweeps at any thread count, like the barriered path. The counters
//! and the stack cost one `O(nsup)` allocation per sweep.
//!
//! **Bit-identity.** A task writes only the solution entries of its own
//! supernodes' columns — the forward sweep *gathers* descendant
//! contributions (see [`super::plan`]) instead of scattering into
//! ancestors, and the backward sweep is a gather already — so writes
//! within a level are disjoint and no arithmetic is reassociated:
//! per entry, contributions apply in ascending source order, column by
//! column, exactly as [`super::serial`] applies them. Any thread count
//! (and any chunking) produces the serial bits.
//!
//! Safety: tasks share the right-hand-side block through a raw pointer
//! ([`SharedCols`]) because chunk tasks *read* entries finalized on
//! earlier levels while *writing* their own disjoint ranges — a borrow
//! the slice type system cannot express. The two invariants that make
//! it sound (disjoint writes within a level, reads only of
//! earlier-level entries, ordered by the `run_for` barrier) are
//! documented at each access site.

use rlchol_symbolic::SymbolicFactor;

use crate::storage::FactorData;

use super::plan::SolvePlan;

/// A column-major `n × nrhs` right-hand-side block shared across chunk
/// tasks of one level. All access goes through raw-pointer arithmetic so
/// concurrent tasks never materialize overlapping `&mut` slices.
#[derive(Clone, Copy)]
struct SharedCols {
    p: *mut f64,
    len: usize,
}

// SAFETY: the sweeps only hand a `SharedCols` to tasks whose writes are
// disjoint within a level (each supernode's columns belong to exactly
// one task) and whose reads target entries finalized before the level
// started (the `run_for` barrier provides the happens-before edge).
unsafe impl Send for SharedCols {}
unsafe impl Sync for SharedCols {}

impl SharedCols {
    /// # Safety
    /// `i < self.len`, and no concurrent task writes entry `i`.
    unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        *self.p.add(i)
    }

    /// # Safety
    /// `i < self.len`, and entry `i` belongs to the calling task's own
    /// supernode columns (no other task touches it this level).
    unsafe fn sub(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        *self.p.add(i) -= v;
    }

    /// # Safety
    /// As for [`sub`](Self::sub).
    unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        *self.p.add(i) = v;
    }

    /// # Safety
    /// `[at, at + n)` is in bounds and owned exclusively by the calling
    /// task for the duration of the borrow.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, at: usize, n: usize) -> &mut [f64] {
        debug_assert!(at + n <= self.len);
        std::slice::from_raw_parts_mut(self.p.add(at), n)
    }
}

/// Level-scheduled forward substitution `L Y = B` in place, for `nrhs`
/// column-major right-hand sides (`b.len() == n * nrhs`). Bit-identical
/// to [`super::serial::solve_forward`] (`nrhs == 1`) /
/// [`super::serial::solve_forward_multi`] at any `threads`.
pub fn solve_forward_level_set(
    sym: &SymbolicFactor,
    plan: &SolvePlan,
    f: &FactorData,
    b: &mut [f64],
    nrhs: usize,
    threads: usize,
) {
    let n = sym.n;
    assert_eq!(b.len(), n * nrhs);
    let threads = threads.max(1);
    let cols = SharedCols {
        p: b.as_mut_ptr(),
        len: b.len(),
    };
    let pool = rlchol_dense::pool::global();
    for l in 0..plan.num_levels() {
        let level = plan.level(l);
        let k = level.len().min(threads);
        if k <= 1 {
            for &s in level {
                // SAFETY: single task this level — trivially exclusive.
                unsafe { forward_supernode(sym, plan, f, &cols, n, nrhs, s) };
            }
        } else {
            pool.run_for(k, &|j| {
                let (lo, hi) = plan.chunk_bounds(l, j, k);
                for pos in lo..hi {
                    // SAFETY: chunk bounds partition the level, so this
                    // task exclusively owns its supernodes' columns;
                    // gathered reads touch levels < l only.
                    unsafe { forward_supernode(sym, plan, f, &cols, n, nrhs, plan.order()[pos]) };
                }
            });
        }
    }
}

/// Level-scheduled backward substitution `Lᵀ X = Y` in place (levels
/// descending — roots first). Bit-identical to
/// [`super::serial::solve_backward`] /
/// [`super::serial::solve_backward_multi`] at any `threads`.
pub fn solve_backward_level_set(
    sym: &SymbolicFactor,
    plan: &SolvePlan,
    f: &FactorData,
    b: &mut [f64],
    nrhs: usize,
    threads: usize,
) {
    let n = sym.n;
    assert_eq!(b.len(), n * nrhs);
    let threads = threads.max(1);
    let cols = SharedCols {
        p: b.as_mut_ptr(),
        len: b.len(),
    };
    let pool = rlchol_dense::pool::global();
    for l in (0..plan.num_levels()).rev() {
        let level = plan.level(l);
        let k = level.len().min(threads);
        if k <= 1 {
            for &s in level {
                // SAFETY: single task this level — trivially exclusive.
                unsafe { backward_supernode(sym, f, &cols, n, nrhs, s) };
            }
        } else {
            pool.run_for(k, &|j| {
                let (lo, hi) = plan.chunk_bounds(l, j, k);
                for pos in lo..hi {
                    // SAFETY: disjoint own-column writes within the
                    // level; ancestor reads were finalized on levels
                    // > l, sequenced by the run_for barrier.
                    unsafe { backward_supernode(sym, f, &cols, n, nrhs, plan.order()[pos]) };
                }
            });
        }
    }
}

/// Asynchronous forward substitution `L Y = B` in place: supernodes
/// dispatch as their dependency counters drain, with no level barrier.
/// Bit-identical to [`super::serial::solve_forward`] /
/// [`solve_forward_level_set`] at any `threads`.
pub fn solve_forward_async(
    sym: &SymbolicFactor,
    plan: &SolvePlan,
    f: &FactorData,
    b: &mut [f64],
    nrhs: usize,
    threads: usize,
) {
    let n = sym.n;
    assert_eq!(b.len(), n * nrhs);
    let nsup = sym.nsup();
    let cols = SharedCols {
        p: b.as_mut_ptr(),
        len: b.len(),
    };
    if threads <= 1 || nsup == 0 {
        // Level order is a topological order — the serial walk needs no
        // counters.
        for &s in plan.order() {
            // SAFETY: single caller — trivially exclusive.
            unsafe { forward_supernode(sym, plan, f, &cols, n, nrhs, s) };
        }
        return;
    }
    run_async(
        sym,
        plan,
        threads,
        |s| plan.in_degree(s),
        |s, release| {
            for &p in plan.dependents(s) {
                release(p);
            }
        },
        // SAFETY: the dispatcher hands each supernode to exactly one
        // worker, only after every incoming counter drained — all
        // descendant entries are finalized (release/acquire on the
        // counters plus the ready-stack mutex) and `s`'s own columns
        // belong to this worker alone.
        |s| unsafe { forward_supernode(sym, plan, f, &cols, n, nrhs, s) },
    );
}

/// Asynchronous backward substitution `Lᵀ X = Y` in place: the edge set
/// reverses (a supernode waits on its forward-sweep dependents), again
/// with no level barrier. Bit-identical to
/// [`super::serial::solve_backward`] / [`solve_backward_level_set`] at
/// any `threads`.
pub fn solve_backward_async(
    sym: &SymbolicFactor,
    plan: &SolvePlan,
    f: &FactorData,
    b: &mut [f64],
    nrhs: usize,
    threads: usize,
) {
    let n = sym.n;
    assert_eq!(b.len(), n * nrhs);
    let nsup = sym.nsup();
    let cols = SharedCols {
        p: b.as_mut_ptr(),
        len: b.len(),
    };
    if threads <= 1 || nsup == 0 {
        for &s in plan.order().iter().rev() {
            // SAFETY: single caller — trivially exclusive.
            unsafe { backward_supernode(sym, f, &cols, n, nrhs, s) };
        }
        return;
    }
    run_async(
        sym,
        plan,
        threads,
        |s| plan.out_degree(s),
        |s, release| {
            for seg in plan.incoming(s) {
                release(seg.src);
            }
        },
        // SAFETY: as in the forward sweep, with ancestors in place of
        // descendants — every target `s` updates finished before `s`'s
        // counter drained.
        |s| unsafe { backward_supernode(sym, f, &cols, n, nrhs, s) },
    );
}

/// The shared counter-dispatch loop behind both asynchronous sweeps:
/// seed the ready stack with zero-degree supernodes, then have up to
/// `threads` pool workers pop, process, and release until every
/// supernode retired. Workers spin-yield when the stack is momentarily
/// empty; the `done` count is the only exit.
fn run_async(
    sym: &SymbolicFactor,
    plan: &SolvePlan,
    threads: usize,
    degree: impl Fn(usize) -> usize,
    for_each_dependent: impl Fn(usize, &mut dyn FnMut(usize)) + Sync,
    process: impl Fn(usize) + Sync,
) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let nsup = sym.nsup();
    let deps: Vec<AtomicUsize> = (0..nsup).map(|s| AtomicUsize::new(degree(s))).collect();
    let ready: Mutex<Vec<usize>> = Mutex::new(
        (0..nsup)
            .filter(|&s| deps[s].load(Ordering::Relaxed) == 0)
            .collect(),
    );
    let done = AtomicUsize::new(0);
    let k = threads.min(plan.max_width()).max(1).min(nsup);
    rlchol_dense::pool::global().run_for(k, &|_| loop {
        let next = ready.lock().unwrap().pop();
        let Some(s) = next else {
            if done.load(Ordering::Acquire) >= nsup {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        process(s);
        // Releases chain through the counters: the final decrement of a
        // dependent acquires every earlier worker's writes (RMW release
        // sequence), so the popper sees all of its inputs.
        for_each_dependent(s, &mut |p| {
            if deps[p].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.lock().unwrap().push(p);
            }
        });
        done.fetch_add(1, Ordering::Release);
    });
    debug_assert_eq!(done.load(Ordering::Relaxed), nsup);
}

/// Forward step of one supernode: gather descendant contributions
/// (ascending source, replicating the serial scatter order entry for
/// entry), then the dense triangular solve on the diagonal block.
///
/// # Safety
/// The caller guarantees exclusive ownership of `s`'s column entries in
/// `cols` and that all of `s`'s descendants finished earlier levels.
unsafe fn forward_supernode(
    sym: &SymbolicFactor,
    plan: &SolvePlan,
    f: &FactorData,
    cols: &SharedCols,
    n: usize,
    nrhs: usize,
    s: usize,
) {
    let first = sym.sn.first_col(s);
    let c = sym.sn_ncols(s);
    let len = sym.sn_len(s);
    for seg in plan.incoming(s) {
        let d = seg.src;
        let dfirst = sym.sn.first_col(d);
        let dc = sym.sn_ncols(d);
        let dlen = sym.sn_len(d);
        let darr = &f.sn[d];
        let drows = &sym.rows[d];
        for rhs in 0..nrhs {
            let off = rhs * n;
            for lc in 0..dc {
                let yj = cols.get(off + dfirst + lc);
                if yj == 0.0 {
                    continue;
                }
                let col = &darr[lc * dlen + dc..(lc + 1) * dlen];
                for pos in seg.lo..seg.hi {
                    let v = col[pos];
                    if v != 0.0 {
                        cols.sub(off + drows[pos], v * yj);
                    }
                }
            }
        }
    }
    let arr = &f.sn[s];
    for rhs in 0..nrhs {
        let own = cols.slice_mut(rhs * n + first, c);
        rlchol_dense::trsv_ln(c, arr, len, own);
    }
}

/// Backward step of one supernode — the serial per-supernode body
/// verbatim: writes its own columns, reads finished ancestors.
///
/// # Safety
/// The caller guarantees exclusive ownership of `s`'s column entries in
/// `cols` and that all of `s`'s ancestors finished earlier (higher)
/// levels.
unsafe fn backward_supernode(
    sym: &SymbolicFactor,
    f: &FactorData,
    cols: &SharedCols,
    n: usize,
    nrhs: usize,
    s: usize,
) {
    let first = sym.sn.first_col(s);
    let c = sym.sn_ncols(s);
    let len = sym.sn_len(s);
    let arr = &f.sn[s];
    let rows = &sym.rows[s];
    for rhs in 0..nrhs {
        let off = rhs * n;
        for lc in (0..c).rev() {
            let col = &arr[lc * len..(lc + 1) * len];
            let mut acc = cols.get(off + first + lc);
            for li in lc + 1..c {
                acc -= col[li] * cols.get(off + first + li);
            }
            for (pos, &v) in col[c..].iter().enumerate() {
                if v != 0.0 {
                    acc -= v * cols.get(off + rows[pos]);
                }
            }
            cols.set(off + first + lc, acc / col[lc]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::serial;
    use super::*;
    use crate::rl::factor_rl_cpu;
    use rlchol_matgen::{grid3d, Stencil};
    use rlchol_ordering::{order, OrderingMethod};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    #[test]
    fn level_set_sweeps_match_serial_bitwise() {
        let a0 = grid3d(6, 6, 5, Stencil::Star7, 1, 17);
        let fill = order(&a0, OrderingMethod::NestedDissection);
        let af = a0.permute(&fill);
        let sym = analyze(&af, &SymbolicOptions::default());
        let ap = af.permute(&sym.perm);
        let run = factor_rl_cpu(&sym, &ap).unwrap();
        let plan = SolvePlan::build(&sym);
        assert!(plan.max_width() > 1, "need parallel width to test");
        let n = sym.n;
        for nrhs in [1usize, 3] {
            let b: Vec<f64> = (0..n * nrhs)
                .map(|i| ((i * 23) % 19) as f64 - 9.0)
                .collect();
            let mut reference = b.clone();
            serial::solve_forward_multi(&sym, &run.factor, &mut reference, nrhs);
            serial::solve_backward_multi(&sym, &run.factor, &mut reference, nrhs);
            for threads in [1usize, 2, 4, 8] {
                let mut x = b.clone();
                solve_forward_level_set(&sym, &plan, &run.factor, &mut x, nrhs, threads);
                solve_backward_level_set(&sym, &plan, &run.factor, &mut x, nrhs, threads);
                assert_eq!(x, reference, "threads {threads} nrhs {nrhs}");
                let mut x = b.clone();
                solve_forward_async(&sym, &plan, &run.factor, &mut x, nrhs, threads);
                solve_backward_async(&sym, &plan, &run.factor, &mut x, nrhs, threads);
                assert_eq!(x, reference, "async threads {threads} nrhs {nrhs}");
            }
        }
    }
}
