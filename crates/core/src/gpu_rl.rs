//! GPU-accelerated RL (§III).
//!
//! Per supernode above the size threshold:
//!
//! 1. transfer the supernode to the device (its pending updates were
//!    already assembled into host storage by earlier supernodes);
//! 2. DPOTRF + DTRSM on the device;
//! 3. start the copy-back of the factored supernode **asynchronously** on
//!    a second stream — the host does not need it yet;
//! 4. one coarse DSYRK on the device forms the full update matrix;
//! 5. transfer the update matrix back and assemble it on the host
//!    (OpenMP-parallel in the paper; here the scatter fans out across
//!    `rlchol_dense::pool`, one job per target, with the simulated cost
//!    still taken from the CPU model).
//!
//! Supernodes below the threshold run entirely on the CPU — the transfer
//! cost would exceed their compute time.
//!
//! Device memory: one panel buffer sized for the largest offloaded
//! supernode plus one update buffer sized for the largest update matrix.
//! When that allocation exceeds device capacity the engine fails with
//! [`FactorError::GpuOutOfMemory`] — the nlpkkt120 row of Table I.

use std::time::Instant;

use rlchol_dense::syrk_ln;
use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::SymbolicFactor;

use crate::assemble::assemble_update_pool;
use crate::engine::{factor_panel, GpuOptions, GpuRun};
use crate::error::FactorError;
use crate::registry::EngineWorkspace;

/// Decides which supernodes are offloaded under the threshold rule.
pub fn offload_set(sym: &SymbolicFactor, threshold: usize) -> Vec<bool> {
    (0..sym.nsup())
        .map(|s| sym.sn_size(s) >= threshold.max(1))
        .collect()
}

/// Factors `a` (permuted into factor order) with GPU-accelerated RL.
pub fn factor_rl_gpu(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
) -> Result<GpuRun, FactorError> {
    factor_rl_gpu_ws(sym, a, opts, &mut EngineWorkspace::default())
}

/// [`factor_rl_gpu`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rl_gpu_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    let t0 = Instant::now();
    let ctl = ws.ctl.clone();
    let mut data = ws.take_factor(sym, a);
    let gpu = opts.device();
    gpu.set_blocking(!opts.overlap);
    let compute = gpu.default_stream();
    let copy = gpu.create_stream();
    gpu.set_stream_role(compute, rlchol_gpu::StreamRole::Compute);
    gpu.set_stream_role(copy, rlchol_gpu::StreamRole::Copy);
    let cpu = opts.machine.cpu;

    let on_gpu = offload_set(sym, opts.threshold);
    let sn_on_gpu = on_gpu.iter().filter(|&&b| b).count();

    // Preallocated device working storage (paper §II-A / §III): the
    // largest offloaded panel and the largest update matrix.
    let max_panel = (0..sym.nsup())
        .filter(|&s| on_gpu[s])
        .map(|s| sym.sn_storage(s))
        .max()
        .unwrap_or(0);
    let max_upd = (0..sym.nsup())
        .filter(|&s| on_gpu[s])
        .map(|s| sym.update_matrix_entries(s))
        .max()
        .unwrap_or(0);
    let panel_buf = gpu.alloc(max_panel)?;
    let upd_buf = gpu.alloc(max_upd)?;
    let mut host_upd = vec![0.0f64; max_upd];
    let mut l11 = Vec::new();
    // The previous panel copy-back must finish before the panel buffer is
    // reused by the next supernode's H2D.
    let mut prev_copyback = None;

    for s in 0..sym.nsup() {
        // Deadline/cancel checkpoint: a stalled stream inflates the
        // simulated clock, so a sim budget aborts here instead of
        // grinding through the remaining supernodes.
        ctl.check_sim(gpu.elapsed())?;
        let c = sym.sn_ncols(s);
        let r = sym.sn_nrows_below(s);
        let len = sym.sn_len(s);
        let first = sym.sn.first_col(s);

        if !on_gpu[s] {
            // CPU path: real numerics; host clock advances by model time.
            {
                let arr = &mut data.sn[s];
                factor_panel(arr, len, c, r, &mut l11).map_err(|pivot| {
                    FactorError::NotPositiveDefinite {
                        column: first + pivot,
                    }
                })?;
            }
            gpu.host_compute(
                cpu.op_time(&TraceOp::Potrf { n: c }) + cpu.op_time(&TraceOp::Trsm { m: r, n: c }),
            );
            if r > 0 {
                {
                    let ws = host_upd_grow(&mut host_upd, r);
                    let arr = &data.sn[s];
                    syrk_ln(r, c, 1.0, &arr[c..], len, 0.0, ws, r);
                }
                gpu.host_compute(cpu.op_time(&TraceOp::Syrk { n: r, k: c }));
                let entries = assemble_update_pool(sym, &mut data.sn, s, &host_upd[..r * r], r);
                gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
            }
            continue;
        }

        // --- GPU path ---
        if let Some(ev) = prev_copyback.take() {
            gpu.stream_wait_event(compute, ev);
        }
        gpu.memcpy_h2d(compute, panel_buf, 0, &data.sn[s])?;
        gpu.potrf(compute, panel_buf, 0, c, len)
            .map_err(map_device_pivot(first))?;
        gpu.trsm_panel(compute, panel_buf, 0, len, c, r)?;
        // Asynchronous copy-back of the factored supernode (§III: "this
        // second transfer is asynchronous since the CPU does not
        // immediately require the data").
        let factored = gpu.record_event(compute);
        gpu.stream_wait_event(copy, factored);
        gpu.memcpy_d2h(copy, panel_buf, 0, &mut data.sn[s])?;
        prev_copyback = Some(gpu.record_event(copy));
        if r > 0 {
            // The coarse-grain DSYRK forming the whole update matrix.
            gpu.syrk(compute, panel_buf, c, len, r, c, 1.0, 0.0, upd_buf, 0, r)?;
            gpu.memcpy_d2h(compute, upd_buf, 0, &mut host_upd[..r * r])?;
            // The host needs the update matrix now.
            gpu.sync_stream(compute);
            let entries = assemble_update_pool(sym, &mut data.sn, s, &host_upd[..r * r], r);
            gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
        }
    }
    gpu.synchronize();
    Ok(GpuRun {
        factor: data,
        sim_seconds: gpu.elapsed(),
        stats: gpu.stats(),
        sn_on_gpu,
        streams_used: 1,
        retire: crate::engine::RetireMode::InOrder,
        lookahead: 0,
        transfers_saved: 0,
        wall: t0.elapsed(),
    })
}

/// Ensures the host update workspace can hold an `r x r` matrix (CPU-path
/// supernodes may exceed every *offloaded* supernode's update size).
fn host_upd_grow(buf: &mut Vec<f64>, r: usize) -> &mut [f64] {
    if buf.len() < r * r {
        buf.resize(r * r, 0.0);
    }
    &mut buf[..r * r]
}

/// Maps a device-side POTRF failure to the factorization error type.
pub(crate) fn map_device_pivot(first_col: usize) -> impl Fn(rlchol_gpu::GpuError) -> FactorError {
    move |e| match e {
        rlchol_gpu::GpuError::Numerical(_) => {
            FactorError::NotPositiveDefinite { column: first_col }
        }
        other => other.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use rlchol_matgen::{laplace2d, laplace3d};
    use rlchol_perfmodel::MachineModel;
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn setup(a: &rlchol_sparse::SymCsc) -> (SymbolicFactor, rlchol_sparse::SymCsc) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    #[test]
    fn gpu_factor_matches_cpu_factor() {
        let a = laplace3d(6, 21);
        let (sym, ap) = setup(&a);
        let cpu = factor_rl_cpu(&sym, &ap).unwrap();
        for threshold in [0, 500, usize::MAX] {
            let opts = GpuOptions::with_threshold(threshold);
            let run = factor_rl_gpu(&sym, &ap, &opts).unwrap();
            let diff = cpu.factor.max_rel_diff(&run.factor);
            assert!(diff < 1e-12, "threshold {threshold}: diff {diff}");
        }
    }

    #[test]
    fn threshold_controls_offload_count() {
        let a = laplace3d(6, 22);
        let (sym, ap) = setup(&a);
        let all = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(0)).unwrap();
        assert_eq!(all.sn_on_gpu, sym.nsup());
        let none = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(usize::MAX)).unwrap();
        assert_eq!(none.sn_on_gpu, 0);
        // A threshold strictly between the smallest and largest supernode
        // size must split the set.
        let sizes: Vec<usize> = (0..sym.nsup()).map(|s| sym.sn_size(s)).collect();
        let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(lo < hi, "test matrix must have varied supernode sizes");
        let some = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(hi)).unwrap();
        assert!(some.sn_on_gpu > 0 && some.sn_on_gpu < sym.nsup());
    }

    #[test]
    fn hybrid_beats_gpu_only_on_small_matrices() {
        // A small matrix: pure GPU pays transfers for tiny supernodes;
        // the hybrid keeps them on CPU and must be faster (the paper's
        // motivation for the threshold, §III).
        let a = laplace2d(16, 23);
        let (sym, ap) = setup(&a);
        let gpu_only = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(0)).unwrap();
        let hybrid = factor_rl_gpu(&sym, &ap, &GpuOptions::with_threshold(2_000)).unwrap();
        assert!(
            hybrid.sim_seconds < gpu_only.sim_seconds,
            "hybrid {} vs gpu-only {}",
            hybrid.sim_seconds,
            gpu_only.sim_seconds
        );
    }

    #[test]
    fn oom_when_update_matrix_exceeds_capacity() {
        let a = laplace3d(6, 24);
        let (sym, ap) = setup(&a);
        let mut opts = GpuOptions::with_threshold(0);
        // Capacity below the largest update matrix.
        let need = (sym.max_update_matrix_entries() * 8) as u64;
        opts.machine = MachineModel::perlmutter(16).with_gpu_capacity(need / 2);
        assert!(matches!(
            factor_rl_gpu(&sym, &ap, &opts),
            Err(FactorError::GpuOutOfMemory { .. })
        ));
    }

    #[test]
    fn overlap_helps_or_ties() {
        let a = laplace3d(7, 25);
        let (sym, ap) = setup(&a);
        let mut with = GpuOptions::with_threshold(0);
        with.overlap = true;
        let mut without = with.clone();
        without.overlap = false;
        let t_with = factor_rl_gpu(&sym, &ap, &with).unwrap().sim_seconds;
        let t_without = factor_rl_gpu(&sym, &ap, &without).unwrap().sim_seconds;
        assert!(t_with <= t_without + 1e-12);
    }
}
