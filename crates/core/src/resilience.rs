//! Graceful degradation: fallback chains, retries, deadlines, cancel
//! tokens, and the recovery log.
//!
//! The staged handle ([`SymbolicCholesky`](crate::SymbolicCholesky))
//! composes these around every factorization it runs:
//!
//! 1. a device-side failure marked **transient** is retried on the same
//!    engine up to [`RetryPolicy::max_retries`] times (with optional
//!    backoff);
//! 2. a persistent device failure moves to the next engine of the
//!    [`FallbackChain`], reusing the lane's scattered values;
//! 3. a [`Deadline`] (real wall time and/or simulated seconds) and a
//!    [`CancelToken`] are threaded through the `Frontier` executors as a
//!    [`RunCtl`], so a stalled stream aborts with
//!    [`FactorError::DeadlineExceeded`] instead of hanging.
//!
//! Every recovery step is recorded as a [`RecoveryEvent`] in
//! [`FactorInfo::recovery`](crate::registry::FactorInfo::recovery).
//! Data errors ([`FactorError::NotPositiveDefinite`],
//! [`FactorError::PatternMismatch`]) are **terminal**: every engine
//! agrees on them, so neither retry nor fallback applies.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::Method;
use crate::error::FactorError;

/// Engines to try, in order, after the primary engine fails with a
/// device-side error. An empty chain means "no fallback": the typed
/// error is returned to the caller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FallbackChain {
    /// Successor engines in degradation order.
    pub methods: Vec<Method>,
}

impl FallbackChain {
    /// No fallback (the default): device errors surface typed.
    pub fn none() -> Self {
        Self::default()
    }

    /// A chain through the given successors.
    pub fn new(methods: Vec<Method>) -> Self {
        FallbackChain { methods }
    }

    /// The recommended degradation path for `primary`: pipelined GPU →
    /// single-stream GPU → task-parallel CPU → serial CPU, staying in
    /// the same algorithm family (RL or RLB) so the recovered factor is
    /// bit-identical to the family's serial engine. CPU engines have no
    /// device failure modes, so their chain is empty.
    pub fn recommended(primary: Method) -> Self {
        let methods = match primary {
            Method::RlGpuPipe => vec![Method::RlGpu, Method::RlCpuPar, Method::RlCpu],
            Method::RlbGpuPipe => vec![Method::RlbGpuV2, Method::RlbCpuPar, Method::RlbCpu],
            Method::RlGpu => vec![Method::RlCpuPar, Method::RlCpu],
            Method::RlbGpuV1 | Method::RlbGpuV2 => vec![Method::RlbCpuPar, Method::RlbCpu],
            _ => Vec::new(),
        };
        FallbackChain { methods }
    }

    /// True when no fallback engines are configured.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }
}

impl std::str::FromStr for FallbackChain {
    type Err = String;

    /// Parses `a>b>c` where each element is an engine CLI name or paper
    /// label (e.g. `rlb-gpu>rlb-par>rlb`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut methods = Vec::new();
        for (index, part) in s.split('>').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            methods.push(part.parse::<Method>().map_err(|e| {
                format!(
                    "fallback chain element {} (`{part}`): {e}; \
                     chain syntax is `engine>engine>...`",
                    index + 1
                )
            })?);
        }
        Ok(FallbackChain { methods })
    }
}

/// Bounded retries for transient device faults (persistent faults skip
/// straight to the fallback chain — retrying a deterministic failure
/// cannot help).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Retries per engine after the initial attempt (default 0).
    pub max_retries: u32,
    /// Real-time pause between attempts (default none; the simulated
    /// device needs no settling time, but a service retrying a real
    /// device would).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// Up to `max_retries` immediate retries.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            backoff: Duration::ZERO,
        }
    }

    /// The same policy with a pause between attempts.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// A bound on how long a factorization may run. `wall` is real time;
/// `sim_seconds` bounds the simulated device clock, which is what an
/// injected [`StreamStall`](rlchol_gpu::FaultKind::StreamStall) inflates
/// — so stalled-stream tests abort deterministically without waiting
/// out real seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Deadline {
    /// Real wall-clock budget, spanning retries and fallbacks.
    pub wall: Option<Duration>,
    /// Simulated-seconds budget, checked per attempt against
    /// [`Gpu::elapsed`](rlchol_gpu::Gpu::elapsed).
    pub sim_seconds: Option<f64>,
}

impl Deadline {
    /// No limits (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// A real wall-clock budget.
    pub fn wall(limit: Duration) -> Self {
        Deadline {
            wall: Some(limit),
            sim_seconds: None,
        }
    }

    /// A simulated-seconds budget.
    pub fn sim(limit: f64) -> Self {
        Deadline {
            wall: None,
            sim_seconds: Some(limit),
        }
    }

    /// True when neither budget is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.sim_seconds.is_none()
    }
}

/// A shared cancellation flag: clone it anywhere, flip it once, and
/// every in-flight factorization checking a [`RunCtl`] built from it
/// aborts with [`FactorError::Cancelled`] at its next check point (and
/// `batch_factor` skips slots it has not started).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Clears the flag so the token can gate further work.
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// What a recovery step did.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// The same engine was retried (the error was transient).
    Retried,
    /// The factorization moved to the next engine of the chain.
    FellBack {
        /// The engine that took over.
        to: Method,
    },
    /// The workspace lane was quarantined (rebuilt on next checkout).
    LaneQuarantined,
}

/// One recorded recovery step, kept in
/// [`FactorInfo::recovery`](crate::registry::FactorInfo::recovery).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// The engine that failed.
    pub method: Method,
    /// Zero-based attempt ordinal on that engine.
    pub attempt: u32,
    /// How the failure was handled.
    pub action: RecoveryAction,
    /// The error recovered from.
    pub error: FactorError,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            RecoveryAction::Retried => write!(
                f,
                "{} attempt {} retried: {}",
                self.method.label(),
                self.attempt,
                self.error
            ),
            RecoveryAction::FellBack { to } => write!(
                f,
                "{} fell back to {}: {}",
                self.method.label(),
                to.label(),
                self.error
            ),
            RecoveryAction::LaneQuarantined => write!(
                f,
                "{} lane quarantined: {}",
                self.method.label(),
                self.error
            ),
        }
    }
}

/// The deadline/cancellation control threaded through the executors via
/// [`EngineWorkspace::ctl`](crate::registry::EngineWorkspace). Unarmed
/// (the default) it is a no-op — direct engine calls pay nothing; the
/// staged handle arms it once per factorization, so the wall budget
/// spans retries and fallbacks while the simulated budget applies per
/// attempt (each attempt builds a fresh device clock). Arming and
/// cloning are allocation-free: the only shared state is the cancel
/// flag, which lives behind the token's own `Arc`.
#[derive(Debug, Clone, Default)]
pub struct RunCtl {
    armed: Option<CtlState>,
}

#[derive(Debug, Clone)]
struct CtlState {
    cancel: CancelToken,
    started: Instant,
    wall: Option<Duration>,
    sim: Option<f64>,
}

impl RunCtl {
    /// An armed control: `deadline` counts from now, `cancel` is checked
    /// at every checkpoint.
    pub fn armed(deadline: Deadline, cancel: CancelToken) -> Self {
        RunCtl {
            armed: Some(CtlState {
                cancel,
                started: Instant::now(),
                wall: deadline.wall,
                sim: deadline.sim_seconds,
            }),
        }
    }

    /// Errors when cancelled or past the wall deadline. Executors call
    /// this once per supernode.
    #[inline]
    pub fn check(&self) -> Result<(), FactorError> {
        let Some(state) = &self.armed else {
            return Ok(());
        };
        if state.cancel.is_cancelled() {
            return Err(FactorError::Cancelled);
        }
        if let Some(limit) = state.wall {
            if state.started.elapsed() > limit {
                return Err(FactorError::DeadlineExceeded {
                    wall: Some(limit),
                    sim_seconds: None,
                });
            }
        }
        Ok(())
    }

    /// [`check`](Self::check) plus the simulated-seconds budget against
    /// the device clock `sim`.
    #[inline]
    pub fn check_sim(&self, sim: f64) -> Result<(), FactorError> {
        self.check()?;
        if let Some(state) = &self.armed {
            if let Some(limit) = state.sim {
                if sim > limit {
                    return Err(FactorError::DeadlineExceeded {
                        wall: None,
                        sim_seconds: Some(limit),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_chains_stay_in_family_and_end_on_cpu() {
        for m in Method::ALL {
            let chain = FallbackChain::recommended(m);
            if m.is_gpu() {
                let last = *chain.methods.last().unwrap();
                assert!(!last.is_gpu(), "{m:?} chain must end on CPU");
                assert!(!chain.methods.contains(&m), "{m:?} must not self-chain");
            } else {
                assert!(chain.is_empty(), "{m:?} needs no fallback");
            }
        }
        assert_eq!(
            FallbackChain::recommended(Method::RlbGpuPipe).methods,
            vec![Method::RlbGpuV2, Method::RlbCpuPar, Method::RlbCpu]
        );
    }

    #[test]
    fn chain_parses_cli_names() {
        let chain: FallbackChain = "rlb-gpu>rlb-par>rlb".parse().unwrap();
        assert_eq!(
            chain.methods,
            vec![Method::RlbGpuV2, Method::RlbCpuPar, Method::RlbCpu]
        );
        // The error identifies the failing element (position and text),
        // lists the valid engine names, and reminds the chain syntax.
        let err = "rlb-gpu>bogus".parse::<FallbackChain>().unwrap_err();
        assert!(err.contains("element 2"), "{err}");
        assert!(err.contains("`bogus`"), "{err}");
        assert!(err.contains("unknown method"), "{err}");
        assert!(err.contains("rlb-gpu-pipe"), "{err}");
        assert!(err.contains("engine>engine"), "{err}");
        assert!("".parse::<FallbackChain>().unwrap().is_empty());
    }

    #[test]
    fn unarmed_ctl_is_a_no_op() {
        let ctl = RunCtl::default();
        assert!(ctl.check().is_ok());
        assert!(ctl.check_sim(f64::INFINITY).is_ok());
    }

    #[test]
    fn cancel_token_trips_the_ctl() {
        let token = CancelToken::new();
        let ctl = RunCtl::armed(Deadline::none(), token.clone());
        assert!(ctl.check().is_ok());
        token.cancel();
        assert_eq!(ctl.check(), Err(FactorError::Cancelled));
        token.reset();
        assert!(ctl.check().is_ok());
    }

    #[test]
    fn wall_deadline_expires() {
        let ctl = RunCtl::armed(Deadline::wall(Duration::ZERO), CancelToken::new());
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            ctl.check(),
            Err(FactorError::DeadlineExceeded { wall: Some(_), .. })
        ));
    }

    #[test]
    fn sim_deadline_compares_device_clock() {
        let ctl = RunCtl::armed(Deadline::sim(1.5), CancelToken::new());
        assert!(ctl.check_sim(1.0).is_ok());
        assert_eq!(
            ctl.check_sim(2.0),
            Err(FactorError::DeadlineExceeded {
                wall: None,
                sim_seconds: Some(1.5)
            })
        );
    }

    #[test]
    fn recovery_events_display_their_story() {
        let e = RecoveryEvent {
            method: Method::RlbGpuPipe,
            attempt: 0,
            action: RecoveryAction::FellBack { to: Method::RlbCpu },
            error: FactorError::Gpu("boom".into()),
        };
        let s = e.to_string();
        assert!(s.contains("RLB_G(pipe)"), "{s}");
        assert!(s.contains("RLB_C"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }
}
