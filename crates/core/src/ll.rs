//! Left-looking supernodal Cholesky — the classic alternative the
//! right-looking methods of the paper's companion reference are measured
//! against (Ng–Peyton-style, as in CHOLMOD's supernodal module).
//!
//! Where RL pushes a supernode's updates *rightward* as soon as it is
//! factored, the left-looking method factors supernode `J` by first
//! *pulling* every pending update from descendants whose row structure
//! intersects `cols(J)`:
//!
//! 1. for each updating descendant `D`, one DGEMM forms
//!    `W = L[rows≥J, cols(D)] · L[rows∩J, cols(D)]ᵀ` into a workspace;
//! 2. `W` is scattered into `J`'s columns (relative indices);
//! 3. `J` is then factored (DPOTRF + DTRSM) and registered with the next
//!    supernode its rows touch.
//!
//! Pending updaters are tracked with the standard per-target lists: after
//! a supernode is consumed at one target it advances to its next row
//! segment, so each (descendant, ancestor) pair is visited exactly once.

use std::time::Instant;

use rlchol_dense::gemm_nt;
use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::relind::relative_indices;
use rlchol_symbolic::SymbolicFactor;

use crate::engine::{factor_panel, CpuRun};
use crate::error::FactorError;
use crate::registry::EngineWorkspace;

/// Factors `a` (permuted into factor order) with the left-looking
/// supernodal method.
pub fn factor_ll_cpu(sym: &SymbolicFactor, a: &SymCsc) -> Result<CpuRun, FactorError> {
    factor_ll_cpu_ws(sym, a, &mut EngineWorkspace::default())
}

/// [`factor_ll_cpu`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_ll_cpu_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    ws: &mut EngineWorkspace,
) -> Result<CpuRun, FactorError> {
    let t0 = Instant::now();
    let mut data = ws.take_factor(sym, a);
    let mut trace = ws.take_trace();
    let nsup = sym.nsup();
    let mut l11 = Vec::new();
    // pending[j]: descendants whose next unconsumed row segment starts in
    // supernode j, as (descendant, segment start offset into its rows).
    let mut pending: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nsup];
    // Workspace sized for the largest (rows x segment) update block. A
    // segment holds a descendant's rows inside ONE target supernode, so
    // it is bounded by the widest supernode — not by the descendant's
    // widest row block (amalgamated targets can swallow several blocks,
    // which undersized this buffer and overflowed the GEMM below).
    let max_ncols = (0..nsup).map(|s| sym.sn_ncols(s)).max().unwrap_or(0);
    let max_w = (0..nsup)
        .map(|s| {
            let r = sym.rows[s].len();
            r * r.min(max_ncols)
        })
        .max()
        .unwrap_or(0);
    let mut w = vec![0.0f64; max_w.max(1)];

    for j in 0..nsup {
        let first_j = sym.sn.first_col(j);
        let end_j = sym.sn.end_col(j);
        let len_j = sym.sn_len(j);
        let cj = end_j - first_j;

        // Pull pending updates aimed at this supernode.
        let updaters = std::mem::take(&mut pending[j]);
        for (d, lo) in updaters {
            let rows_d = &sym.rows[d];
            let hi = rows_d.partition_point(|&r| r < end_j);
            debug_assert!(lo < hi, "updater with empty segment");
            let cd = sym.sn_ncols(d);
            let len_d = sym.sn_len(d);
            let m = rows_d.len() - lo; // rows at/below the segment
            let nseg = hi - lo;
            // W = L[lo.., :] · L[lo..hi, :]ᵀ over D's columns.
            {
                let (head, tail) = data.sn.split_at_mut(j);
                let src = &head[d];
                let a_block = &src[cd + lo..];
                let b_block = &src[cd + lo..];
                gemm_nt(
                    m,
                    nseg,
                    cd,
                    1.0,
                    a_block,
                    len_d,
                    b_block,
                    len_d,
                    0.0,
                    &mut w[..m * nseg],
                    m,
                );
                trace.push(TraceOp::Gemm { m, n: nseg, k: cd });
                // Scatter -W into J's storage.
                let dst = &mut tail[0];
                let rel = relative_indices(&rows_d[lo..], first_j, cj, &sym.rows[j]);
                let mut entries = 0usize;
                for (q, wcol) in w[..m * nseg].chunks_exact(m).enumerate() {
                    let tcol = rows_d[lo + q] - first_j;
                    let col = &mut dst[tcol * len_j..(tcol + 1) * len_j];
                    // Row q of the segment corresponds to W row index q;
                    // only rows at/below the diagonal of the target column
                    // matter (W is the full rectangle, its upper strip
                    // duplicates symmetric entries).
                    for (i, &v) in wcol.iter().enumerate().skip(q) {
                        col[rel[i]] -= v;
                    }
                    entries += m - q;
                }
                trace.push(TraceOp::Assemble { entries });
            }
            // Advance D to its next target segment.
            if hi < rows_d.len() {
                let next = sym.sn.col_to_sn[rows_d[hi]];
                pending[next].push((d, hi));
            }
        }

        // Factor the (now fully updated) supernode.
        let r = sym.sn_nrows_below(j);
        {
            let arr = &mut data.sn[j];
            factor_panel(arr, len_j, cj, r, &mut l11).map_err(|pivot| {
                FactorError::NotPositiveDefinite {
                    column: first_j + pivot,
                }
            })?;
        }
        trace.push(TraceOp::Potrf { n: cj });
        if r > 0 {
            trace.push(TraceOp::Trsm { m: r, n: cj });
            let target = sym.sn.col_to_sn[sym.rows[j][0]];
            pending[target].push((j, 0));
        }
    }
    Ok(CpuRun {
        factor: data,
        trace,
        wall: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn setup(a: &SymCsc) -> (SymbolicFactor, SymCsc) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    #[test]
    fn matches_right_looking_factor() {
        for a in [
            laplace2d(9, 3),
            grid3d(5, 5, 5, Stencil::Star7, 1, 4),
            grid3d(4, 4, 4, Stencil::Star7, 3, 5),
        ] {
            let (sym, ap) = setup(&a);
            let rl = factor_rl_cpu(&sym, &ap).unwrap();
            let ll = factor_ll_cpu(&sym, &ap).unwrap();
            let d = rl.factor.max_rel_diff(&ll.factor);
            assert!(d < 1e-11, "LL differs from RL by {d}");
        }
    }

    #[test]
    fn residual_is_tiny() {
        let a = laplace2d(10, 7);
        let (sym, ap) = setup(&a);
        let run = factor_ll_cpu(&sym, &ap).unwrap();
        assert!(run.factor.residual(&sym, &ap, 3) < 1e-12);
    }

    #[test]
    fn visits_each_descendant_ancestor_pair_once() {
        // Number of GEMM records equals the number of (supernode, target
        // segment) pairs = total row blocks merged by target.
        let a = laplace2d(8, 9);
        let (sym, ap) = setup(&a);
        let run = factor_ll_cpu(&sym, &ap).unwrap();
        let gemms = run
            .trace
            .ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Gemm { .. }))
            .count();
        // Count distinct target supernodes per source.
        let mut pairs = 0usize;
        for s in 0..sym.nsup() {
            let mut prev = usize::MAX;
            for &r in &sym.rows[s] {
                let t = sym.sn.col_to_sn[r];
                if t != prev {
                    pairs += 1;
                    prev = t;
                }
            }
        }
        assert_eq!(gemms, pairs);
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = rlchol_sparse::TripletMatrix::new(3, 3);
        for j in 0..3 {
            t.push(j, j, 1.0);
        }
        t.push(2, 0, 4.0);
        let a = SymCsc::from_lower_triplets(&t).unwrap();
        let (sym, ap) = setup(&a);
        assert!(matches!(
            factor_ll_cpu(&sym, &ap),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }
}
