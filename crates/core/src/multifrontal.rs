//! Multifrontal supernodal Cholesky (Duff–Reid; vectorized supernodal
//! form after Ashcraft, the paper's reference [4]).
//!
//! Each supernode `J` owns a dense *frontal matrix* of order
//! `len(J) = ncols(J) + |rows(J)|`:
//!
//! 1. the front is initialized from `A`'s columns of `J`;
//! 2. children's *update matrices* are **extend-added** into it (their
//!    rows are a subset of `J`'s index list — the relative indices do the
//!    matching, exactly as in RL's assembly);
//! 3. a partial dense factorization (DPOTRF + DTRSM + DSYRK) eliminates
//!    the first `ncols(J)` variables, leaving the Schur complement as
//!    `J`'s own update matrix, kept on a stack until the parent consumes
//!    it.
//!
//! With a postordered supernodal tree the update matrices live on a
//! last-in/first-out stack, which is the multifrontal method's famous
//! working-storage profile (and the contrast to RL's single shared
//! workspace that the companion paper studies).

use std::time::Instant;

use rlchol_dense::syrk_ln;
use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::relind::relative_indices;
use rlchol_symbolic::SymbolicFactor;

use crate::engine::{factor_panel, CpuRun};
use crate::error::FactorError;
use crate::registry::EngineWorkspace;

/// One stacked update (Schur complement) waiting for its parent.
struct StackedUpdate {
    /// Supernode that produced it.
    from: usize,
    /// Dense `r x r` column-major lower matrix over `rows(from)`.
    data: Vec<f64>,
}

/// Result of a multifrontal factorization, with its storage statistics.
pub struct MultifrontalRun {
    /// The standard CPU-run payload (factor, trace, wall time).
    pub run: CpuRun,
    /// High-water mark of the update-matrix stack, in `f64` entries —
    /// the multifrontal method's extra working storage.
    pub peak_stack_entries: usize,
}

/// Factors `a` (permuted into factor order) with the multifrontal method.
pub fn factor_multifrontal_cpu(
    sym: &SymbolicFactor,
    a: &SymCsc,
) -> Result<MultifrontalRun, FactorError> {
    factor_multifrontal_cpu_ws(sym, a, &mut EngineWorkspace::default())
}

/// [`factor_multifrontal_cpu`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_multifrontal_cpu_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    ws: &mut EngineWorkspace,
) -> Result<MultifrontalRun, FactorError> {
    let t0 = Instant::now();
    let mut data = ws.take_factor(sym, a);
    let mut trace = ws.take_trace();
    let nsup = sym.nsup();
    // The postorder property of the factor ordering guarantees each
    // parent directly follows all of its children's updates on the stack
    // top... almost: siblings stack in order, so a parent pops exactly
    // its children (they are the most recent unconsumed updates).
    let mut stack: Vec<StackedUpdate> = Vec::new();
    let mut l11 = Vec::new();
    let mut stack_entries = 0usize;
    let mut peak_stack_entries = 0usize;

    for j in 0..nsup {
        let first = sym.sn.first_col(j);
        let end = sym.sn.end_col(j);
        let c = end - first;
        let len = sym.sn_len(j);
        let r = len - c;

        // Pop every child update destined for this supernode. Children
        // sit contiguously on the stack top (postorder), but a robust
        // check on `parent` keeps us honest for forests.
        let mut children: Vec<StackedUpdate> = Vec::new();
        while let Some(top) = stack.last() {
            if sym.sn_parent[top.from] == j {
                let u = stack.pop().expect("checked non-empty");
                stack_entries -= u.data.len();
                children.push(u);
            } else {
                break;
            }
        }

        // The front reuses the factor storage for its first c columns
        // (they are exactly L's columns of J) plus a dense r x r tail for
        // the Schur complement.
        let mut schur = vec![0.0f64; r * r];
        {
            let front_cols = &mut data.sn[j];
            // Extend-add each child update into (front_cols, schur).
            for child in &children {
                let rows_c = &sym.rows[child.from];
                let rc = rows_c.len();
                let rel = relative_indices(rows_c, first, c, &sym.rows[j]);
                let mut entries = 0usize;
                for q in 0..rc {
                    let tcol = rel[q];
                    let ucol = &child.data[q * rc..(q + 1) * rc];
                    if tcol < c {
                        // Lands in the factor-column region.
                        let col = &mut front_cols[tcol * len..(tcol + 1) * len];
                        for i in q..rc {
                            col[rel[i]] -= ucol[i];
                        }
                    } else {
                        // Lands in the Schur tail.
                        let sc = tcol - c;
                        let col = &mut schur[sc * r..(sc + 1) * r];
                        for i in q..rc {
                            col[rel[i] - c] -= ucol[i];
                        }
                    }
                    entries += rc - q;
                }
                trace.push(TraceOp::Assemble { entries });
            }
            // Partial factorization of the front.
            factor_panel(front_cols, len, c, r, &mut l11).map_err(|pivot| {
                FactorError::NotPositiveDefinite {
                    column: first + pivot,
                }
            })?;
            trace.push(TraceOp::Potrf { n: c });
            if r > 0 {
                trace.push(TraceOp::Trsm { m: r, n: c });
                // Stacked updates use the "pending subtraction" sign
                // convention: the consumer applies `front -= U`. The
                // children's pass-through rows were extend-added into
                // `schur` with a minus above, so `beta = -1` flips them
                // back to `+` while `alpha = +1` adds this supernode's
                // own L21·L21ᵀ: U_J = L21·L21ᵀ + Σ child tails.
                syrk_ln(r, c, 1.0, &front_cols[c..], len, -1.0, &mut schur, r);
                trace.push(TraceOp::Syrk { n: r, k: c });
            }
        }
        if r > 0 {
            stack_entries += schur.len();
            peak_stack_entries = peak_stack_entries.max(stack_entries);
            stack.push(StackedUpdate {
                from: j,
                data: schur,
            });
        }
    }
    debug_assert!(stack.is_empty(), "all updates consumed");
    Ok(MultifrontalRun {
        run: CpuRun {
            factor: data,
            trace,
            wall: t0.elapsed(),
        },
        peak_stack_entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use rlchol_matgen::{grid3d, laplace2d, Stencil};
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn setup(a: &SymCsc) -> (SymbolicFactor, SymCsc) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    #[test]
    fn matches_right_looking_factor() {
        for a in [
            laplace2d(9, 13),
            grid3d(5, 5, 4, Stencil::Star7, 1, 14),
            grid3d(4, 4, 4, Stencil::Star7, 2, 15),
        ] {
            let (sym, ap) = setup(&a);
            let rl = factor_rl_cpu(&sym, &ap).unwrap();
            let mf = factor_multifrontal_cpu(&sym, &ap).unwrap();
            let d = rl.factor.max_rel_diff(&mf.run.factor);
            assert!(d < 1e-11, "MF differs from RL by {d}");
        }
    }

    #[test]
    fn residual_is_tiny() {
        let a = laplace2d(11, 17);
        let (sym, ap) = setup(&a);
        let mf = factor_multifrontal_cpu(&sym, &ap).unwrap();
        assert!(mf.run.factor.residual(&sym, &ap, 3) < 1e-12);
    }

    #[test]
    fn stack_profile_is_positive_and_bounded() {
        let a = grid3d(6, 6, 6, Stencil::Star7, 1, 18);
        let (sym, ap) = setup(&a);
        let mf = factor_multifrontal_cpu(&sym, &ap).unwrap();
        assert!(mf.peak_stack_entries > 0);
        // The stack never exceeds the sum of all update matrices.
        let total: usize = (0..sym.nsup()).map(|s| sym.update_matrix_entries(s)).sum();
        assert!(mf.peak_stack_entries <= total);
        // And it is at least the largest single update matrix.
        assert!(mf.peak_stack_entries >= sym.max_update_matrix_entries());
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = rlchol_sparse::TripletMatrix::new(3, 3);
        for j in 0..3 {
            t.push(j, j, 1.0);
        }
        t.push(1, 0, 4.0);
        let a = SymCsc::from_lower_triplets(&t).unwrap();
        let (sym, ap) = setup(&a);
        assert!(matches!(
            factor_multifrontal_cpu(&sym, &ap),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }
}
