//! # rlchol-core — right-looking supernodal sparse Cholesky
//!
//! The paper's contribution: serial right-looking supernodal Cholesky
//! factorization in two variants, each with CPU-only and GPU-accelerated
//! engines (the GPU being the simulated runtime of `rlchol-gpu`):
//!
//! * **RL** (§II-A) — after factoring the current supernode (DPOTRF +
//!   DTRSM), its entire update matrix is formed with **one DSYRK** into a
//!   preallocated workspace and scattered into ancestor supernodes using
//!   relative indices.
//! * **RLB** (§II-B) — the update is decomposed into per-row-block DSYRK
//!   and DGEMM calls that (on CPU) write **directly into factor storage**,
//!   needing no update workspace and only one generalized relative index
//!   per block.
//! * **GPU-RL** (§III) — the supernode is copied to the device, factored
//!   there, copied back asynchronously while the device runs the coarse
//!   DSYRK, and the update matrix is returned for (parallelizable) host
//!   assembly.
//! * **GPU-RLB v1/v2** (§III) — per-block updates on the device; v1
//!   batches all of a supernode's block updates into one device→host
//!   transfer, v2 returns each block as soon as it is computed (lower
//!   device memory footprint — the variant that can factor `nlpkkt120`).
//! * **Hybrid dispatch** (§III) — supernodes whose size (columns ×
//!   length) falls below a threshold stay on the CPU, because the
//!   transfer cost dwarfs their compute.
//!
//! Two classic CPU baselines are included for context (they are the
//! "other methods" the companion reference compares RL/RLB against):
//! [`ll`] — left-looking supernodal — and [`multifrontal`] — the
//! stack-based multifrontal method with its distinctive working-storage
//! profile.
//!
//! * **Task-parallel CPU engines** ([`sched::cpu`]) — RL and RLB
//!   scheduled over the supernodal elimination tree on the persistent
//!   thread pool (`RLCHOL_THREADS` lanes; see `rlchol-dense`'s crate
//!   docs): independent subtrees factor concurrently, fan-out updates
//!   are guarded per-target, and large per-task BLAS calls stripe
//!   across idle lanes.
//! * **Pipelined multi-stream GPU engines** ([`sched::gpu`]) — the same
//!   elimination-tree dependency machinery ([`sched::driver`]) drives
//!   out-of-order dispatch of ready supernodes onto `RLCHOL_STREAMS`
//!   simulated compute/copy stream pairs, with in-order host retirement
//!   keeping the factor bit-identical to the single-stream engines.
//! * **Planned triangular solves** ([`solve`]) — a [`solve::SolvePlan`]
//!   of elimination-tree level sets, computed once per analysis, drives
//!   tree-parallel forward/backward sweeps (`RLCHOL_SOLVE_THREADS`
//!   lanes) that are bit-identical to the serial reference at any
//!   thread count.
//! * **Lane-pooled concurrent factorization** ([`staged::lanes`]) — a
//!   [`SymbolicCholesky`](staged::SymbolicCholesky) handle is
//!   `Send + Sync` and owns `RLCHOL_FACTOR_LANES` independent engine
//!   workspaces, so many threads factor different value sets of one
//!   pattern concurrently (or
//!   [`batch_factor`](staged::SymbolicCholesky::batch_factor) fans a
//!   batch across the lanes), each result bit-identical to the serial
//!   path.
//!
//! The [`solver::CholeskySolver`] ties ordering, symbolic analysis,
//! numeric factorization and triangular solves into the end-to-end
//! pipeline a user would call.

pub mod assemble;
pub mod engine;
pub mod error;
pub mod gpu_rl;
pub mod gpu_rlb;
pub mod json;
pub mod ll;
pub mod multifrontal;
pub mod registry;
pub mod resilience;
pub mod rl;
pub mod rlb;
pub mod sched;
pub mod simplicial;
pub mod solve;
pub mod solver;
pub mod staged;
pub mod storage;

pub use engine::{best_cpu_time, CpuRun, GpuOptions, GpuRun, Method};
pub use error::{FactorError, SolveError};
pub use registry::{engine_for, EngineRun, EngineWorkspace, FactorInfo, NumericEngine};
pub use resilience::{
    CancelToken, Deadline, FallbackChain, RecoveryAction, RecoveryEvent, RetryPolicy, RunCtl,
};
pub use sched::{factor_rl_cpu_par, factor_rl_gpu_pipe, factor_rlb_cpu_par, factor_rlb_gpu_pipe};
pub use solve::{SolveInfo, SolvePlan};
pub use solver::{CholeskySolver, SolverOptions};
pub use staged::lanes::LaneStats;
pub use staged::{AnalyzeBreakdown, Factorization, SolveWorkspace, SymbolicCholesky};
pub use storage::FactorData;
