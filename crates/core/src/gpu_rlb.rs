//! GPU-accelerated RLB, both versions of §III.
//!
//! The panel phase (H2D, DPOTRF, DTRSM, asynchronous copy-back) is shared
//! with GPU-RL. The update phase differs:
//!
//! * **v1** — every per-block DSYRK/DGEMM writes into a *compacted
//!   staging buffer on the device*; when the supernode's updates are all
//!   computed, **one** device→host transfer returns them and the host
//!   assembles. The staging buffer is comparable in size to RL's full
//!   update matrix, so v1 shares RL's memory wall (and OOMs on the
//!   nlpkkt120 analogue).
//! * **v2** — each block update is transferred back **as soon as it is
//!   computed** and assembled while the device works on the next block.
//!   Device footprint: panel + one block-sized buffer — this is the
//!   variant that factors matrices whose update matrices exceed device
//!   memory (Table II's nlpkkt120 row).
//!
//! The CPU-side of the direct update (what makes CPU-RLB assembly-free)
//! is *not* used here: applying updates in factor storage on the device
//! would require round-tripping ancestor supernodes over PCIe (§III), so
//! both GPU versions assemble on the host like RL does.

use std::time::Instant;

use rlchol_dense::{gemm_nt, pool, syrk_ln};
use rlchol_gpu::{Buffer, Event, Gpu, StreamId};
use rlchol_perfmodel::TraceOp;
use rlchol_sparse::SymCsc;
use rlchol_symbolic::blocks::RowBlock;
use rlchol_symbolic::relind::relative_indices;
use rlchol_symbolic::SymbolicFactor;

use crate::engine::{factor_panel, GpuOptions, GpuRun};
use crate::error::FactorError;
use crate::gpu_rl::offload_set;
use crate::registry::EngineWorkspace;
use crate::rlb::{rlb_run_updates, rlb_target_runs};

/// Which RLB GPU variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlbGpuVersion {
    /// Batched: one staging buffer, one transfer per supernode.
    V1,
    /// Streaming: per-block transfers, minimal device memory.
    V2,
}

/// A block-pair update strip: the `m × n` update `L[B′, B]` (`B′ = B`
/// gives the diagonal strip, of which only the lower triangle is used).
pub(crate) struct Strip {
    pub(crate) b1: usize,
    pub(crate) b2: usize,
    pub(crate) m: usize,
    pub(crate) n: usize,
    /// Offset in the compacted staging buffer (v1) or 0 (v2).
    pub(crate) stage_off: usize,
}

/// Enumerates the update strips of a supernode and the compacted staging
/// size (the v1 device/host footprint for that supernode).
pub(crate) fn strips_of(blocks: &[RowBlock]) -> (Vec<Strip>, usize) {
    let mut strips = Vec::new();
    let mut off = 0usize;
    for (b1, blk) in blocks.iter().enumerate() {
        for (b2, blk2) in blocks.iter().enumerate().skip(b1) {
            let (m, n) = (blk2.len, blk.len);
            strips.push(Strip {
                b1,
                b2,
                m,
                n,
                stage_off: off,
            });
            off += m * n;
        }
    }
    (strips, off)
}

/// Splits blocks longer than `chunk` rows into consecutive sub-blocks.
///
/// Sub-blocks keep the target supernode and contiguity, so the strip
/// machinery works on them unchanged; this is how the streaming v2 engine
/// bounds its device buffer to the post-panel memory budget (and what
/// lets it factor matrices whose full update matrices exceed capacity).
fn split_blocks(blocks: &[RowBlock], chunk: usize) -> Vec<RowBlock> {
    let mut out = Vec::with_capacity(blocks.len());
    for b in blocks {
        let mut done = 0usize;
        while done < b.len {
            let piece = chunk.min(b.len - done);
            out.push(RowBlock {
                offset: b.offset + done,
                len: piece,
                first: b.first + done,
                target: b.target,
            });
            done += piece;
        }
    }
    out
}

/// Applies one host-side strip into `parr`, the storage of the ancestor
/// holding block `b1`. Returns the entries touched (assembly cost
/// metric).
pub(crate) fn apply_strip(
    sym: &SymbolicFactor,
    parr: &mut [f64],
    blocks: &[RowBlock],
    strip: &Strip,
    host: &[f64],
) -> usize {
    let blk = blocks[strip.b1];
    let blk2 = blocks[strip.b2];
    let p = blk.target;
    let p_first = sym.sn.first_col(p);
    let p_len = sym.sn_len(p);
    let tcol = blk.first - p_first;
    let roff = relative_indices(
        std::slice::from_ref(&blk2.first),
        p_first,
        sym.sn_ncols(p),
        &sym.rows[p],
    )[0];
    let mut entries = 0usize;
    let diagonal = strip.b1 == strip.b2;
    for j in 0..strip.n {
        let dst = &mut parr[(tcol + j) * p_len + roff..];
        let src = &host[j * strip.m..(j + 1) * strip.m];
        let i0 = if diagonal { j } else { 0 };
        for i in i0..strip.m {
            dst[i] -= src[i];
        }
        entries += strip.m - i0;
    }
    entries
}

/// Applies a whole supernode's staged strips, one pool job per target
/// supernode (strips are ordered by `b1`, whose targets ascend, so each
/// target owns one contiguous strip range and the splits are disjoint).
/// Bit-identical to the serial sweep: only the lane changes, never the
/// per-strip subtraction order.
pub(crate) fn apply_strips_pool(
    sym: &SymbolicFactor,
    data: &mut [Vec<f64>],
    blocks: &[RowBlock],
    strips: &[Strip],
    staged: &[f64],
) -> usize {
    if pool::global().threads() <= 1 {
        // Single-lane pool: skip the per-target task boxing and run the
        // identical sweep inline.
        let mut entries = 0usize;
        for st in strips {
            let p = blocks[st.b1].target;
            entries += apply_strip(
                sym,
                &mut data[p],
                blocks,
                st,
                &staged[st.stage_off..st.stage_off + st.m * st.n],
            );
        }
        return entries;
    }
    let total: std::sync::atomic::AtomicUsize = 0.into();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    let mut rest: &mut [Vec<f64>] = data;
    let mut consumed = 0usize;
    let mut s1 = 0usize;
    while s1 < strips.len() {
        let p = blocks[strips[s1].b1].target;
        let s_end = strips[s1..]
            .iter()
            .position(|st| blocks[st.b1].target != p)
            .map_or(strips.len(), |off| s1 + off);
        let (head, tail) = rest.split_at_mut(p - consumed + 1);
        let parr = head.last_mut().expect("nonempty split");
        rest = tail;
        consumed = p + 1;
        let group = &strips[s1..s_end];
        let total = &total;
        tasks.push(Box::new(move || {
            let mut entries = 0usize;
            for st in group {
                entries += apply_strip(
                    sym,
                    parr,
                    blocks,
                    st,
                    &staged[st.stage_off..st.stage_off + st.m * st.n],
                );
            }
            total.fetch_add(entries, std::sync::atomic::Ordering::Relaxed);
        }));
        s1 = s_end;
    }
    pool::global().run(tasks);
    total.into_inner()
}

/// Shared panel phase: H2D, device POTRF + TRSM, async copy-back.
#[allow(clippy::too_many_arguments)]
fn panel_on_device(
    gpu: &Gpu,
    compute: StreamId,
    copy: StreamId,
    panel_buf: Buffer,
    data_s: &mut Vec<f64>,
    len: usize,
    c: usize,
    r: usize,
    first: usize,
    prev_copyback: &mut Option<Event>,
) -> Result<(), FactorError> {
    if let Some(ev) = prev_copyback.take() {
        gpu.stream_wait_event(compute, ev);
    }
    gpu.memcpy_h2d(compute, panel_buf, 0, data_s)?;
    gpu.potrf(compute, panel_buf, 0, c, len)
        .map_err(|e| match e {
            rlchol_gpu::GpuError::Numerical(_) => {
                FactorError::NotPositiveDefinite { column: first }
            }
            other => other.into(),
        })?;
    gpu.trsm_panel(compute, panel_buf, 0, len, c, r)?;
    let factored = gpu.record_event(compute);
    gpu.stream_wait_event(copy, factored);
    gpu.memcpy_d2h(copy, panel_buf, 0, data_s)?;
    *prev_copyback = Some(gpu.record_event(copy));
    Ok(())
}

/// Factors `a` with GPU-accelerated RLB (version selected by `version`).
pub fn factor_rlb_gpu(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    version: RlbGpuVersion,
) -> Result<GpuRun, FactorError> {
    factor_rlb_gpu_ws(sym, a, opts, version, &mut EngineWorkspace::default())
}

/// [`factor_rlb_gpu`] drawing factor storage from `ws` — the
/// refactorization path (reuses recycled storage, no reallocation).
pub fn factor_rlb_gpu_ws(
    sym: &SymbolicFactor,
    a: &SymCsc,
    opts: &GpuOptions,
    version: RlbGpuVersion,
    ws: &mut EngineWorkspace,
) -> Result<GpuRun, FactorError> {
    let t0 = Instant::now();
    let ctl = ws.ctl.clone();
    let mut data = ws.take_factor(sym, a);
    let gpu = opts.device();
    gpu.set_blocking(!opts.overlap);
    let compute = gpu.default_stream();
    let copy = gpu.create_stream();
    gpu.set_stream_role(compute, rlchol_gpu::StreamRole::Compute);
    gpu.set_stream_role(copy, rlchol_gpu::StreamRole::Copy);
    let cpu = opts.machine.cpu;

    let on_gpu = offload_set(sym, opts.threshold);
    let sn_on_gpu = on_gpu.iter().filter(|&&b| b).count();

    let max_panel = (0..sym.nsup())
        .filter(|&s| on_gpu[s])
        .map(|s| sym.sn_storage(s))
        .max()
        .unwrap_or(0);
    let panel_buf = gpu.alloc(max_panel)?;

    // Version-specific device working storage.
    // (v1 staging buffer, v2 block buffer + row-chunk bound)
    let (stage_buf, block_bufs, v2_chunk) = match version {
        RlbGpuVersion::V1 => {
            let max_stage = (0..sym.nsup())
                .filter(|&s| on_gpu[s])
                .map(|s| strips_of(&sym.blocks[s]).1)
                .max()
                .unwrap_or(0);
            (Some(gpu.alloc(max_stage)?), None, 0)
        }
        RlbGpuVersion::V2 => {
            // Streaming memory budget: whatever remains after the panel.
            // Blocks whose pairwise strips would exceed it are split into
            // row chunks — the natural degradation of a streaming engine,
            // and what lets v2 factor matrices whose full update matrices
            // cannot fit on the device (Table II's nlpkkt120 row).
            let capacity = opts.machine.gpu.memory_capacity;
            let used = gpu.stats().used_bytes;
            let budget = (capacity.saturating_sub(used) / 8) as usize;
            let chunk = ((budget as f64).sqrt().floor() as usize).max(1);
            let max_block = (0..sym.nsup())
                .filter(|&s| on_gpu[s])
                .flat_map(|s| {
                    let blocks = split_blocks(&sym.blocks[s], chunk);
                    let (strips, _) = strips_of(&blocks);
                    strips.into_iter().map(|st| st.m * st.n)
                })
                .max()
                .unwrap_or(0);
            (None, Some(gpu.alloc(max_block)?), chunk)
        }
    };

    let mut prev_copyback: Option<Event> = None;
    // Host-side CPU-path update workspace.
    let mut host_ws: Vec<f64> = Vec::new();
    let mut l11 = Vec::new();

    for s in 0..sym.nsup() {
        // Deadline/cancel checkpoint, against the simulated device clock
        // (what an injected stream stall inflates).
        ctl.check_sim(gpu.elapsed())?;
        let c = sym.sn_ncols(s);
        let r = sym.sn_nrows_below(s);
        let len = sym.sn_len(s);
        let first = sym.sn.first_col(s);

        if !on_gpu[s] {
            // CPU path: the direct in-place RLB update (no staging).
            {
                let arr = &mut data.sn[s];
                factor_panel(arr, len, c, r, &mut l11).map_err(|pivot| {
                    FactorError::NotPositiveDefinite {
                        column: first + pivot,
                    }
                })?;
            }
            gpu.host_compute(
                cpu.op_time(&TraceOp::Potrf { n: c }) + cpu.op_time(&TraceOp::Trsm { m: r, n: c }),
            );
            if r > 0 {
                let mut host_seconds = 0.0;
                cpu_direct_update(sym, &mut data.sn, s, c, len, &cpu, &mut host_seconds);
                gpu.host_compute(host_seconds);
            }
            continue;
        }

        // --- GPU path ---
        panel_on_device(
            &gpu,
            compute,
            copy,
            panel_buf,
            &mut data.sn[s],
            len,
            c,
            r,
            first,
            &mut prev_copyback,
        )?;
        if r == 0 {
            continue;
        }
        match version {
            RlbGpuVersion::V1 => {
                let blocks = &sym.blocks[s];
                let (strips, stage_len) = strips_of(blocks);
                let stage = stage_buf.expect("v1 allocates a staging buffer");
                // All block kernels write into compacted staging.
                for st in &strips {
                    launch_strip_kernel(&gpu, compute, panel_buf, stage, st, blocks, c, len)?;
                }
                // One transfer for the whole supernode; the host-side
                // scatter fans out across the pool (one job per target).
                host_ws.resize(stage_len.max(host_ws.len()), 0.0);
                gpu.memcpy_d2h(compute, stage, 0, &mut host_ws[..stage_len])?;
                gpu.sync_stream(compute);
                let entries =
                    apply_strips_pool(sym, &mut data.sn, blocks, &strips, &host_ws[..stage_len]);
                gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
            }
            RlbGpuVersion::V2 => {
                let split = split_blocks(&sym.blocks[s], v2_chunk);
                let blocks = &split[..];
                let (strips, _) = strips_of(blocks);
                let buf = block_bufs.expect("v2 allocates a block buffer");
                // Per-strip host landing areas (kept alive so the eager
                // copies and the simulated pipeline stay consistent).
                let mut landed: Vec<Vec<f64>> = Vec::with_capacity(strips.len());
                let mut copy_done: Vec<Event> = Vec::with_capacity(strips.len());
                let mut reuse_gate: Option<Event> = None;
                for st in strips.iter() {
                    // The single block buffer may not be overwritten while
                    // the previous strip's transfer still reads it.
                    if let Some(ev) = reuse_gate.take() {
                        gpu.stream_wait_event(compute, ev);
                    }
                    let st0 = Strip {
                        b1: st.b1,
                        b2: st.b2,
                        m: st.m,
                        n: st.n,
                        stage_off: 0,
                    };
                    launch_strip_kernel(&gpu, compute, panel_buf, buf, &st0, blocks, c, len)?;
                    let done = gpu.record_event(compute);
                    gpu.stream_wait_event(copy, done);
                    let mut host = vec![0.0f64; st.m * st.n];
                    gpu.memcpy_d2h(copy, buf, 0, &mut host)?;
                    let ev = gpu.record_event(copy);
                    reuse_gate = Some(ev);
                    copy_done.push(ev);
                    landed.push(host);
                }
                // Host assembles each strip as its transfer completes,
                // overlapping the device's remaining kernels.
                for (i, st) in strips.iter().enumerate() {
                    gpu.host_wait_event(copy_done[i]);
                    let p = blocks[st.b1].target;
                    let entries = apply_strip(sym, &mut data.sn[p], blocks, st, &landed[i]);
                    gpu.host_compute(cpu.op_time(&TraceOp::Assemble { entries }));
                }
            }
        }
    }
    gpu.synchronize();
    Ok(GpuRun {
        factor: data,
        sim_seconds: gpu.elapsed(),
        stats: gpu.stats(),
        sn_on_gpu,
        streams_used: 1,
        retire: crate::engine::RetireMode::InOrder,
        lookahead: 0,
        transfers_saved: 0,
        wall: t0.elapsed(),
    })
}

/// Launches the DSYRK (diagonal strip) or DGEMM (lower strip) for one
/// block pair into `dst` at the strip's staging offset.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_strip_kernel(
    gpu: &Gpu,
    compute: StreamId,
    panel_buf: Buffer,
    dst: Buffer,
    st: &Strip,
    blocks: &[RowBlock],
    c: usize,
    len: usize,
) -> Result<(), FactorError> {
    let blk = blocks[st.b1];
    let blk2 = blocks[st.b2];
    if st.b1 == st.b2 {
        gpu.syrk(
            compute,
            panel_buf,
            c + blk.offset,
            len,
            st.n,
            c,
            1.0,
            0.0,
            dst,
            st.stage_off,
            st.m,
        )?;
    } else {
        gpu.gemm_nt(
            compute,
            panel_buf,
            c + blk2.offset,
            len,
            panel_buf,
            c + blk.offset,
            len,
            st.m,
            st.n,
            c,
            1.0,
            0.0,
            dst,
            st.stage_off,
            st.m,
        )?;
    }
    Ok(())
}

/// The CPU-side direct RLB update (same sweep as `factor_rlb_cpu`'s inner
/// loop, via the shared [`rlb_run_updates`] enumerator) for
/// below-threshold supernodes, accumulating model time. Real numerics run
/// one pool job per target run — targets are disjoint ancestor arrays, so
/// the fan-out is lock-free and bit-identical to the serial sweep. Model
/// time is the serial op-time sum either way (the host cost model is
/// thread-count-aware at replay, not here).
pub(crate) fn cpu_direct_update(
    sym: &SymbolicFactor,
    sn_data: &mut [Vec<f64>],
    s: usize,
    c: usize,
    len: usize,
    cpu: &rlchol_perfmodel::CpuModel,
    host_seconds: &mut f64,
) {
    /// The real numerics of one target run (identical kernels whichever
    /// lane executes them).
    fn run_kernels(
        sym: &SymbolicFactor,
        s: usize,
        c: usize,
        len: usize,
        src: &[f64],
        parr: &mut Vec<f64>,
        run: &crate::rlb::RlbTargetRun,
    ) {
        rlb_run_updates(sym, s, c, run, |u| {
            if u.diagonal {
                syrk_ln(
                    u.n,
                    c,
                    -1.0,
                    &src[u.a_off..],
                    len,
                    1.0,
                    &mut parr[u.dst_off..],
                    run.p_len,
                );
            } else {
                gemm_nt(
                    u.m,
                    u.n,
                    c,
                    -1.0,
                    &src[u.a_off..],
                    len,
                    &src[u.b_off..],
                    len,
                    1.0,
                    &mut parr[u.dst_off..],
                    run.p_len,
                );
            }
        });
    }

    let (head, tail) = sn_data.split_at_mut(s + 1);
    let src: &[f64] = head.last().expect("source exists");
    // Single-lane pool: run the sweep inline, no task boxing.
    let single = pool::global().threads() <= 1;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    let mut rest: &mut [Vec<f64>] = tail;
    let mut consumed = s + 1;
    for run in rlb_target_runs(sym, s) {
        rlb_run_updates(sym, s, c, &run, |u| {
            *host_seconds += cpu.op_time(&if u.diagonal {
                TraceOp::Syrk { n: u.n, k: c }
            } else {
                TraceOp::Gemm {
                    m: u.m,
                    n: u.n,
                    k: c,
                }
            });
        });
        let (h, t) = rest.split_at_mut(run.target - consumed + 1);
        let parr = h.last_mut().expect("nonempty split");
        rest = t;
        consumed = run.target + 1;
        if single {
            run_kernels(sym, s, c, len, src, parr, &run);
        } else {
            tasks.push(Box::new(move || {
                run_kernels(sym, s, c, len, src, parr, &run)
            }));
        }
    }
    pool::global().run(tasks);
}

/// One target's slice of [`cpu_direct_update`]: the SYRK/GEMM kernels of
/// supernode `s`'s run into ancestor `p` alone, reading the (final,
/// factored) source panel. The out-of-order retirement loop applies CPU
/// supernodes' updates per target so each destination still receives its
/// sources in ascending order; running the runs one at a time with the
/// identical kernels keeps the result bit-equal to the full sweep.
pub(crate) fn cpu_direct_update_target(
    sym: &SymbolicFactor,
    sn_data: &mut [Vec<f64>],
    s: usize,
    p: usize,
    c: usize,
    len: usize,
    cpu: &rlchol_perfmodel::CpuModel,
    host_seconds: &mut f64,
) {
    debug_assert!(s < p, "RLB targets are strict ancestors");
    let (head, tail) = sn_data.split_at_mut(p);
    let src: &[f64] = &head[s];
    let parr = &mut tail[0];
    for run in rlb_target_runs(sym, s) {
        if run.target != p {
            continue;
        }
        rlb_run_updates(sym, s, c, &run, |u| {
            *host_seconds += cpu.op_time(&if u.diagonal {
                TraceOp::Syrk { n: u.n, k: c }
            } else {
                TraceOp::Gemm {
                    m: u.m,
                    n: u.n,
                    k: c,
                }
            });
            if u.diagonal {
                syrk_ln(
                    u.n,
                    c,
                    -1.0,
                    &src[u.a_off..],
                    len,
                    1.0,
                    &mut parr[u.dst_off..],
                    run.p_len,
                );
            } else {
                gemm_nt(
                    u.m,
                    u.n,
                    c,
                    -1.0,
                    &src[u.a_off..],
                    len,
                    &src[u.b_off..],
                    len,
                    1.0,
                    &mut parr[u.dst_off..],
                    run.p_len,
                );
            }
        });
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rl::factor_rl_cpu;
    use crate::rlb::factor_rlb_cpu;
    use rlchol_matgen::{laplace2d, laplace3d};
    use rlchol_perfmodel::MachineModel;
    use rlchol_symbolic::{analyze, SymbolicOptions};

    fn setup(a: &rlchol_sparse::SymCsc) -> (SymbolicFactor, rlchol_sparse::SymCsc) {
        let sym = analyze(a, &SymbolicOptions::default());
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    /// Setup with merging and PR disabled: supernode rows stay fragmented
    /// into many small blocks, which is the regime where v2's per-block
    /// streaming shows its memory advantage.
    fn setup_fragmented(a: &rlchol_sparse::SymCsc) -> (SymbolicFactor, rlchol_sparse::SymCsc) {
        let opts = SymbolicOptions {
            merge: false,
            partition_refine: false,
            ..SymbolicOptions::default()
        };
        let sym = analyze(a, &opts);
        let ap = a.permute(&sym.perm);
        (sym, ap)
    }

    /// A three-supernode chain A = {0..4}, B = {4..7}, C = {7..12} where
    /// A's rows split into two blocks ({4,5,6} in B and {8,9,10} in C),
    /// while B additionally reaches row 11 (so A cannot legally fuse with
    /// B into one supernode). A's staging (three 3×3 strips = 27 doubles)
    /// then exceeds the largest single strip (B's 4×4 = 16) — the
    /// structure that separates the memory footprints of the two RLB GPU
    /// variants.
    fn three_level() -> rlchol_sparse::SymCsc {
        let n = 12;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let clique = |edges: &mut Vec<(usize, usize)>, lo: usize, hi: usize| {
            for a in lo..hi {
                for b in a + 1..hi {
                    edges.push((b, a));
                }
            }
        };
        clique(&mut edges, 0, 4);
        clique(&mut edges, 4, 7);
        clique(&mut edges, 7, 12);
        for a in 0..4 {
            for r in [4, 5, 6, 8, 9, 10] {
                edges.push((r, a));
            }
        }
        for b in 4..7 {
            for r in 8..12 {
                edges.push((r, b));
            }
        }
        let mut t = rlchol_sparse::TripletMatrix::new(n, n);
        for j in 0..n {
            t.push(j, j, 16.0);
        }
        for (i, j) in edges {
            t.push(i, j, -1.0);
        }
        rlchol_sparse::SymCsc::from_lower_triplets(&t).unwrap()
    }

    #[test]
    fn both_versions_match_cpu_factors() {
        let a = laplace3d(5, 31);
        let (sym, ap) = setup(&a);
        let cpu = factor_rlb_cpu(&sym, &ap).unwrap();
        for version in [RlbGpuVersion::V1, RlbGpuVersion::V2] {
            for threshold in [0usize, 300] {
                let run =
                    factor_rlb_gpu(&sym, &ap, &GpuOptions::with_threshold(threshold), version)
                        .unwrap();
                let diff = cpu.factor.max_rel_diff(&run.factor);
                assert!(diff < 1e-11, "{version:?} thr {threshold}: diff {diff}");
            }
        }
    }

    #[test]
    fn v2_uses_less_device_memory_than_v1() {
        let a = three_level();
        let (sym, ap) = setup_fragmented(&a);
        let opts = GpuOptions::with_threshold(0);
        let v1 = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V1).unwrap();
        let v2 = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V2).unwrap();
        assert!(
            v2.stats.peak_bytes < v1.stats.peak_bytes,
            "v2 {} vs v1 {}",
            v2.stats.peak_bytes,
            v1.stats.peak_bytes
        );
    }

    #[test]
    fn v2_survives_capacity_that_ooms_v1() {
        let a = three_level();
        let (sym, ap) = setup_fragmented(&a);
        let opts0 = GpuOptions::with_threshold(0);
        let v1_full = factor_rlb_gpu(&sym, &ap, &opts0, RlbGpuVersion::V1).unwrap();
        let v2_full = factor_rlb_gpu(&sym, &ap, &opts0, RlbGpuVersion::V2).unwrap();
        // Pick a capacity between the two footprints.
        let cap = (v2_full.stats.peak_bytes + v1_full.stats.peak_bytes) / 2;
        let mut opts = GpuOptions::with_threshold(0);
        opts.machine = MachineModel::perlmutter(16).with_gpu_capacity(cap);
        assert!(matches!(
            factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V1),
            Err(FactorError::GpuOutOfMemory { .. })
        ));
        let ok = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V2).unwrap();
        assert!(ok.factor.max_rel_diff(&v2_full.factor) < 1e-12);
    }

    #[test]
    fn v2_chunks_through_capacity_that_ooms_rl() {
        // The Table I/II nlpkkt120 mechanism: capacity above the panel but
        // below panel + full update matrix. RL must OOM; v2 splits blocks
        // to the remaining budget and still produces the right factor.
        use crate::gpu_rl::factor_rl_gpu;
        let a = laplace3d(6, 36);
        let (sym, ap) = setup(&a);
        let max_panel = (0..sym.nsup()).map(|s| sym.sn_storage(s)).max().unwrap();
        let max_upd = sym.max_update_matrix_entries();
        assert!(max_upd > 16, "test needs a nontrivial update matrix");
        let cap = ((max_panel + max_upd / 4) * 8) as u64;
        let mut opts = GpuOptions::with_threshold(0);
        opts.machine = MachineModel::perlmutter(16).with_gpu_capacity(cap);
        assert!(matches!(
            factor_rl_gpu(&sym, &ap, &opts),
            Err(FactorError::GpuOutOfMemory { .. })
        ));
        let run = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V2).unwrap();
        let cpu = factor_rlb_cpu(&sym, &ap).unwrap();
        assert!(cpu.factor.max_rel_diff(&run.factor) < 1e-11);
        assert!(run.stats.peak_bytes <= cap);
    }

    #[test]
    fn transfers_same_bytes_different_counts() {
        // v1 moves the same update data as v2 but in far fewer transfers.
        let a = laplace2d(8, 34);
        let (sym, ap) = setup(&a);
        let opts = GpuOptions::with_threshold(0);
        let v1 = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V1).unwrap();
        let v2 = factor_rlb_gpu(&sym, &ap, &opts, RlbGpuVersion::V2).unwrap();
        assert_eq!(v1.stats.d2h_bytes, v2.stats.d2h_bytes);
        assert!(v1.stats.d2h_count < v2.stats.d2h_count);
    }

    #[test]
    fn rl_and_rlb_gpu_agree_numerically() {
        let a = laplace3d(4, 35);
        let (sym, ap) = setup(&a);
        let rl = factor_rl_cpu(&sym, &ap).unwrap();
        let run = factor_rlb_gpu(
            &sym,
            &ap,
            &GpuOptions::with_threshold(100),
            RlbGpuVersion::V2,
        )
        .unwrap();
        assert!(rl.factor.max_rel_diff(&run.factor) < 1e-11);
    }
}
